//! The Observatory: every tier behind one API.

use crate::ObservatoryError;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use teleios_geo::{Coord, Envelope};
use teleios_ingest::metadata;
use teleios_ingest::raster::{GeoRaster, GeoTransform};
use teleios_ingest::seviri::{self, FireEvent, SceneSpec, SurfaceKind};
use teleios_linked::emit;
use teleios_linked::world::{CoverClass, World, WorldSpec};
use teleios_mining::ontology::Ontology;
use teleios_monet::array::NdArray;
use teleios_monet::catalog::ResultSet;
use teleios_monet::Catalog;
use teleios_noa::chain::{panic_message, ChainOutput};
use teleios_noa::firemap::{build_fire_map, FireMap};
use teleios_noa::refine::{
    publish_hotspots, refine_against_landmass, refine_product_against_landmass, RefineStats,
};
use teleios_noa::ProcessingChain;
use teleios_resilience::{BatchReport, SceneOutcome, SceneReport, Supervisor};
use teleios_sciql::SciqlResult;
use teleios_strabon::{Solutions, Strabon};
use teleios_vault::format::{encode_gtf1, encode_sev1, Gtf1Header, Sev1Header};
use teleios_vault::repository::Repository;
use teleios_vault::{DataVault, IngestionPolicy};

type Result<T> = std::result::Result<T, ObservatoryError>;

/// Parameters of one simulated acquisition.
#[derive(Debug, Clone)]
pub struct AcquisitionSpec {
    /// Seed for the scene's noise/clouds/glint.
    pub seed: u64,
    /// Raster rows.
    pub rows: usize,
    /// Raster columns.
    pub cols: usize,
    /// Acquisition instant (ISO-8601).
    pub acquisition: String,
    /// Satellite identifier.
    pub satellite: String,
    /// Planted fires.
    pub fires: Vec<FireEvent>,
    /// Cloud fraction.
    pub cloud_cover: f64,
    /// Sea-glint artifact rate.
    pub glint_rate: f64,
}

impl AcquisitionSpec {
    /// A small deterministic test acquisition with one fire on land.
    pub fn small_test(seed: u64) -> AcquisitionSpec {
        AcquisitionSpec {
            seed,
            rows: 64,
            cols: 64,
            acquisition: format!("2007-08-25T{:02}:00:00Z", (seed % 24)),
            satellite: "MSG2".into(),
            fires: vec![FireEvent {
                center: Coord::new(22.4, 37.6),
                radius: 0.08,
                intensity: 0.9,
            }],
            cloud_cover: 0.03,
            glint_rate: 0.005,
        }
    }
}

/// Metadata the observatory keeps per acquired product.
#[derive(Debug, Clone)]
struct ProductRecord {
    file: String,
    geo: GeoTransform,
    acquisition: String,
    satellite: String,
    truth: NdArray,
}

/// Report of one processing-chain run.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Identifier of the derived product.
    pub derived_id: String,
    /// The chain output (raster, mask, features, timings).
    pub output: ChainOutput,
    /// Hotspot features published to Strabon.
    pub features_published: usize,
}

/// How one product fared inside a supervised service pass
/// ([`Observatory::refine_products_supervised`],
/// [`Observatory::derive_burnt_area_supervised`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductOutcome {
    /// The product's pass completed.
    Ok,
    /// The product's pass failed (bad data, query error, panic); other
    /// products were not affected.
    Failed {
        /// What went wrong.
        reason: String,
    },
    /// The deadline was exhausted before this product's pass started.
    Skipped {
        /// Why the product was never attempted.
        reason: String,
    },
}

/// Per-product entry of a supervised service report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductReport {
    /// The product id.
    pub product_id: String,
    /// What happened.
    pub outcome: ProductOutcome,
}

/// Partial-result report of a supervised refinement pass: per-product
/// outcomes plus the aggregate [`RefineStats`] over the products that
/// completed. A poisoned or overdue product costs exactly its own
/// entry, never the pass.
#[derive(Debug, Clone)]
pub struct RefineReport {
    /// One entry per input product, in input order.
    pub products: Vec<ProductReport>,
    /// Aggregate refinement counts over the `Ok` products.
    pub stats: RefineStats,
    /// Wall-clock time for the whole pass.
    pub wall_clock: Duration,
}

/// Partial-result report of a supervised burnt-area derivation.
#[derive(Debug, Clone)]
pub struct BurntAreaReport {
    /// One entry per input product, in input order.
    pub products: Vec<ProductReport>,
    /// Burnt-area scar features published from the surviving masks.
    pub features_published: usize,
    /// Wall-clock time for the whole pass.
    pub wall_clock: Duration,
}

impl RefineReport {
    /// Products whose pass completed.
    pub fn ok_count(&self) -> usize {
        self.products.iter().filter(|p| p.outcome == ProductOutcome::Ok).count()
    }

    /// Products whose pass failed.
    pub fn failed_count(&self) -> usize {
        self.products.iter().filter(|p| matches!(p.outcome, ProductOutcome::Failed { .. })).count()
    }

    /// Products never attempted because the deadline ran out.
    pub fn skipped_count(&self) -> usize {
        self.products.iter().filter(|p| matches!(p.outcome, ProductOutcome::Skipped { .. })).count()
    }

    /// True when every product completed.
    pub fn is_complete(&self) -> bool {
        self.ok_count() == self.products.len()
    }

    /// The entry for one product id.
    pub fn report_for(&self, product_id: &str) -> Option<&ProductReport> {
        self.products.iter().find(|p| p.product_id == product_id)
    }
}

impl BurntAreaReport {
    /// Products whose mask made it into the derivation.
    pub fn ok_count(&self) -> usize {
        self.products.iter().filter(|p| p.outcome == ProductOutcome::Ok).count()
    }

    /// Products whose mask could not be built.
    pub fn failed_count(&self) -> usize {
        self.products.iter().filter(|p| matches!(p.outcome, ProductOutcome::Failed { .. })).count()
    }

    /// Products never attempted because the deadline ran out.
    pub fn skipped_count(&self) -> usize {
        self.products.iter().filter(|p| matches!(p.outcome, ProductOutcome::Skipped { .. })).count()
    }

    /// The entry for one product id.
    pub fn report_for(&self, product_id: &str) -> Option<&ProductReport> {
        self.products.iter().find(|p| p.product_id == product_id)
    }
}

/// The Virtual Earth Observatory.
pub struct Observatory {
    /// The array/SQL database (MonetDB role).
    pub db: Catalog,
    /// The semantic geospatial database (Strabon role).
    pub strabon: Strabon,
    /// The Data Vault over the scene archive.
    pub vault: DataVault,
    /// The synthetic world (ground truth + linked-data source).
    pub world: World,
    /// The domain ontology.
    pub ontology: Ontology,
    products: HashMap<String, ProductRecord>,
    next_scene: usize,
}

impl Observatory {
    /// Build an observatory over a generated world: linked datasets and
    /// the ontology are loaded into Strabon, the vault starts empty with
    /// a lazy policy.
    pub fn new(world_spec: WorldSpec) -> Observatory {
        let world = World::generate(world_spec);
        let mut strabon = Strabon::new();
        emit::emit_all(&world, strabon.store_mut());
        let ontology = Ontology::teleios();
        ontology.emit(strabon.store_mut());
        let db = Catalog::new();
        let vault = DataVault::new(Repository::new(), db.clone(), IngestionPolicy::Lazy, 64);
        Observatory { db, strabon, vault, world, ontology, products: HashMap::new(), next_scene: 0 }
    }

    /// Default world seeded with `seed`.
    pub fn with_defaults(seed: u64) -> Observatory {
        Observatory::new(WorldSpec { seed, ..WorldSpec::default() })
    }

    /// The world's geographic window.
    pub fn region(&self) -> Envelope {
        self.world.spec.bbox
    }

    /// Product identifiers acquired so far, sorted.
    pub fn product_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.products.keys().cloned().collect();
        ids.sort();
        ids
    }

    fn surface_fn(&self) -> impl Fn(Coord) -> SurfaceKind + '_ {
        |c: Coord| match self.world.cover_at(c) {
            CoverClass::Water => SurfaceKind::Sea,
            CoverClass::Forest => SurfaceKind::Forest,
            CoverClass::Agriculture => SurfaceKind::Agriculture,
            CoverClass::Urban => SurfaceKind::Urban,
        }
    }

    /// Simulate one acquisition: generate the scene, archive it as a
    /// `.sev1` file, register it in the vault (metadata only — lazy
    /// policy), and describe it in Strabon. Returns the product id.
    pub fn acquire_scene(&mut self, spec: &AcquisitionSpec) -> Result<String> {
        let id = format!("scene_{:04}", self.next_scene);
        self.next_scene += 1;

        let scene_spec = SceneSpec {
            seed: spec.seed,
            rows: spec.rows,
            cols: spec.cols,
            bbox: self.region(),
            acquisition: spec.acquisition.clone(),
            satellite: spec.satellite.clone(),
            fires: spec.fires.clone(),
            cloud_cover: spec.cloud_cover,
            glint_rate: spec.glint_rate,
        };
        let surface = self.surface_fn();
        let scene = seviri::generate(&scene_spec, &surface)?;
        drop(surface);

        // Archive as an external file (the scientific file repository).
        let file = format!("{id}.sev1");
        let bbox = self.region();
        let header = Sev1Header {
            rows: spec.rows as u32,
            cols: spec.cols as u32,
            bands: 3,
            acquisition: spec.acquisition.clone(),
            bbox: (bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y),
        };
        let bytes = encode_sev1(&header, scene.raster.data.data())?;
        self.vault.repository_mut().put(&file, bytes);
        self.vault.register(&file)?;

        // Describe in the semantic catalog.
        metadata::describe_raw_image(&id, &scene.raster, self.strabon.store_mut());

        self.products.insert(
            id.clone(),
            ProductRecord {
                file,
                geo: scene.raster.geo,
                acquisition: spec.acquisition.clone(),
                satellite: spec.satellite.clone(),
                truth: scene.truth,
            },
        );
        Ok(id)
    }

    /// Fetch the full raster of a product through the Data Vault
    /// (materializing just in time).
    pub fn raster_for(&mut self, product_id: &str) -> Result<GeoRaster> {
        let rec = self
            .products
            .get(product_id)
            .ok_or_else(|| ObservatoryError::UnknownProduct(product_id.to_string()))?
            .clone();
        let array = self.vault.array_for(&rec.file)?;
        Ok(GeoRaster::new(array, rec.geo, rec.acquisition, rec.satellite)?)
    }

    /// Ground-truth fire mask of a product (simulation-only accessor for
    /// the accuracy experiments).
    pub fn truth_for(&self, product_id: &str) -> Result<NdArray> {
        self.products
            .get(product_id)
            .map(|r| r.truth.clone())
            .ok_or_else(|| ObservatoryError::UnknownProduct(product_id.to_string()))
    }

    /// Describe, publish and archive one chain output: derived-product
    /// metadata in Strabon, hotspot features as stRDF, and the hotspot
    /// mask back into the vault as a `.gtf1` product. `chain_id` names
    /// the chain variant that actually produced the output (a degraded
    /// variant under supervision). Returns the derived product id and
    /// the number of features published.
    fn publish_chain_output(
        &mut self,
        product_id: &str,
        chain_id: &str,
        output: &ChainOutput,
    ) -> Result<(String, usize)> {
        let derived_id = format!("{product_id}-{chain_id}");

        // Derived-product metadata.
        let footprint = teleios_geo::Geometry::Polygon(
            teleios_geo::geometry::Polygon::from_envelope(&output.raster.envelope()),
        );
        metadata::describe_derived(
            &derived_id,
            product_id,
            chain_id,
            &footprint,
            self.strabon.store_mut(),
        );

        // Publish the shapefile.
        let features_published =
            publish_hotspots(&output.features, product_id, chain_id, &mut self.strabon);

        // Archive the derived hotspot mask back into the vault as a
        // georeferenced `.gtf1` product, so later sessions can discover
        // and reload it without re-running the chain.
        let geo = &output.raster.geo;
        let header = Gtf1Header {
            rows: output.raster.rows() as u32,
            cols: output.raster.cols() as u32,
            transform: (geo.origin_x, geo.origin_y, geo.pixel_w, geo.pixel_h),
            epsg: 4326,
        };
        let bytes = encode_gtf1(&header, output.mask.data())?;
        let file = format!("{derived_id}.gtf1");
        self.vault.repository_mut().put(&file, bytes);
        self.vault.register(&file)?;

        Ok((derived_id, features_published))
    }

    /// Run a processing chain on a product: the five modules execute,
    /// the derived product is described in Strabon, and the hotspot
    /// shapefile is published as stRDF. Failures (other than an unknown
    /// product id) come back as [`ObservatoryError::Chain`] naming the
    /// product.
    pub fn run_chain(&mut self, product_id: &str, chain: &ProcessingChain) -> Result<ChainReport> {
        self.run_chain_inner(product_id, chain).map_err(|e| match e {
            e @ ObservatoryError::UnknownProduct(_) => e,
            other => ObservatoryError::Chain {
                product_id: product_id.to_string(),
                source: Box::new(other),
            },
        })
    }

    fn run_chain_inner(
        &mut self,
        product_id: &str,
        chain: &ProcessingChain,
    ) -> Result<ChainReport> {
        let raster = self.raster_for(product_id)?;
        let output = chain.run(&self.db, product_id, &raster)?;
        let (derived_id, features_published) =
            self.publish_chain_output(product_id, &chain.id(), &output)?;
        Ok(ChainReport { derived_id, output, features_published })
    }

    /// Run a processing chain over many products under supervision:
    /// per-scene isolation, retry/backoff and degraded-mode fallbacks
    /// per the [`Supervisor`]. Scenes whose vault load fails (unknown
    /// product, quarantined or corrupt file) become `Failed` reports —
    /// they never abort the batch or stop healthy scenes. Successful
    /// outputs are described, published and archived exactly like
    /// [`Self::run_chain`] products, labeled with the chain variant
    /// that produced them. Reports come back in input order.
    pub fn run_chain_batch(
        &mut self,
        product_ids: &[String],
        chain: &ProcessingChain,
        supervisor: &Supervisor,
    ) -> Result<BatchReport> {
        // Load scenes through the Data Vault; a failed load is a
        // per-scene failure, not a batch error.
        let mut loaded: Vec<(String, GeoRaster)> = Vec::new();
        let mut load_failed: HashMap<String, String> = HashMap::new();
        for id in product_ids {
            match self.raster_for(id) {
                Ok(raster) => loaded.push((id.clone(), raster)),
                Err(e) => {
                    let e = ObservatoryError::Chain {
                        product_id: id.clone(),
                        source: Box::new(e),
                    };
                    load_failed.insert(id.clone(), e.to_string());
                }
            }
        }

        let supervised = supervisor.run_batch(&self.db, chain, &loaded);
        let wall_clock = supervised.wall_clock;
        let pool = supervised.pool;
        let mut by_id: HashMap<String, SceneReport> = supervised
            .scenes
            .into_iter()
            .map(|s| (s.product_id.clone(), s))
            .collect();

        let mut scenes = Vec::with_capacity(product_ids.len());
        for id in product_ids {
            if let Some(reason) = load_failed.remove(id) {
                scenes.push(SceneReport {
                    product_id: id.clone(),
                    outcome: SceneOutcome::Failed { reason },
                    output: None,
                    chain_id: chain.id(),
                    attempts: 0,
                    timed_out_stages: Vec::new(),
                });
                continue;
            }
            let Some(mut report) = by_id.remove(id) else {
                continue; // duplicate id in the input; first report won
            };
            if let Some(output) = report.output.take() {
                match self.publish_chain_output(id, &report.chain_id, &output) {
                    Ok(_) => report.output = Some(output),
                    Err(e) => {
                        report.outcome = SceneOutcome::Failed {
                            reason: format!("publishing {id} failed: {e}"),
                        };
                    }
                }
            }
            scenes.push(report);
        }
        Ok(BatchReport { scenes, wall_clock, pool })
    }

    /// Reload a previously archived derived product (the hotspot mask)
    /// from the vault.
    pub fn derived_mask(&mut self, derived_id: &str) -> Result<NdArray> {
        Ok(self.vault.array_for(&format!("{derived_id}.gtf1"))?)
    }

    /// Scenario-2 refinement: compare hotspots with the coastline linked
    /// data and reclassify the inconsistent ones.
    pub fn refine_products(&mut self) -> Result<RefineStats> {
        let landmass = emit::landmass_literal(&self.world);
        Ok(refine_against_landmass(&mut self.strabon, &landmass)?)
    }

    /// Supervised scenario-2 refinement: each product is refined in its
    /// own isolated pass (product-scoped stSPARQL updates, panics
    /// caught), under a cooperative `deadline` checked between
    /// products — an in-progress pass is never interrupted, but once
    /// the budget is spent the remaining products are `Skipped`. The
    /// report always covers every input product; a poisoned product
    /// costs exactly its own entry.
    pub fn refine_products_supervised(
        &mut self,
        product_ids: &[String],
        deadline: Duration,
    ) -> RefineReport {
        let started = Instant::now();
        let landmass = emit::landmass_literal(&self.world);
        let mut products = Vec::with_capacity(product_ids.len());
        let mut stats = RefineStats { before: 0, kept: 0, refuted: 0, clipped: 0 };
        for id in product_ids {
            if started.elapsed() >= deadline {
                products.push(ProductReport {
                    product_id: id.clone(),
                    outcome: ProductOutcome::Skipped {
                        reason: format!("refinement deadline {deadline:?} exhausted"),
                    },
                });
                continue;
            }
            let strabon = &mut self.strabon;
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                refine_product_against_landmass(strabon, &landmass, id)
            })) {
                Ok(Ok(s)) => {
                    stats.before += s.before;
                    stats.kept += s.kept;
                    stats.refuted += s.refuted;
                    stats.clipped += s.clipped;
                    ProductOutcome::Ok
                }
                Ok(Err(e)) => ProductOutcome::Failed { reason: e.to_string() },
                Err(payload) => ProductOutcome::Failed {
                    reason: format!("refinement panicked: {}", panic_message(payload.as_ref())),
                },
            };
            products.push(ProductReport { product_id: id.clone(), outcome });
        }
        RefineReport { products, stats, wall_clock: started.elapsed() }
    }

    /// stSPARQL search over products, annotations and linked data.
    pub fn search(&mut self, stsparql: &str) -> Result<Solutions> {
        Ok(self.strabon.query(stsparql)?)
    }

    /// stSPARQL update.
    pub fn update(&mut self, stsparql: &str) -> Result<usize> {
        Ok(self.strabon.update(stsparql)?)
    }

    /// SQL over the relational side.
    pub fn sql(&self, sql: &str) -> Result<ResultSet> {
        Ok(self.db.execute(sql)?)
    }

    /// SciQL over the array side.
    pub fn sciql(&self, sciql: &str) -> Result<SciqlResult> {
        Ok(teleios_sciql::execute(&self.db, sciql)?)
    }

    /// Rapid mapping: generate the fire map for a region.
    pub fn fire_map(&mut self, region: &Envelope) -> Result<FireMap> {
        Ok(build_fire_map(&mut self.strabon, region)?)
    }

    /// Derive and publish a burnt-area product from the refined hotspot
    /// masks of the given (same-grid) products. The valid-time period
    /// spans the first to the last acquisition. Returns the number of
    /// scar features published.
    pub fn derive_burnt_area(&mut self, product_ids: &[String], event_id: &str) -> Result<usize> {
        let mut masks = Vec::with_capacity(product_ids.len());
        let mut geo = None;
        let mut times: Vec<String> = Vec::new();
        for id in product_ids {
            let raster = self.raster_for(id)?;
            // Refined masks: surviving hotspot geometries rasterized.
            let survivors =
                teleios_noa::refine::surviving_hotspot_geometries(&mut self.strabon, id)?;
            let polys: Vec<&teleios_geo::geometry::Polygon> = survivors.iter().collect();
            masks.push(teleios_noa::refine::features_to_mask(
                &polys,
                &raster.geo,
                raster.rows(),
                raster.cols(),
            ));
            geo.get_or_insert(raster.geo);
            times.push(raster.acquisition.clone());
        }
        let geo = geo.ok_or_else(|| {
            ObservatoryError::Database(teleios_monet::DbError::Execution(
                "burnt-area derivation needs at least one product".into(),
            ))
        })?;
        times.sort();
        let period = teleios_rdf::strdf::Period::new(
            times.first().cloned().unwrap_or_default(),
            times.last().cloned().unwrap_or_default(),
        );
        let features = teleios_noa::burnt::burnt_area_features(&masks, &geo)?;
        let n = features.len();
        teleios_noa::burnt::publish_burnt_area(&features, event_id, &period, &mut self.strabon);
        Ok(n)
    }

    /// Supervised burnt-area derivation: each product's refined mask is
    /// built in isolation (panics caught, per-product failures
    /// recorded) under a cooperative `deadline` checked between
    /// products; the scar features are then derived from whatever
    /// masks survived. Zero surviving masks is a valid partial result
    /// — a report with no features — not an error. `Err` is reserved
    /// for the final cross-product aggregation failing (e.g. products
    /// on different grids).
    pub fn derive_burnt_area_supervised(
        &mut self,
        product_ids: &[String],
        event_id: &str,
        deadline: Duration,
    ) -> Result<BurntAreaReport> {
        let started = Instant::now();
        let mut products = Vec::with_capacity(product_ids.len());
        let mut masks = Vec::new();
        let mut geo: Option<GeoTransform> = None;
        let mut times: Vec<String> = Vec::new();
        for id in product_ids {
            if started.elapsed() >= deadline {
                products.push(ProductReport {
                    product_id: id.clone(),
                    outcome: ProductOutcome::Skipped {
                        reason: format!("burnt-area deadline {deadline:?} exhausted"),
                    },
                });
                continue;
            }
            let mut mask_pass = || -> Result<(NdArray, GeoTransform, String)> {
                let raster = self.raster_for(id)?;
                let survivors =
                    teleios_noa::refine::surviving_hotspot_geometries(&mut self.strabon, id)?;
                let polys: Vec<&teleios_geo::geometry::Polygon> = survivors.iter().collect();
                let mask = teleios_noa::refine::features_to_mask(
                    &polys,
                    &raster.geo,
                    raster.rows(),
                    raster.cols(),
                );
                Ok((mask, raster.geo, raster.acquisition))
            };
            let outcome = match catch_unwind(AssertUnwindSafe(&mut mask_pass)) {
                Ok(Ok((mask, g, t))) => {
                    masks.push(mask);
                    geo.get_or_insert(g);
                    times.push(t);
                    ProductOutcome::Ok
                }
                Ok(Err(e)) => ProductOutcome::Failed { reason: e.to_string() },
                Err(payload) => ProductOutcome::Failed {
                    reason: format!("mask derivation panicked: {}", panic_message(payload.as_ref())),
                },
            };
            products.push(ProductReport { product_id: id.clone(), outcome });
        }
        let Some(geo) = geo else {
            // No mask survived; report the losses instead of erroring.
            return Ok(BurntAreaReport {
                products,
                features_published: 0,
                wall_clock: started.elapsed(),
            });
        };
        times.sort();
        let period = teleios_rdf::strdf::Period::new(
            times.first().cloned().unwrap_or_default(),
            times.last().cloned().unwrap_or_default(),
        );
        let features = teleios_noa::burnt::burnt_area_features(&masks, &geo)?;
        let features_published = features.len();
        teleios_noa::burnt::publish_burnt_area(&features, event_id, &period, &mut self.strabon);
        Ok(BurntAreaReport { products, features_published, wall_clock: started.elapsed() })
    }

    /// The semantic-annotation service (Fig. 2): cut the product into
    /// patches, classify each with `classifier`, and publish the
    /// annotations as stRDF. Returns the number of annotations.
    pub fn annotate_product(
        &mut self,
        product_id: &str,
        patch_size: usize,
        classifier: &teleios_mining::Classifier,
    ) -> Result<usize> {
        let raster = self.raster_for(product_id)?;
        let patches = teleios_ingest::features::extract_patches(&raster, patch_size)?;
        Ok(teleios_mining::annotate::annotate_product(
            product_id,
            &patches,
            classifier,
            self.strabon.store_mut(),
        ))
    }

    /// Train a fire/land patch classifier from the ground truth of the
    /// given products (the simulation stand-in for the analyst-labeled
    /// training sets of the KDD pipeline).
    pub fn train_patch_classifier(
        &mut self,
        product_ids: &[String],
        patch_size: usize,
        k: usize,
    ) -> Result<teleios_mining::Classifier> {
        use teleios_mining::classify::LabeledExample;
        use teleios_mining::ontology::concept;
        let mut examples = Vec::new();
        for id in product_ids {
            let raster = self.raster_for(id)?;
            let truth = self.truth_for(id)?;
            for p in teleios_ingest::features::extract_patches(&raster, patch_size)? {
                let r0 = p.py * patch_size;
                let c0 = p.px * patch_size;
                let burning = (r0..r0 + patch_size).any(|r| {
                    (c0..c0 + patch_size)
                        .any(|c| truth.get(&[r, c]).unwrap_or(0.0) > 0.0)
                });
                examples.push(LabeledExample {
                    features: p.features,
                    label: if burning {
                        concept("ForestFire")
                    } else {
                        concept("LandCover")
                    },
                });
            }
        }
        Ok(teleios_mining::Classifier::train_knn(k, examples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_noa::accuracy;

    fn observatory() -> Observatory {
        Observatory::with_defaults(42)
    }

    #[test]
    fn world_and_linked_data_loaded() {
        let obs = observatory();
        assert!(obs.strabon.len() > 100);
        assert!(!obs.ontology.is_empty());
    }

    #[test]
    fn acquire_registers_and_describes() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(1)).unwrap();
        assert_eq!(id, "scene_0000");
        assert_eq!(obs.vault.catalog().len(), 1);
        // Lazy vault: no payload materialized yet.
        assert_eq!(obs.vault.stats().materializations, 0);
        // The product is findable by stSPARQL.
        let sols = obs
            .search(
                "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> \
                 SELECT ?p WHERE { ?p a noa:RawImage }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn raster_materializes_on_demand() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(2)).unwrap();
        let raster = obs.raster_for(&id).unwrap();
        assert_eq!(raster.bands(), 3);
        assert_eq!(obs.vault.stats().materializations, 1);
        // Second access hits the cache.
        obs.raster_for(&id).unwrap();
        assert_eq!(obs.vault.stats().materializations, 1);
    }

    #[test]
    fn chain_run_publishes_hotspots() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(3)).unwrap();
        let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        assert!(report.output.hotspot_pixels() > 0);
        assert!(report.features_published > 0);
        let sols = obs
            .search(
                "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> \
                 SELECT ?h WHERE { ?h a noa:Hotspot }",
            )
            .unwrap();
        assert!(!sols.is_empty());
        // The derived product links back to the raw one.
        let derived = obs
            .search(&format!(
                "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> \
                 SELECT ?d WHERE {{ ?d noa:isDerivedFrom <http://teleios.di.uoa.gr/products/{id}> . \
                 ?d a noa:DerivedProduct }}"
            ))
            .unwrap();
        assert_eq!(derived.len(), 1);
    }

    #[test]
    fn refinement_improves_precision() {
        let mut obs = observatory();
        let mut spec = AcquisitionSpec::small_test(4);
        spec.glint_rate = 0.03; // plenty of sea false positives
        spec.cloud_cover = 0.0;
        let id = obs.acquire_scene(&spec).unwrap();
        let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();

        // Accuracy before refinement.
        let truth = obs.truth_for(&id).unwrap();
        let before = accuracy::score(&report.output.mask, &truth).unwrap();

        let stats = obs.refine_products().unwrap();
        assert!(stats.refuted > 0, "expected sea hotspots to be refuted");

        // Accuracy after: rasterize surviving features.
        let survivors =
            teleios_noa::refine::surviving_hotspot_geometries(&mut obs.strabon, &id).unwrap();
        let polys: Vec<&teleios_geo::geometry::Polygon> = survivors.iter().collect();
        let raster = obs.raster_for(&id).unwrap();
        let refined_mask = teleios_noa::refine::features_to_mask(
            &polys,
            &raster.geo,
            raster.rows(),
            raster.cols(),
        );
        let after = accuracy::score(&refined_mask, &truth).unwrap();
        assert!(
            after.precision() >= before.precision(),
            "precision got worse: {} -> {}",
            before.precision(),
            after.precision()
        );
        assert!(after.false_positives < before.false_positives);
    }

    #[test]
    fn sql_and_sciql_entry_points() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(5)).unwrap();
        obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        // The ingested band array is visible to SciQL.
        let max = obs
            .sciql(&format!("SELECT MAX(v) FROM {id}_band1"))
            .unwrap()
            .scalar()
            .unwrap();
        assert!(max > 300.0);
        // SQL works on the relational side.
        obs.sql("CREATE TABLE notes (id INT, note STRING)").unwrap();
        obs.sql("INSERT INTO notes VALUES (1, 'ok')").unwrap();
        let rs = obs.sql("SELECT COUNT(*) AS n FROM notes").unwrap();
        assert_eq!(rs.rows[0][0], teleios_monet::Value::Int(1));
    }

    #[test]
    fn fire_map_includes_hotspots_after_chain() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(6)).unwrap();
        obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        let region = obs.region();
        let map = obs.fire_map(&region).unwrap();
        assert!(!map.layer("hotspots").unwrap().features.is_empty());
        assert!(!map.layer("places").unwrap().features.is_empty());
    }

    #[test]
    fn burnt_area_service() {
        let mut obs = observatory();
        // Three acquisitions of an advancing fire.
        let center = obs.region().center();
        let mut ids = Vec::new();
        for i in 0..3 {
            let mut spec = AcquisitionSpec::small_test(20 + i);
            spec.cloud_cover = 0.0;
            spec.fires = vec![teleios_ingest::seviri::FireEvent {
                center: Coord::new(center.x + i as f64 * 0.05, center.y),
                radius: 0.08,
                intensity: 0.9,
            }];
            let id = obs.acquire_scene(&spec).unwrap();
            obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
            ids.push(id);
        }
        obs.refine_products().unwrap();
        let n = obs.derive_burnt_area(&ids, "event-1").unwrap();
        assert!(n > 0);
        let sols = obs
            .search(&format!(
                "SELECT ?b WHERE {{ ?b a <{}> }}",
                teleios_noa::burnt::BURNT_AREA
            ))
            .unwrap();
        assert_eq!(sols.len(), n);
    }

    #[test]
    fn supervised_refinement_isolates_a_poisoned_product() {
        let mut obs = observatory();
        let mut ids = Vec::new();
        for i in 0..2 {
            let mut spec = AcquisitionSpec::small_test(30 + i);
            spec.glint_rate = 0.03;
            spec.cloud_cover = 0.0;
            let id = obs.acquire_scene(&spec).unwrap();
            obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
            ids.push(id);
        }
        // A product id with a space poisons its scoped stSPARQL update
        // (the IRI no longer lexes); healthy products must not notice.
        let with_poison =
            vec![ids[0].clone(), "bad id".to_string(), ids[1].clone()];
        let report =
            obs.refine_products_supervised(&with_poison, Duration::from_secs(3600));
        assert_eq!(report.products.len(), 3);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.failed_count(), 1);
        assert!(!report.is_complete());
        assert!(matches!(
            &report.report_for("bad id").unwrap().outcome,
            ProductOutcome::Failed { .. }
        ));
        // The healthy products were actually refined.
        assert!(report.stats.before > 0);
        assert!(report.stats.refuted > 0, "expected sea hotspots refuted");
    }

    #[test]
    fn supervised_refinement_deadline_skips_the_tail() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(7)).unwrap();
        obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        let report =
            obs.refine_products_supervised(&[id.clone()], Duration::ZERO);
        assert_eq!(report.ok_count(), 0);
        assert_eq!(report.skipped_count(), 1);
        assert!(matches!(
            &report.report_for(&id).unwrap().outcome,
            ProductOutcome::Skipped { reason } if reason.contains("deadline")
        ));
        assert_eq!(report.stats.before, 0);
    }

    #[test]
    fn supervised_burnt_area_reports_partial_results() {
        let mut obs = observatory();
        let center = obs.region().center();
        let mut ids = Vec::new();
        for i in 0..3 {
            let mut spec = AcquisitionSpec::small_test(40 + i);
            spec.cloud_cover = 0.0;
            spec.fires = vec![teleios_ingest::seviri::FireEvent {
                center: Coord::new(center.x + i as f64 * 0.05, center.y),
                radius: 0.08,
                intensity: 0.9,
            }];
            let id = obs.acquire_scene(&spec).unwrap();
            obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
            ids.push(id);
        }
        obs.refine_products().unwrap();
        // A ghost product fails its own mask pass; the scars still come
        // from the three healthy masks.
        let mut with_ghost = ids.clone();
        with_ghost.insert(1, "ghost".to_string());
        let report = obs
            .derive_burnt_area_supervised(&with_ghost, "event-s1", Duration::from_secs(3600))
            .unwrap();
        assert_eq!(report.products.len(), 4);
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.failed_count(), 1);
        assert!(report.features_published > 0);
        assert!(matches!(
            &report.report_for("ghost").unwrap().outcome,
            ProductOutcome::Failed { .. }
        ));
        let sols = obs
            .search(&format!(
                "SELECT ?b WHERE {{ ?b a <{}> }}",
                teleios_noa::burnt::BURNT_AREA
            ))
            .unwrap();
        assert_eq!(sols.len(), report.features_published);
    }

    #[test]
    fn supervised_burnt_area_with_no_surviving_mask_is_a_report_not_an_error() {
        let mut obs = observatory();
        let report = obs
            .derive_burnt_area_supervised(
                &["ghost".to_string()],
                "event-s2",
                Duration::from_secs(3600),
            )
            .unwrap();
        assert_eq!(report.features_published, 0);
        assert_eq!(report.failed_count(), 1);
        assert_eq!(report.ok_count(), 0);
    }

    #[test]
    fn annotation_service() {
        let mut obs = observatory();
        let mut spec = AcquisitionSpec::small_test(30);
        spec.cloud_cover = 0.0;
        let id = obs.acquire_scene(&spec).unwrap();
        let classifier = obs.train_patch_classifier(std::slice::from_ref(&id), 8, 3).unwrap();
        let n = obs.annotate_product(&id, 8, &classifier).unwrap();
        assert_eq!(n, 64); // 64x64 scene, 8x8 patches
        // Concept search through the mining API finds the product.
        let hits = teleios_mining::annotate::find_products_by_concept(
            &teleios_mining::ontology::concept("Fire"),
            &obs.ontology,
            obs.strabon.store(),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn derived_products_are_archived_and_reloadable() {
        let mut obs = observatory();
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(8)).unwrap();
        let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        // The derived mask lives in the vault catalog as a gtf1 product.
        assert_eq!(obs.vault.catalog().len(), 2); // raw + derived
        let reloaded = obs.derived_mask(&report.derived_id).unwrap();
        assert_eq!(reloaded.shape()[0] * reloaded.shape()[1], 64 * 64);
        assert_eq!(
            reloaded.data().iter().filter(|&&v| v > 0.0).count(),
            report.output.hotspot_pixels()
        );
    }

    #[test]
    fn unknown_product_errors() {
        let mut obs = observatory();
        assert!(matches!(
            obs.raster_for("nope"),
            Err(ObservatoryError::UnknownProduct(_))
        ));
        assert!(obs.truth_for("nope").is_err());
    }

    #[test]
    fn multiple_acquisitions_get_distinct_ids() {
        let mut obs = observatory();
        let a = obs.acquire_scene(&AcquisitionSpec::small_test(1)).unwrap();
        let b = obs.acquire_scene(&AcquisitionSpec::small_test(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(obs.product_ids(), vec![a, b]);
    }

    #[test]
    fn run_chain_wraps_failures_with_the_product_id() {
        let mut obs = observatory();
        // Unknown products keep their dedicated error...
        assert!(matches!(
            obs.run_chain("nope", &ProcessingChain::operational()),
            Err(ObservatoryError::UnknownProduct(_))
        ));
        // ...while a real chain failure names the product.
        let id = obs.acquire_scene(&AcquisitionSpec::small_test(60)).unwrap();
        let mut plan = teleios_resilience::FaultPlan::new();
        plan.inject(id.clone(), teleios_resilience::Fault::CorruptPayload);
        plan.apply_to_repository(obs.vault.repository_mut());
        let err = obs.run_chain(&id, &ProcessingChain::operational()).unwrap_err();
        assert!(matches!(&err, ObservatoryError::Chain { product_id, .. } if *product_id == id));
        assert!(err.to_string().contains("corrupt"));
    }

    #[test]
    fn run_chain_batch_supervises_and_publishes() {
        use teleios_resilience::RetryPolicy;
        let mut obs = observatory();
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(obs.acquire_scene(&AcquisitionSpec::small_test(40 + i)).unwrap());
        }
        // Ask for an unknown product too: it must fail alone.
        let mut requested = ids.clone();
        requested.push("ghost".to_string());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = obs
            .run_chain_batch(&requested, &ProcessingChain::operational(), &supervisor)
            .unwrap();
        assert_eq!(report.scenes.len(), 4);
        assert_eq!(report.succeeded_count(), 3);
        assert_eq!(report.failed_count(), 1);
        let ghost = report.report_for("ghost").unwrap();
        assert!(
            matches!(&ghost.outcome, SceneOutcome::Failed { reason } if reason.contains("ghost"))
        );
        // Healthy scenes were published and archived like run_chain's.
        for id in &ids {
            let scene = report.report_for(id).unwrap();
            assert_eq!(scene.outcome, SceneOutcome::Ok);
            assert!(scene.output.is_some());
            assert!(obs
                .vault
                .catalog()
                .get(&format!("{id}-threshold-318.gtf1"))
                .is_some());
        }
        let hotspots = obs
            .search(
                "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> \
                 SELECT ?h WHERE { ?h a noa:Hotspot }",
            )
            .unwrap();
        assert!(!hotspots.is_empty());
    }

    #[test]
    fn run_chain_batch_quarantines_corrupt_scenes_without_losing_healthy_ones() {
        use teleios_resilience::{Fault, FaultPlan, RetryPolicy};
        let mut obs = observatory();
        let mut spec = AcquisitionSpec::small_test(50);
        spec.cloud_cover = 0.0;
        let a = obs.acquire_scene(&spec).unwrap();
        let b = obs.acquire_scene(&AcquisitionSpec::small_test(51)).unwrap();
        let mut plan = FaultPlan::new();
        plan.inject(b.clone(), Fault::CorruptPayload);
        assert_eq!(plan.apply_to_repository(obs.vault.repository_mut()), 1);

        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = obs
            .run_chain_batch(
                &[a.clone(), b.clone()],
                &ProcessingChain::operational(),
                &supervisor,
            )
            .unwrap();
        assert_eq!(report.report_for(&a).unwrap().outcome, SceneOutcome::Ok);
        let bad = report.report_for(&b).unwrap();
        assert!(
            matches!(&bad.outcome, SceneOutcome::Failed { reason } if reason.contains("corrupt"))
        );
        // The corrupt file sits in quarantine with its stats counted.
        assert!(obs.vault.is_quarantined(&format!("{b}.sev1")));
        assert_eq!(obs.vault.stats().decode_failures, 1);
    }
}
