//! Unified error type for the observatory facade.

use std::fmt;

/// Any failure inside the Virtual Earth Observatory.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservatoryError {
    /// Array-store / SQL layer failure.
    Database(teleios_monet::DbError),
    /// stSPARQL layer failure.
    Strabon(teleios_strabon::StrabonError),
    /// Data Vault failure.
    Vault(teleios_vault::VaultError),
    /// Unknown product identifier.
    UnknownProduct(String),
    /// A processing-chain run failed for one specific product; the
    /// underlying failure is preserved so batch supervision can report
    /// it per scene.
    Chain {
        /// The product whose chain run failed.
        product_id: String,
        /// The underlying failure.
        source: Box<ObservatoryError>,
    },
}

impl fmt::Display for ObservatoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservatoryError::Database(e) => write!(f, "database: {e}"),
            ObservatoryError::Strabon(e) => write!(f, "strabon: {e}"),
            ObservatoryError::Vault(e) => write!(f, "vault: {e}"),
            ObservatoryError::UnknownProduct(p) => write!(f, "unknown product: {p}"),
            ObservatoryError::Chain { product_id, source } => {
                write!(f, "chain failed on {product_id}: {source}")
            }
        }
    }
}

impl std::error::Error for ObservatoryError {}

impl From<teleios_monet::DbError> for ObservatoryError {
    fn from(e: teleios_monet::DbError) -> Self {
        ObservatoryError::Database(e)
    }
}

impl From<teleios_strabon::StrabonError> for ObservatoryError {
    fn from(e: teleios_strabon::StrabonError) -> Self {
        ObservatoryError::Strabon(e)
    }
}

impl From<teleios_vault::VaultError> for ObservatoryError {
    fn from(e: teleios_vault::VaultError) -> Self {
        ObservatoryError::Vault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ObservatoryError = teleios_monet::DbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e: ObservatoryError =
            teleios_vault::VaultError::UnknownFile("f".into()).into();
        assert!(e.to_string().contains("unknown file"));
        assert_eq!(
            ObservatoryError::UnknownProduct("p".into()).to_string(),
            "unknown product: p"
        );
    }

    #[test]
    fn chain_variant_names_the_product_and_keeps_the_source() {
        let source = ObservatoryError::Vault(teleios_vault::VaultError::Corrupt("bits".into()));
        let e = ObservatoryError::Chain {
            product_id: "scene_0007".into(),
            source: Box::new(source.clone()),
        };
        let text = e.to_string();
        assert!(text.contains("scene_0007"));
        assert!(text.contains("corrupt"));
        assert!(matches!(e, ObservatoryError::Chain { source: s, .. } if *s == source));
    }
}
