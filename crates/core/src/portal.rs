//! The portal: a text stand-in for the EOWEB-like GUI of Fig. 3.
//!
//! The demo GUI is a screenshot; what matters for reproduction is the
//! *queries it issues*. The portal renders the archive state, runs the
//! canonical discovery queries, and formats results for a terminal.

use crate::Observatory;
use crate::ObservatoryError;
use teleios_rdf::vocab::{noa, strdf};

/// Render an overview of the observatory state.
pub fn overview(obs: &Observatory) -> String {
    let stats = obs.vault.stats();
    format!(
        "TELEIOS Virtual Earth Observatory\n\
         ---------------------------------\n\
         archive files     : {}\n\
         cataloged records : {}\n\
         materialized      : {} (cache hits {})\n\
         triples in Strabon: {}\n\
         products acquired : {}\n",
        obs.vault.repository().len(),
        obs.vault.catalog().len(),
        stats.materializations,
        stats.cache_hits,
        obs.strabon.len(),
        obs.product_ids().len(),
    )
}

/// The paper's flagship information request, parameterized: "find an
/// image taken by `satellite` on a given day which covers the area and
/// contains hotspots within `dist_deg` of an archaeological site".
pub fn flagship_query(satellite: &str, day: &str, dist_deg: f64) -> String {
    format!(
        "PREFIX noa: <{noa}>\n\
         PREFIX strdf: <{strdf}>\n\
         PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         SELECT DISTINCT ?img ?h ?site WHERE {{\n\
           ?img a noa:RawImage ;\n\
                noa:isAcquiredBy <http://teleios.di.uoa.gr/satellites/{satellite}> ;\n\
                noa:hasAcquisitionTime ?t .\n\
           ?h a noa:Hotspot ; noa:isDerivedFrom ?img ; strdf:hasGeometry ?hg .\n\
           ?site a <http://dbpedia.org/ontology/ArchaeologicalSite> ;\n\
                 strdf:hasGeometry ?sg .\n\
           FILTER(STR(?t) >= \"{day}T00:00:00Z\" && STR(?t) < \"{day}T23:59:59Z\")\n\
           FILTER(strdf:distance(?hg, ?sg) < {dist_deg})\n\
         }}",
        noa = noa::NS,
        strdf = strdf::NS,
    )
}

/// Run the flagship query and render the answer.
pub fn run_flagship(
    obs: &mut Observatory,
    satellite: &str,
    day: &str,
    dist_deg: f64,
) -> Result<String, ObservatoryError> {
    let q = flagship_query(satellite, day, dist_deg);
    let sols = obs.search(&q)?;
    let mut out = format!("flagship query ({} rows):\n", sols.len());
    out.push_str(&sols.to_text());
    Ok(out)
}

/// Discovery listing: every raw product with its acquisition time, as
/// the portal's product browser would show.
pub fn list_products(obs: &mut Observatory) -> Result<String, ObservatoryError> {
    let sols = obs.search(&format!(
        "PREFIX noa: <{}>\n\
         SELECT ?p ?t WHERE {{ ?p a noa:RawImage ; noa:hasAcquisitionTime ?t }} ORDER BY ?t",
        noa::NS
    ))?;
    Ok(sols.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::AcquisitionSpec;
    use teleios_geo::Coord;
    use teleios_noa::ProcessingChain;

    #[test]
    fn overview_renders() {
        let obs = Observatory::with_defaults(1);
        let text = overview(&obs);
        assert!(text.contains("TELEIOS"));
        assert!(text.contains("triples in Strabon"));
    }

    #[test]
    fn flagship_query_finds_fire_near_site() {
        let mut obs = Observatory::with_defaults(42);
        // Plant the fire right next to the first archaeological site.
        let site = obs.world.sites[0].location;
        let mut spec = AcquisitionSpec::small_test(9);
        spec.fires = vec![teleios_ingest::seviri::FireEvent {
            center: Coord::new(site.x + 0.02, site.y),
            radius: 0.09,
            intensity: 0.95,
        }];
        spec.cloud_cover = 0.0;
        let id = obs.acquire_scene(&spec).unwrap();
        obs.run_chain(&id, &ProcessingChain::operational()).unwrap();

        let q = flagship_query("MSG2", "2007-08-25", 0.3);
        let sols = obs.search(&q).unwrap();
        assert!(!sols.is_empty(), "flagship query found nothing");
        let text = run_flagship(&mut obs, "MSG2", "2007-08-25", 0.3).unwrap();
        assert!(text.contains("rows"));
    }

    #[test]
    fn flagship_query_respects_satellite_filter() {
        let mut obs = Observatory::with_defaults(42);
        let site = obs.world.sites[0].location;
        let mut spec = AcquisitionSpec::small_test(9);
        spec.fires = vec![teleios_ingest::seviri::FireEvent {
            center: site,
            radius: 0.09,
            intensity: 0.95,
        }];
        spec.cloud_cover = 0.0;
        let id = obs.acquire_scene(&spec).unwrap();
        obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        let sols = obs.search(&flagship_query("MSG1", "2007-08-25", 0.3)).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn product_listing() {
        let mut obs = Observatory::with_defaults(1);
        obs.acquire_scene(&AcquisitionSpec::small_test(1)).unwrap();
        obs.acquire_scene(&AcquisitionSpec::small_test(2)).unwrap();
        let text = list_products(&mut obs).unwrap();
        assert!(text.contains("scene_0000"));
        assert!(text.contains("scene_0001"));
    }
}
