#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-core — the Virtual Earth Observatory
//!
//! The facade wiring every tier of the TELEIOS architecture (paper
//! Fig. 2) into one system:
//!
//! * **Ingestion tier** — scenes arrive as external `.sev1` files in the
//!   Data Vault's repository; registration extracts metadata, payloads
//!   materialize just in time,
//! * **Database tier** — `teleios-monet` (arrays + SQL), `teleios-sciql`
//!   (array queries) and `teleios-strabon` (stRDF/stSPARQL) hold data,
//!   metadata and semantic annotations,
//! * **Service processing tier** — the NOA processing chains, the
//!   refinement service and the rapid-mapping service,
//! * **Application tier** — [`portal`], a text stand-in for the
//!   EOWEB-like GUI of Fig. 3: the queries the GUI would issue.
//!
//! ## Example
//!
//! ```
//! use teleios_core::Observatory;
//! use teleios_core::observatory::AcquisitionSpec;
//!
//! let mut obs = Observatory::with_defaults(42);
//! let id = obs.acquire_scene(&AcquisitionSpec::small_test(1)).unwrap();
//! let report = obs.run_chain(&id, &teleios_noa::ProcessingChain::operational()).unwrap();
//! assert!(report.features_published > 0 || report.output.hotspot_pixels() == 0);
//! ```

pub mod error;
pub mod observatory;
pub mod portal;

pub use error::ObservatoryError;
pub use observatory::{
    BurntAreaReport, Observatory, ProductOutcome, ProductReport, RefineReport,
};
