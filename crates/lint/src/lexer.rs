//! Token stream over masked source: the shared substrate for every
//! rule. [`crate::mask`] first blanks comments and string/char
//! literals (length-preserving, so byte offsets survive); this module
//! then produces idents and punctuation with byte offsets and brace
//! nesting depth, locates `#[cfg(test)]` / `#[test]` regions, parses
//! `// teleios-lint: allow(<rule>)` markers, and resolves `use`
//! aliases (`use std::thread as t;`) so the rules see through renamed
//! imports — the false-negative class the original line-pattern core
//! could not.

use crate::rules::Rule;
use std::collections::HashMap;

/// Byte-offset → 1-based line:col mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// Rebuild from a saved line-start table (the summary cache stores
    /// the table so cached files need not be re-read to map offsets).
    pub fn from_starts(starts: Vec<usize>) -> LineIndex {
        LineIndex {
            starts: if starts.is_empty() { vec![0] } else { starts },
        }
    }

    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Byte offset of the start of 1-based `line`.
    pub fn line_start(&self, line: usize) -> usize {
        self.starts.get(line.saturating_sub(1)).copied().unwrap_or(0)
    }

    pub fn line_col(&self, off: usize) -> (usize, usize) {
        let idx = match self.starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (idx + 1, off - self.starts[idx] + 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind<'a> {
    Ident(&'a str),
    Punct(u8),
}

/// One token: kind, byte offset into the (masked) source, and the
/// number of unclosed `{` at that point. An opening `{` carries the
/// depth *outside* it and its matching `}` carries that same depth, so
/// "the close of the block containing token `i`" is the first `}`
/// after `i` whose depth is `toks[i].depth - 1`.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind<'a>,
    pub off: usize,
    pub depth: usize,
}

/// Tokenize masked source. Numbers, identifiers, and keywords all
/// come out as `Ident` — the rules only ever compare against known
/// names, so the conflation is harmless and keeps the lexer tiny.
pub fn lex(masked: &str) -> Vec<Tok<'_>> {
    let b = masked.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut depth = 0usize;
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(&masked[start..i]),
                off: start,
                depth,
            });
            continue;
        }
        if c.is_ascii() {
            if c == b'}' {
                depth = depth.saturating_sub(1);
            }
            toks.push(Tok {
                kind: TokKind::Punct(c),
                off: i,
                depth,
            });
            if c == b'{' {
                depth += 1;
            }
        }
        i += 1;
    }
    toks
}

pub fn ident_at<'a>(toks: &[Tok<'a>], i: usize) -> Option<&'a str> {
    match toks.get(i)?.kind {
        TokKind::Ident(s) => Some(s),
        TokKind::Punct(_) => None,
    }
}

pub fn is_ident(toks: &[Tok<'_>], i: usize, s: &str) -> bool {
    ident_at(toks, i) == Some(s)
}

pub fn is_punct(toks: &[Tok<'_>], i: usize, c: u8) -> bool {
    matches!(toks.get(i), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
}

/// Skip an attribute starting at index `i` (which must be `#`);
/// returns the index just past the closing `]`.
pub fn skip_attr(toks: &[Tok<'_>], i: usize) -> usize {
    let mut k = i + 1;
    let mut depth = 0usize;
    while k < toks.len() {
        if is_punct(toks, k, b'[') {
            depth += 1;
        } else if is_punct(toks, k, b']') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Byte ranges covered by `#[cfg(test)]` / `#[test]` items. Only the
/// exact forms are recognized — the workspace uses no other spelling,
/// and `#[cfg_attr(not(test), ...)]` must *not* create a region.
pub fn test_regions(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(toks, i, b'#') && is_punct(toks, i + 1, b'[')) {
            i += 1;
            continue;
        }
        let is_test_attr = (is_ident(toks, i + 2, "cfg")
            && is_punct(toks, i + 3, b'(')
            && is_ident(toks, i + 4, "test")
            && is_punct(toks, i + 5, b')')
            && is_punct(toks, i + 6, b']'))
            || (is_ident(toks, i + 2, "test") && is_punct(toks, i + 3, b']'));
        if !is_test_attr {
            i = skip_attr(toks, i);
            continue;
        }
        let start_off = toks[i].off;
        // Skip this attribute plus any stacked ones (`#[cfg(test)]
        // #[derive(..)] struct S;`).
        let mut j = skip_attr(toks, i);
        while is_punct(toks, j, b'#') && is_punct(toks, j + 1, b'[') {
            j = skip_attr(toks, j);
        }
        // The item extends to its matched `{...}` block, or to a `;`
        // for block-less items.
        let mut end_off = toks.last().map(|t| t.off).unwrap_or(start_off);
        let mut k = j;
        while k < toks.len() {
            if is_punct(toks, k, b';') {
                end_off = toks[k].off;
                break;
            }
            if is_punct(toks, k, b'{') {
                let mut depth = 0usize;
                while k < toks.len() {
                    if is_punct(toks, k, b'{') {
                        depth += 1;
                    } else if is_punct(toks, k, b'}') {
                        depth -= 1;
                        if depth == 0 {
                            end_off = toks[k].off;
                            break;
                        }
                    }
                    k += 1;
                }
                break;
            }
            k += 1;
        }
        regions.push((start_off, end_off));
        i = j;
    }
    regions
}

pub fn in_test(regions: &[(usize, usize)], off: usize) -> bool {
    regions.iter().any(|(s, e)| *s <= off && off <= *e)
}

/// One `// teleios-lint: allow(<name>)` marker. A marker suppresses
/// findings of its rule on its own line and the next one (so it can
/// sit on a comment line above a long statement). `rule` is `None`
/// when the name matches no known rule — those are reported as
/// `unused-allow` so a typo can't silently waive nothing.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    pub line: usize,
    pub col: usize,
    pub rule: Option<Rule>,
    pub name: String,
}

/// Parse allow markers. Only the literal form `// teleios-lint:
/// allow(<name>)` inside an actual `//` comment counts: `masked` (the
/// same-length blanked copy) proves the text sits in a comment or
/// string, doc-comment lines (`///`, `//!`) are prose, and an odd
/// number of `"` before the marker means it lives inside a string
/// literal (e.g. a test snippet), not a comment.
pub fn allow_markers(raw: &str, masked: &str) -> Vec<AllowMarker> {
    const PAT: &str = "// teleios-lint: allow(";
    let mut markers = Vec::new();
    for ((i, line), masked_line) in raw.lines().enumerate().zip(masked.lines()) {
        let Some(p) = line.find(PAT) else {
            continue;
        };
        let trimmed = line.trim_start();
        if trimmed.starts_with("//!") || trimmed.starts_with("///") {
            continue;
        }
        // Inside a comment or string, masking has blanked the text; if
        // it survives in the masked copy it is live code (impossible
        // for this pattern, but cheap to assert).
        let probe = p + 3;
        if masked_line.as_bytes().get(probe).copied() == Some(b't') {
            continue;
        }
        if line[..p].bytes().filter(|b| *b == b'"').count() % 2 == 1 {
            continue;
        }
        let after = &line[p + PAT.len()..];
        let Some(q) = after.find(')') else { continue };
        let name = &after[..q];
        markers.push(AllowMarker {
            line: i + 1,
            col: p + 1,
            rule: Rule::from_name(name),
            name: name.to_string(),
        });
    }
    markers
}

/// `use` declarations of a file, resolved to flat paths: maps each
/// locally visible name (the final segment, or the `as` alias) to the
/// full path segments it stands for. Handles grouped imports
/// (`use a::{b, c as d}`) and `self` in groups. Glob imports bind no
/// name but their path prefixes are recorded (`globs`) so the
/// interprocedural linker can consider glob-imported crates, and
/// `pub use` bindings are additionally recorded as re-exports so a
/// call through a facade crate resolves to the defining crate.
#[derive(Debug, Default)]
pub struct UseAliases {
    map: HashMap<String, Vec<String>>,
    /// `pub use` bindings in declaration order: exported name → the
    /// full path it re-exports (chains are resolved at link time).
    reexports: Vec<(String, Vec<String>)>,
    /// Path prefixes of glob imports (`use teleios_store::*` records
    /// `["teleios_store"]`).
    globs: Vec<Vec<String>>,
    /// Token-index ranges (inclusive) of the `use` statements
    /// themselves, so usage rules don't fire on the import line.
    ranges: Vec<(usize, usize)>,
}

impl UseAliases {
    /// The full path the local name `name` stands for, if imported.
    pub fn resolve(&self, name: &str) -> Option<&[String]> {
        self.map.get(name).map(|v| v.as_slice())
    }

    /// Does `name` resolve to exactly `path` (e.g. `["std", "thread",
    /// "spawn"]`)?
    pub fn resolves_to(&self, name: &str, path: &[&str]) -> bool {
        self.resolve(name).is_some_and(|p| p == path)
    }

    /// Is token index `i` inside a `use` statement?
    pub fn in_use_stmt(&self, i: usize) -> bool {
        self.ranges.iter().any(|(s, e)| *s <= i && i <= *e)
    }

    /// All local bindings, for summary construction.
    pub fn entries(&self) -> impl Iterator<Item = (&String, &Vec<String>)> {
        self.map.iter()
    }

    /// `pub use` re-export bindings in declaration order.
    pub fn reexports(&self) -> &[(String, Vec<String>)] {
        &self.reexports
    }

    /// Glob-import path prefixes in declaration order.
    pub fn globs(&self) -> &[Vec<String>] {
        &self.globs
    }
}

pub fn use_aliases(toks: &[Tok<'_>]) -> UseAliases {
    let mut out = UseAliases::default();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "use") {
            i += 1;
            continue;
        }
        // `use` is only a declaration at item position: preceded by
        // nothing, `;`, `{`, `}`, `]` (attribute), or `pub`/`(crate)`.
        let decl_pos = i == 0
            || is_punct(toks, i - 1, b';')
            || is_punct(toks, i - 1, b'{')
            || is_punct(toks, i - 1, b'}')
            || is_punct(toks, i - 1, b']')
            || is_ident(toks, i - 1, "pub")
            || is_punct(toks, i - 1, b')');
        if !decl_pos {
            i += 1;
            continue;
        }
        // `pub use` / `pub(crate) use`: the bindings are re-exports.
        let is_pub = (i > 0 && is_ident(toks, i - 1, "pub"))
            || (i > 0 && is_punct(toks, i - 1, b')') && {
                let mut k = i - 1;
                while k > 0 && !is_punct(toks, k, b'(') {
                    k -= 1;
                }
                k > 0 && is_ident(toks, k - 1, "pub")
            });
        let start = i;
        let mut j = i + 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut bindings: Vec<(String, Vec<String>)> = Vec::new();
        parse_use_tree(toks, &mut j, &mut prefix, &mut bindings, &mut out.globs);
        for (name, path) in bindings {
            if is_pub {
                out.reexports.push((name.clone(), path.clone()));
            }
            out.map.insert(name, path);
        }
        // Consume through the terminating `;` (parse errors included,
        // so a malformed use can't cascade).
        while j < toks.len() && !is_punct(toks, j, b';') {
            j += 1;
        }
        out.ranges.push((start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    out
}

fn parse_use_tree(
    toks: &[Tok<'_>],
    j: &mut usize,
    prefix: &mut Vec<String>,
    bindings: &mut Vec<(String, Vec<String>)>,
    globs: &mut Vec<Vec<String>>,
) {
    loop {
        if is_punct(toks, *j, b'{') {
            *j += 1;
            loop {
                let depth_before = prefix.len();
                parse_use_tree(toks, j, prefix, bindings, globs);
                prefix.truncate(depth_before);
                if is_punct(toks, *j, b',') {
                    *j += 1;
                    continue;
                }
                break;
            }
            if is_punct(toks, *j, b'}') {
                *j += 1;
            }
            return;
        }
        if is_punct(toks, *j, b'*') {
            *j += 1;
            if !prefix.is_empty() {
                globs.push(prefix.clone());
            }
            return;
        }
        let Some(seg) = ident_at(toks, *j) else { return };
        *j += 1;
        if seg == "self" && !prefix.is_empty() {
            // `use a::b::{self, ...}` binds `b` itself; `self as x`
            // binds only the alias.
            if is_ident(toks, *j, "as") {
                if let Some(alias) = ident_at(toks, *j + 1) {
                    bindings.push((alias.to_string(), prefix.clone()));
                }
                *j += 2;
                return;
            }
            if let Some(last) = prefix.last().cloned() {
                bindings.push((last, prefix.clone()));
            }
            return;
        }
        prefix.push(seg.to_string());
        if is_punct(toks, *j, b':') && is_punct(toks, *j + 1, b':') {
            *j += 2;
            continue;
        }
        if is_ident(toks, *j, "as") {
            if let Some(alias) = ident_at(toks, *j + 1) {
                bindings.push((alias.to_string(), prefix.clone()));
            }
            *j += 2;
            return;
        }
        // Plain terminal segment: binds its own name.
        bindings.push((seg.to_string(), prefix.clone()));
        return;
    }
}

/// Token index of the first token of the statement containing `i`:
/// the token after the nearest preceding `;`, `{`, or `}`.
pub fn stmt_start(toks: &[Tok<'_>], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let prev = j - 1;
        if is_punct(toks, prev, b';') || is_punct(toks, prev, b'{') || is_punct(toks, prev, b'}') {
            return j;
        }
        j -= 1;
    }
    0
}

/// Token index of the `}` closing the innermost block containing `i`
/// (or `toks.len() - 1` if unbalanced).
pub fn enclosing_block_end(toks: &[Tok<'_>], i: usize) -> usize {
    let d = toks[i].depth;
    if d == 0 {
        return toks.len().saturating_sub(1);
    }
    let mut j = i + 1;
    while j < toks.len() {
        if is_punct(toks, j, b'}') && toks[j].depth == d - 1 {
            return j;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Token index of the `;` ending the statement containing `i` at the
/// same brace depth (falls back to the enclosing block end).
pub fn stmt_end(toks: &[Tok<'_>], i: usize) -> usize {
    let d = toks[i].depth;
    let mut j = i + 1;
    while j < toks.len() {
        if is_punct(toks, j, b';') && toks[j].depth == d {
            return j;
        }
        if is_punct(toks, j, b'}') && toks[j].depth < d {
            return j;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask_code;

    fn lexed(src: &str) -> Vec<String> {
        lex(&mask_code(src))
            .into_iter()
            .map(|t| match t.kind {
                TokKind::Ident(s) => s.to_string(),
                TokKind::Punct(p) => (p as char).to_string(),
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_offsets() {
        let toks = lex("a.b()");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0].off, 0);
        assert_eq!(toks[2].off, 2);
        assert!(matches!(toks[1].kind, TokKind::Punct(b'.')));
    }

    #[test]
    fn depth_tracks_braces() {
        let toks = lex("fn f() { let x = { 1 }; }");
        // `fn` at depth 0, `x` at depth 1, `1` at depth 2.
        assert_eq!(toks[0].depth, 0);
        let x = toks.iter().find(|t| t.kind == TokKind::Ident("x")).unwrap();
        assert_eq!(x.depth, 1);
        let one = toks.iter().find(|t| t.kind == TokKind::Ident("1")).unwrap();
        assert_eq!(one.depth, 2);
        // Opening and closing braces of a block carry the same depth.
        let opens: Vec<usize> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct(b'{'))
            .map(|t| t.depth)
            .collect();
        let closes: Vec<usize> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct(b'}'))
            .map(|t| t.depth)
            .collect();
        assert_eq!(opens, vec![0, 1]);
        assert_eq!(closes, vec![1, 0]);
    }

    #[test]
    fn masked_strings_do_not_tokenize() {
        assert!(!lexed("let s = \"panic!\";").contains(&"panic".to_string()));
    }

    #[test]
    fn use_alias_simple_and_renamed() {
        let src = "use std::thread as t;\nuse std::thread::spawn;\n";
        let masked = mask_code(src);
        let toks = lex(&masked);
        let aliases = use_aliases(&toks);
        assert!(aliases.resolves_to("t", &["std", "thread"]));
        assert!(aliases.resolves_to("spawn", &["std", "thread", "spawn"]));
        assert_eq!(aliases.resolve("nope"), None);
    }

    #[test]
    fn use_alias_groups_and_self() {
        let src = "use std::sync::{Arc, Mutex as M, atomic::{AtomicBool, Ordering}};\nuse std::sync::mpsc::{self, Receiver};\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert!(aliases.resolves_to("Arc", &["std", "sync", "Arc"]));
        assert!(aliases.resolves_to("M", &["std", "sync", "Mutex"]));
        assert!(aliases.resolves_to("Ordering", &["std", "sync", "atomic", "Ordering"]));
        assert!(aliases.resolves_to("mpsc", &["std", "sync", "mpsc"]));
        assert!(aliases.resolves_to("Receiver", &["std", "sync", "mpsc", "Receiver"]));
    }

    #[test]
    fn use_alias_renamed_single_segment_tail() {
        let src = "use alpha::beta as gamma;\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert!(aliases.resolves_to("gamma", &["alpha", "beta"]));
        assert_eq!(aliases.resolve("beta"), None, "the original name is not bound");
    }

    #[test]
    fn use_alias_nested_groups_with_rename() {
        let src = "use a::{b::{c, d as e}, f};\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert!(aliases.resolves_to("c", &["a", "b", "c"]));
        assert!(aliases.resolves_to("e", &["a", "b", "d"]));
        assert!(aliases.resolves_to("f", &["a", "f"]));
        assert_eq!(aliases.resolve("d"), None);
    }

    #[test]
    fn glob_imports_recorded_not_bound() {
        let src = "use teleios_store::*;\nuse a::b::{c, d::*};\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert_eq!(
            aliases.globs(),
            &[
                vec!["teleios_store".to_string()],
                vec!["a".to_string(), "b".to_string(), "d".to_string()]
            ]
        );
        assert!(aliases.resolves_to("c", &["a", "b", "c"]));
        assert_eq!(aliases.resolve("*"), None);
    }

    #[test]
    fn pub_use_recorded_as_reexport() {
        let src = "pub use crate::inner::thing;\npub(crate) use a::helper as h;\nuse b::private_thing;\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        let re = aliases.reexports();
        assert_eq!(re.len(), 2, "plain use is not a re-export: {re:?}");
        assert_eq!(re[0].0, "thing");
        assert_eq!(re[0].1, vec!["crate", "inner", "thing"]);
        assert_eq!(re[1].0, "h");
        assert_eq!(re[1].1, vec!["a", "helper"]);
        // All three still bind locally.
        assert!(aliases.resolves_to("thing", &["crate", "inner", "thing"]));
        assert!(aliases.resolves_to("h", &["a", "helper"]));
        assert!(aliases.resolves_to("private_thing", &["b", "private_thing"]));
    }

    #[test]
    fn pub_use_group_self_as() {
        let src = "pub use a::b::{self as bb, c};\n";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert!(aliases.resolves_to("bb", &["a", "b"]));
        assert!(aliases.resolves_to("c", &["a", "b", "c"]));
        assert_eq!(aliases.resolve("b"), None, "`self as` binds only the alias");
        assert_eq!(aliases.reexports().len(), 2);
    }

    #[test]
    fn line_index_round_trips_through_starts() {
        let idx = LineIndex::new("ab\ncd\nef");
        let rebuilt = LineIndex::from_starts(idx.starts().to_vec());
        assert_eq!(rebuilt.line_col(4), (2, 2));
        assert_eq!(rebuilt.line_start(3), 6);
        // An empty table degrades to single-line mapping.
        assert_eq!(LineIndex::from_starts(Vec::new()).line_col(5), (1, 6));
    }

    #[test]
    fn use_ranges_cover_the_declaration() {
        let src = "use std::thread as t;\nfn f() { t::spawn(|| {}); }";
        let masked = mask_code(src);
        let toks = lex(&masked);
        let aliases = use_aliases(&toks);
        // The `thread` token inside the use statement is in-range; the
        // `t` usage in the body is not.
        let use_thread = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident("thread"))
            .unwrap();
        assert!(aliases.in_use_stmt(use_thread));
        let body_t = toks
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.kind == TokKind::Ident("t"))
            .map(|(i, _)| i)
            .unwrap();
        assert!(!aliases.in_use_stmt(body_t));
    }

    #[test]
    fn expression_use_is_not_a_declaration() {
        // A variable named `use` can't exist, but `use` appearing in a
        // non-item position (masked doc text aside) must not parse.
        let src = "fn f(x: u8) -> u8 { x }";
        let aliases = use_aliases(&lex(&mask_code(src)));
        assert_eq!(aliases.resolve("x"), None);
    }

    #[test]
    fn stmt_and_block_helpers() {
        let src = "fn f() { let a = g(); h(); }";
        let masked = mask_code(src);
        let toks = lex(&masked);
        let g = toks.iter().position(|t| t.kind == TokKind::Ident("g")).unwrap();
        let start = stmt_start(&toks, g);
        assert_eq!(ident_at(&toks, start), Some("let"));
        let end = stmt_end(&toks, g);
        assert!(is_punct(&toks, end, b';'));
        let close = enclosing_block_end(&toks, g);
        assert!(is_punct(&toks, close, b'}'));
        assert_eq!(close, toks.len() - 1);
    }

    #[test]
    fn allow_markers_parse_known_and_unknown() {
        let src = "fn f() {\n    panic!(\"x\"); // teleios-lint: allow(no-panic) — deliberate\n    // teleios-lint: allow(bogus-rule)\n}\n";
        let markers = allow_markers(src, &mask_code(src));
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[0].line, 2);
        assert_eq!(markers[0].rule, Some(Rule::NoPanic));
        assert_eq!(markers[1].line, 3);
        assert_eq!(markers[1].rule, None);
        assert_eq!(markers[1].name, "bogus-rule");
    }

    #[test]
    fn allow_markers_skip_doc_comments_and_strings() {
        let doc = "//! usable as `// teleios-lint: allow(no-panic)` markers\nfn f() {}\n";
        assert!(allow_markers(doc, &mask_code(doc)).is_empty());
        let in_string = "fn f() -> &'static str {\n    \"x // teleios-lint: allow(no-panic) y\"\n}\n";
        assert!(allow_markers(in_string, &mask_code(in_string)).is_empty());
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\n");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(4), (2, 2));
    }
}
