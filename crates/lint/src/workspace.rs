//! Workspace walking and the two-phase scan driver: enumerate member
//! crates, derive each file's [`FilePolicy`] from where it lives,
//! summarize every file (morsel-parallel, optionally through the
//! content-fingerprint cache), and link the summaries so the
//! interprocedural rules (lock-order, cancel-safety, the
//! path-sensitive flow rules, swallowed-result) see the whole
//! workspace at once.

use crate::rules::{FilePolicy, Finding, SourceFile};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Crates allowed to own OS threads and relaxed atomics: the
/// concurrency substrate itself and the model checker that spawns
/// real threads to control modeled ones.
const SUBSTRATE_CRATES: &[&str] = &["exec", "loom"];

/// The one crate allowed to mutate the filesystem directly: the
/// storage engine whose `Medium` is everyone else's doorway to disk.
const FS_DOORWAY_CRATES: &[&str] = &["store"];

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Depth-first walk in sorted order, so the scan (and therefore
/// finding order and file counts) is identical across filesystems.
/// Symlinks are skipped — a linked directory could escape the
/// workspace or loop the walk — and so is any directory named
/// `target`: build output is never source, and a stray
/// `CARGO_TARGET_DIR` inside a member must not slow the scan.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?;
    entries.sort();
    for path in entries {
        if fs::symlink_metadata(&path)?.file_type().is_symlink() {
            continue;
        }
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn policy_for(crate_name: &str, label: &str) -> FilePolicy {
    FilePolicy {
        substrate: SUBSTRATE_CRATES.contains(&crate_name),
        fs_doorway: FS_DOORWAY_CRATES.contains(&crate_name),
        bin_target: label.contains("/src/bin/")
            || label.starts_with("src/bin/")
            || label.ends_with("src/main.rs")
            || label.contains("/benches/")
            || label.starts_with("benches/")
            || label.contains("/examples/")
            || label.starts_with("examples/"),
    }
}

/// A workspace member: its short name and directory.
struct Member {
    name: String,
    dir: PathBuf,
}

fn members(root: &Path) -> io::Result<Vec<Member>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push(Member { name, dir });
        }
    }
    // The root package (facade crate), if the workspace manifest also
    // declares one.
    if root.join("src").join("lib.rs").is_file() {
        out.push(Member {
            name: "root".to_string(),
            dir: root.to_path_buf(),
        });
    }
    Ok(out)
}

/// One workspace source file's coordinates, known before its content
/// is read — what a summarize task needs to go from path to
/// [`crate::summary::FileSummary`] on its own.
struct FileMeta {
    path: PathBuf,
    label: String,
    crate_name: String,
    is_crate_root: bool,
    policy: FilePolicy,
}

fn enumerate(root: &Path) -> io::Result<Vec<FileMeta>> {
    let mut metas: Vec<FileMeta> = Vec::new();
    for member in members(root)? {
        let crate_root = member.dir.join("src").join("lib.rs");
        let mut files = Vec::new();
        collect_rs_files(&member.dir.join("src"), &mut files)?;
        collect_rs_files(&member.dir.join("benches"), &mut files)?;
        collect_rs_files(&member.dir.join("examples"), &mut files)?;
        files.sort();
        for file in files {
            let label = rel_label(root, &file);
            // The root member's walk must not descend into crates/
            // (each crate is scanned as its own member).
            if member.name == "root" && label.starts_with("crates/") {
                continue;
            }
            metas.push(FileMeta {
                policy: policy_for(&member.name, &label),
                is_crate_root: file == crate_root,
                crate_name: member.name.clone(),
                label,
                path: file,
            });
        }
    }
    Ok(metas)
}

/// How [`scan_workspace_with`] runs.
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Worker threads for the summarize phase; `0` = available
    /// parallelism. Results are in file order regardless, so parallel
    /// and serial scans emit byte-identical findings.
    pub jobs: usize,
    /// Summary cache directory: per-file entries keyed by label hash,
    /// validated by content fingerprint, rewritten on miss.
    pub cache_dir: Option<PathBuf>,
    /// Explicit changed set (workspace-relative labels): only these
    /// files are read and re-summarized; every other file's summary
    /// is taken from `cache_dir` on trust (falling back to a fresh
    /// read when absent). Backs `--changed-since` / file-list mode.
    pub changed: Option<Vec<String>>,
}

/// What a scan did, for `--timings` and the budget gate.
#[derive(Debug, Clone, Default)]
pub struct ScanStats {
    /// Files in the analyzed set.
    pub files: usize,
    /// Summaries served from the cache.
    pub cache_hits: usize,
    /// Summaries computed fresh.
    pub cache_misses: usize,
    /// `(phase, microseconds)` in execution order: walk, summarize,
    /// cache-store, then the per-rule link breakdown.
    pub phases: Vec<(&'static str, u128)>,
}

enum Outcome {
    Hit(crate::summary::FileSummary),
    Miss(crate::summary::FileSummary),
    Io(io::Error),
}

/// Load every member crate's sources and run the full rule set over
/// them. Returns sorted findings (empty means the workspace holds all
/// invariants) plus the number of files scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let (findings, stats) = scan_workspace_with(root, &ScanOptions::default())?;
    Ok((findings, stats.files))
}

/// [`scan_workspace`] with explicit parallelism, caching, and
/// changed-set control. Summarize runs one task per file on the
/// worker pool; linking is serial and global. Findings are sorted and
/// independent of `jobs`.
pub fn scan_workspace_with(
    root: &Path,
    opts: &ScanOptions,
) -> io::Result<(Vec<Finding>, ScanStats)> {
    let t_walk = Instant::now();
    let metas = enumerate(root)?;
    let mut stats = ScanStats { files: metas.len(), ..ScanStats::default() };
    stats.phases.push(("walk", t_walk.elapsed().as_micros()));

    let changed: Option<BTreeSet<&str>> =
        opts.changed.as_ref().map(|v| v.iter().map(String::as_str).collect());
    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.jobs
    };

    let t_sum = Instant::now();
    let cache_dir = opts.cache_dir.as_deref();
    let tasks: Vec<_> = metas
        .into_iter()
        .map(|meta| {
            let unchanged = changed.as_ref().is_some_and(|set| !set.contains(meta.label.as_str()));
            move || -> Outcome {
                // File-list mode, file outside the named set: trust
                // the cache without touching the source at all.
                if unchanged {
                    if let Some(sum) =
                        cache_dir.and_then(|d| crate::cache::load_any(d, &meta.label))
                    {
                        return Outcome::Hit(sum);
                    }
                }
                let raw = match fs::read_to_string(&meta.path) {
                    Ok(raw) => raw,
                    Err(e) => return Outcome::Io(e),
                };
                let file = SourceFile {
                    label: meta.label,
                    raw,
                    crate_name: meta.crate_name,
                    is_crate_root: meta.is_crate_root,
                    policy: meta.policy,
                };
                if let Some(dir) = cache_dir {
                    let fp = crate::summary::fingerprint(&file);
                    if let Some(sum) = crate::cache::load(dir, &file.label, fp) {
                        return Outcome::Hit(sum);
                    }
                }
                Outcome::Miss(crate::summary::summarize(&file))
            }
        })
        .collect();
    let outcomes = crate::par::run_tasks(jobs, tasks);
    stats.phases.push(("summarize", t_sum.elapsed().as_micros()));

    let t_store = Instant::now();
    let mut sums = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Outcome::Hit(sum) => {
                stats.cache_hits += 1;
                sums.push(sum);
            }
            Outcome::Miss(sum) => {
                stats.cache_misses += 1;
                if let Some(dir) = cache_dir {
                    crate::cache::store(dir, &sum)?;
                }
                sums.push(sum);
            }
            Outcome::Io(e) => return Err(e),
        }
    }
    if cache_dir.is_some() {
        stats.phases.push(("cache-store", t_store.elapsed().as_micros()));
    }

    let findings = crate::rules::link_timed(&sums, &mut stats.phases);
    Ok((findings, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_skips_target_and_symlinks() {
        let base =
            std::env::temp_dir().join(format!("teleios-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let src = base.join("src");
        fs::create_dir_all(src.join("b")).unwrap();
        fs::create_dir_all(src.join("target")).unwrap();
        fs::write(src.join("lib.rs"), "").unwrap();
        fs::write(src.join("b").join("mod.rs"), "").unwrap();
        fs::write(src.join("target").join("gen.rs"), "").unwrap();
        fs::create_dir_all(base.join("elsewhere")).unwrap();
        fs::write(base.join("elsewhere").join("esc.rs"), "").unwrap();
        #[cfg(unix)]
        std::os::unix::fs::symlink(base.join("elsewhere"), src.join("link")).unwrap();

        let mut files = Vec::new();
        collect_rs_files(&src, &mut files).unwrap();
        let names: Vec<String> = files.iter().map(|p| rel_label(&base, p)).collect();
        assert_eq!(names, vec!["src/b/mod.rs", "src/lib.rs"]);
        fs::remove_dir_all(&base).unwrap();
    }
}
