//! Workspace walking: enumerate member crates, derive each file's
//! [`FilePolicy`] from where it lives, and hand the full file set to
//! [`analyze`] so the cross-file rules (lock-order, cancel-safety,
//! swallowed-result) see whole crates at once.

use crate::rules::{analyze, FilePolicy, Finding, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates allowed to own OS threads and relaxed atomics: the
/// concurrency substrate itself and the model checker that spawns
/// real threads to control modeled ones.
const SUBSTRATE_CRATES: &[&str] = &["exec", "loom"];

/// The one crate allowed to mutate the filesystem directly: the
/// storage engine whose `Medium` is everyone else's doorway to disk.
const FS_DOORWAY_CRATES: &[&str] = &["store"];

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Depth-first walk in sorted order, so the scan (and therefore
/// finding order and file counts) is identical across filesystems.
/// Symlinks are skipped — a linked directory could escape the
/// workspace or loop the walk — and so is any directory named
/// `target`: build output is never source, and a stray
/// `CARGO_TARGET_DIR` inside a member must not slow the scan.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<Vec<_>>>()?;
    entries.sort();
    for path in entries {
        if fs::symlink_metadata(&path)?.file_type().is_symlink() {
            continue;
        }
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn policy_for(crate_name: &str, label: &str) -> FilePolicy {
    FilePolicy {
        substrate: SUBSTRATE_CRATES.contains(&crate_name),
        fs_doorway: FS_DOORWAY_CRATES.contains(&crate_name),
        bin_target: label.contains("/src/bin/")
            || label.starts_with("src/bin/")
            || label.ends_with("src/main.rs")
            || label.contains("/benches/")
            || label.starts_with("benches/")
            || label.contains("/examples/")
            || label.starts_with("examples/"),
    }
}

/// A workspace member: its short name and directory.
struct Member {
    name: String,
    dir: PathBuf,
}

fn members(root: &Path) -> io::Result<Vec<Member>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push(Member { name, dir });
        }
    }
    // The root package (facade crate), if the workspace manifest also
    // declares one.
    if root.join("src").join("lib.rs").is_file() {
        out.push(Member {
            name: "root".to_string(),
            dir: root.to_path_buf(),
        });
    }
    Ok(out)
}

/// Load every member crate's sources and run the full rule set over
/// them. Returns sorted findings (empty means the workspace holds all
/// invariants) plus the number of files scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let mut sources: Vec<SourceFile> = Vec::new();
    for member in members(root)? {
        let crate_root = member.dir.join("src").join("lib.rs");
        let mut files = Vec::new();
        collect_rs_files(&member.dir.join("src"), &mut files)?;
        collect_rs_files(&member.dir.join("benches"), &mut files)?;
        collect_rs_files(&member.dir.join("examples"), &mut files)?;
        files.sort();
        for file in files {
            let label = rel_label(root, &file);
            // The root member's walk must not descend into crates/
            // (each crate is scanned as its own member).
            if member.name == "root" && label.starts_with("crates/") {
                continue;
            }
            let raw = fs::read_to_string(&file)?;
            sources.push(SourceFile {
                policy: policy_for(&member.name, &label),
                is_crate_root: file == crate_root,
                crate_name: member.name.clone(),
                label,
                raw,
            });
        }
    }
    let file_count = sources.len();
    Ok((analyze(&sources), file_count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_skips_target_and_symlinks() {
        let base =
            std::env::temp_dir().join(format!("teleios-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let src = base.join("src");
        fs::create_dir_all(src.join("b")).unwrap();
        fs::create_dir_all(src.join("target")).unwrap();
        fs::write(src.join("lib.rs"), "").unwrap();
        fs::write(src.join("b").join("mod.rs"), "").unwrap();
        fs::write(src.join("target").join("gen.rs"), "").unwrap();
        fs::create_dir_all(base.join("elsewhere")).unwrap();
        fs::write(base.join("elsewhere").join("esc.rs"), "").unwrap();
        #[cfg(unix)]
        std::os::unix::fs::symlink(base.join("elsewhere"), src.join("link")).unwrap();

        let mut files = Vec::new();
        collect_rs_files(&src, &mut files).unwrap();
        let names: Vec<String> = files.iter().map(|p| rel_label(&base, p)).collect();
        assert_eq!(names, vec!["src/b/mod.rs", "src/lib.rs"]);
        fs::remove_dir_all(&base).unwrap();
    }
}
