//! Source masking: replace the *contents* of comments, string
//! literals, and char literals with spaces (newlines preserved) so the
//! rule scanner can match tokens by offset without being fooled by
//! `"thread::spawn"` in a string or `panic!` in a doc comment. The
//! output has the same byte length as the input, so byte offsets (and
//! therefore line:col positions) carry over unchanged.

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in out.iter_mut().take(to).skip(from) {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Mask a normal (escaped) string literal; `i` is at the opening `"`.
/// Returns the index just past the closing quote.
fn mask_string(out: &mut [u8], b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        if b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            blank(out, i, j + 1);
            return j + 1;
        } else {
            j += 1;
        }
    }
    blank(out, i, n);
    n
}

/// Mask a raw string literal. `start` is the first byte of the whole
/// literal (the `r`/`br` prefix), `quote` the opening `"`, `hashes`
/// the number of `#`s. Returns the index just past the terminator.
fn mask_raw_string(out: &mut [u8], b: &[u8], start: usize, quote: usize, hashes: usize) -> usize {
    let n = b.len();
    let mut k = quote + 1;
    while k < n {
        if b[k] == b'"' && k + hashes < n + 1 && b[k + 1..].len() >= hashes && b[k + 1..k + 1 + hashes].iter().all(|h| *h == b'#') {
            let end = k + hashes;
            blank(out, start, end + 1);
            return end + 1;
        }
        k += 1;
    }
    blank(out, start, n);
    n
}

/// Mask a char / byte-char literal; `i` is at the opening `'`.
/// Returns the index just past the closing quote.
fn mask_char_lit(out: &mut [u8], b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        if b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'\'' {
            blank(out, i, j + 1);
            return j + 1;
        } else {
            j += 1;
        }
    }
    blank(out, i, n);
    n
}

/// Produce a same-length copy of `src` with comment, string-literal,
/// and char-literal contents replaced by spaces (newlines kept).
pub fn mask_code(src: &str) -> String {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = b.to_vec();
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        // Line comment (also `///` and `//!` doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            blank(&mut out, start, i);
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Identifier — or a prefixed literal (`r""`, `r#""#`, `b""`,
        // `br#""#`, `b''`) or raw identifier (`r#type`).
        if is_ident_char(c) {
            let start = i;
            while i < n && is_ident_char(b[i]) {
                i += 1;
            }
            let word = &b[start..i];
            if i < n && matches!(word, b"r" | b"b" | b"br" | b"rb") {
                let next = b[i];
                if next == b'\'' && word == b"b" {
                    i = mask_char_lit(&mut out, b, i);
                    continue;
                }
                if next == b'"' {
                    if word == b"b" {
                        i = mask_string(&mut out, b, i);
                    } else {
                        i = mask_raw_string(&mut out, b, start, i, 0);
                    }
                    continue;
                }
                if next == b'#' {
                    let mut j = i;
                    let mut hashes = 0usize;
                    while j < n && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == b'"' && word != b"b" {
                        i = mask_raw_string(&mut out, b, start, j, hashes);
                        continue;
                    }
                    if hashes == 1 && word == b"r" && j < n && is_ident_char(b[j]) {
                        // Raw identifier `r#type`: skip the hash; the
                        // next loop turn consumes the identifier.
                        i += 1;
                        continue;
                    }
                }
            }
            continue;
        }
        if c == b'"' {
            i = mask_string(&mut out, b, i);
            continue;
        }
        if c == b'\'' {
            // Char literal vs. lifetime/label: a literal is `'\...'`,
            // `'x'`, or a single non-ASCII scalar quoted; anything
            // else (`'a`, `'static`, `'_`) is a lifetime — leave it.
            if i + 1 < n && b[i + 1] == b'\\' {
                i = mask_char_lit(&mut out, b, i);
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' {
                blank(&mut out, i, i + 3);
                i += 3;
                continue;
            }
            if i + 1 < n && b[i + 1] >= 0x80 {
                i = mask_char_lit(&mut out, b, i);
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::mask_code;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask_code("a // x.unwrap()\nb /* panic! /* nested */ still */ c");
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(!m.contains("nested"));
        assert!(m.contains('a') && m.contains('b') && m.contains('c'));
        assert!(m.contains('\n'), "newlines survive masking");
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let m = mask_code(r##"let s = "thread::spawn"; let r = r#"println!("x")"#; code();"##);
        assert!(!m.contains("spawn"));
        assert!(!m.contains("println"));
        assert!(m.contains("code"));
    }

    #[test]
    fn masks_escaped_quote_in_string() {
        let m = mask_code(r#"let s = "a\"b.unwrap()"; after();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("after"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask_code(r#"let q = '"'; fn f<'a>(x: &'a str) -> &'a str { x } let e = '\''; "no string opened".len();"#);
        assert!(m.contains("'a"), "lifetimes preserved");
        assert!(!m.contains("no string opened"), "the quote char literal must not open a string");
    }

    #[test]
    fn same_length_preserves_offsets() {
        let src = "let a = \"x\"; // c\nb.unwrap();";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.find("unwrap"), src.find("unwrap"));
    }

    #[test]
    fn raw_identifiers_pass_through() {
        let m = mask_code("let r#type = 1; r#type + 1");
        assert!(m.contains("type"));
    }

    #[test]
    fn byte_literals_masked() {
        let m = mask_code(r#"let x = b"unwrap"; let y = b'u'; keep();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("keep"));
    }
}
