#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-lint — the workspace invariant checker
//!
//! The TELEIOS crates rely on a handful of architectural invariants
//! that ordinary compilation cannot enforce: all parallelism flows
//! through `teleios-exec`, library code never panics or prints, every
//! public error enum is a real `std::error::Error`, and atomics stay
//! sequentially consistent outside the substrate (so the
//! `teleios-loom` model checker's SeqCst model stays faithful). This
//! crate turns those conventions into a mechanical gate: a pure-std
//! scanner that masks comments/strings, tokenizes what remains,
//! tracks `#[cfg(test)]` regions, and reports violations as
//! `path:line:col` diagnostics.
//!
//! Rules (stable names usable in `// teleios-lint: allow(<name>)`):
//!
//! | rule              | invariant                                             |
//! |-------------------|-------------------------------------------------------|
//! | `no-thread-spawn` | L1: no `std::thread::{spawn, Builder}` outside the substrate crates |
//! | `no-panic`        | L2: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `no-println`      | L3: no `println!`/`eprintln!` in library code          |
//! | `error-impls`     | L4: public `*Error` enums implement `Display` + `Error` |
//! | `no-relaxed`      | L5: no `Ordering::Relaxed` outside `crates/exec`       |
//! | `crate-attrs`     | crate roots carry `forbid(unsafe_code)` + clippy denies |
//!
//! Exemptions are structural, not ad-hoc: `crates/exec` and
//! `crates/loom` may own threads and relaxed atomics (L1/L5); binary,
//! bench, and example targets may print and fail fast (L2/L3) since a
//! driver aborting on a setup error is correct behavior; `#[cfg(test)]`
//! code may do all of the above. Deliberate single-site exceptions in
//! library code take a `// teleios-lint: allow(<rule>)` marker on the
//! same line or the line above.

pub mod mask;
pub mod rules;
pub mod workspace;

pub use rules::{scan_file, FilePolicy, Finding, Rule};
pub use workspace::{find_workspace_root, scan_workspace};

/// The seeded-violation fixture used by the self-test.
pub const FIXTURE: &str = include_str!("../fixtures/violations.rs");

/// Exactly the findings the fixture must produce, in sorted order:
/// one (or more) per rule L1–L5, nothing from the decoys.
pub const FIXTURE_EXPECTED: &[(usize, Rule)] = &[
    (6, Rule::ErrorImpls),
    (11, Rule::NoThreadSpawn),
    (15, Rule::NoPanic),
    (19, Rule::NoPanic),
    (23, Rule::NoPrintln),
    (27, Rule::NoRelaxed),
];

/// Run the scanner over the embedded fixture and check the findings
/// against [`FIXTURE_EXPECTED`] exactly. Returns human-readable
/// report lines; `Err` lines describe the first mismatch.
pub fn run_self_test() -> Result<Vec<String>, Vec<String>> {
    let mut findings = scan_file("fixtures/violations.rs", FIXTURE, FilePolicy::default());
    findings.sort();
    let got: Vec<(usize, Rule)> = findings.iter().map(|f| (f.line, f.rule)).collect();
    let expected: Vec<(usize, Rule)> = FIXTURE_EXPECTED.to_vec();
    if got == expected {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("  fires as expected: {f}"))
            .collect();
        lines.push(format!(
            "self-test OK: {} seeded violations caught, 0 false positives from decoys",
            findings.len()
        ));
        Ok(lines)
    } else {
        let mut lines = vec!["self-test FAILED".to_string()];
        for (line, rule) in &expected {
            if !got.contains(&(*line, *rule)) {
                lines.push(format!("  missing: fixture line {line} rule {}", rule.name()));
            }
        }
        for f in &findings {
            if !expected.contains(&(f.line, f.rule)) {
                lines.push(format!("  unexpected: {f}"));
            }
        }
        Err(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_self_test_passes() {
        let report = run_self_test().expect("fixture findings must match FIXTURE_EXPECTED");
        assert!(report.iter().any(|l| l.contains("self-test OK")));
    }

    #[test]
    fn fixture_covers_every_rule_l1_to_l5() {
        let rules: std::collections::HashSet<Rule> =
            FIXTURE_EXPECTED.iter().map(|(_, r)| *r).collect();
        for rule in [
            Rule::NoThreadSpawn,
            Rule::NoPanic,
            Rule::NoPrintln,
            Rule::ErrorImpls,
            Rule::NoRelaxed,
        ] {
            assert!(rules.contains(&rule), "fixture misses {}", rule.name());
        }
    }

    #[test]
    fn fixture_diagnostics_carry_file_and_line() {
        let findings = scan_file("fixtures/violations.rs", FIXTURE, FilePolicy::default());
        for f in findings {
            let rendered = format!("{f}");
            assert!(
                rendered.starts_with(&format!("fixtures/violations.rs:{}:", f.line)),
                "diagnostic must lead with file:line — got {rendered}"
            );
            assert!(f.col >= 1);
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in [
            Rule::NoThreadSpawn,
            Rule::NoPanic,
            Rule::NoPrintln,
            Rule::ErrorImpls,
            Rule::NoRelaxed,
            Rule::CrateAttrs,
        ] {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }
}
