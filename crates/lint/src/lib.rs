#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-lint — the workspace invariant checker
//!
//! The TELEIOS crates rely on a handful of architectural invariants
//! that ordinary compilation cannot enforce: all parallelism flows
//! through `teleios-exec`, library code never panics or prints, every
//! public error enum is a real `std::error::Error`, atomics stay
//! sequentially consistent outside the substrate (so the
//! `teleios-loom` model checker's SeqCst model stays faithful), locks
//! are acquired in one global order, and pool-dispatched work stays
//! cancellable. This crate turns those conventions into a mechanical
//! gate: a pure-std scanner that masks comments/strings, lexes what
//! remains into a token stream ([`lexer`]), resolves `use` aliases,
//! and runs in two phases. **Summarize** ([`summary`]) is per-file
//! and pure: local token rules plus an effect summary (locks
//! acquired/released, blocking calls, txn begin/commit, `CancelToken`
//! polls, dispatch sites, imports/re-exports) extracted from the
//! token stream and CFG — so it parallelizes ([`par`]) and caches
//! ([`cache`]) freely. **Link** ([`interproc`]) stitches the
//! summaries into one workspace-wide call graph — Tarjan SCCs over
//! the crate-dependency DAG, fixpoint inside cycles, `pub use`
//! re-export chains chased to the defining crate — and runs the
//! interprocedural rules over it, reporting violations as
//! `path:line:col` diagnostics.
//!
//! Rules (stable names usable in `// teleios-lint: allow(<name>)`):
//!
//! | rule               | invariant                                             |
//! |--------------------|-------------------------------------------------------|
//! | `no-thread-spawn`  | L1: no `std::thread::{spawn, Builder}` outside the substrate crates — aliases included |
//! | `no-panic`         | L2: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `no-println`       | L3: no `println!`/`eprintln!` in library code          |
//! | `error-impls`      | L4: public `*Error` enums implement `Display` + `Error` |
//! | `no-relaxed`       | L5: no `Ordering::Relaxed` outside `crates/exec` — aliases included |
//! | `crate-attrs`      | crate roots carry `forbid(unsafe_code)` + clippy denies |
//! | `lock-order`       | L6: the workspace-wide lock-acquisition graph is acyclic — cycles may span crates |
//! | `cancel-safety`    | L7: pool-dispatched closures block only through `sleep_cancellable` / `poll_cancellable` — call chains followed across crate boundaries |
//! | `swallowed-result` | L8: no `let _ =` / `.ok()` discarding a workspace `*Error` Result — nor a `flush`/`sync_all`/`sync_data` barrier's result |
//! | `no-direct-fs`     | L9: no direct `std::fs` mutation / `File::create` / `OpenOptions` outside `crates/store` — disk goes through the storage `Medium` |
//! | `txn-leak`         | L10: every `begin()` reaches `commit()`/`rollback()` on every path out of the function, `?`-exits included (path-sensitive, `cfg.rs`) |
//! | `guard-across-blocking` | L11: no exclusive lock guard live across pool dispatch, `sleep_cancellable`, an fsync barrier, or a WAL commit |
//! | `loop-cancel-poll` | L12: `loop`/`while` on a pool-dispatched path polls the `CancelToken` on every iteration path |
//! | `unused-allow`     | warning: an allow marker that suppresses nothing       |
//!
//! Exemptions are structural, not ad-hoc: `crates/exec` and
//! `crates/loom` may own threads, relaxed atomics, and raw blocking
//! waits (L1/L5/L7); binary, bench, and example targets may print and
//! fail fast (L2/L3) since a driver aborting on a setup error is
//! correct behavior; `crates/store` — the storage engine whose
//! `Medium` is everyone else's doorway to disk — may mutate the
//! filesystem (L9); `#[cfg(test)]` code may do all of the above.
//! Deliberate single-site exceptions in library code take a
//! `// teleios-lint: allow(<rule>)` marker on the same line or the
//! line above — and a marker that stops matching anything is itself
//! reported (`unused-allow`), so stale waivers can't accumulate.

pub(crate) mod cache;
pub(crate) mod cfg;
pub mod graph;
pub(crate) mod interproc;
pub mod lexer;
pub mod mask;
pub(crate) mod par;
pub mod render;
pub mod rules;
pub mod summary;
pub mod workspace;

pub use rules::{analyze, scan_file, FilePolicy, Finding, Rule, SourceFile};
pub use workspace::{
    find_workspace_root, scan_workspace, scan_workspace_with, ScanOptions, ScanStats,
};

/// The seeded-violation fixture used by the self-test.
pub const FIXTURE: &str = include_str!("../fixtures/violations.rs");

/// The two-crate fixture workspace used by self-test phase two:
/// `fix_alpha` and `fix_beta` depend on each other (so the linker's
/// SCC fixpoint runs on every self-test), and every interprocedural
/// rule has a seeded violation that only exists across the crate
/// boundary.
pub const XCRATE_ALPHA: &str = include_str!("../fixtures/xcrate_alpha.rs");
/// See [`XCRATE_ALPHA`].
pub const XCRATE_BETA: &str = include_str!("../fixtures/xcrate_beta.rs");

/// Exactly the findings the cross-crate fixture workspace must
/// produce, in sorted order: `(path, line, col, rule)`. Each entry is
/// a violation that no per-crate analysis could see — the acquire,
/// the blocking call, or the poll credit lives in the other crate.
pub const XCRATE_EXPECTED: &[(&str, usize, usize, Rule)] = &[
    // The lock cycle: ingest -> catalog lives in fix_alpha, catalog
    // -> ingest in fix_beta; anchored where the cycle's first edge
    // (BTreeMap order) acquires its second lock.
    ("fixtures/xcrate_alpha.rs", 27, 15, Rule::LockOrder),
    // `pub use` chain: the dispatcher calls fix_beta::relay_stall,
    // which re-exports fix_alpha::alpha_stall — the recv() is here.
    ("fixtures/xcrate_alpha.rs", 48, 17, Rule::CancelSafety),
    // Guard held across a call whose fix_beta summary says "may
    // block on the fsync barrier".
    ("fixtures/xcrate_alpha.rs", 63, 15, Rule::GuardAcrossBlocking),
    // Cancellable-dispatched loop whose body churns in fix_beta
    // without ever polling.
    ("fixtures/xcrate_alpha.rs", 71, 5, Rule::LoopCancelPoll),
    // Direct cross-crate call into a sleeping helper.
    ("fixtures/xcrate_beta.rs", 26, 10, Rule::CancelSafety),
    // Bare call resolved through `use fix_beta::*`.
    ("fixtures/xcrate_beta.rs", 30, 17, Rule::CancelSafety),
];

/// Exactly the findings the fixture must produce, in sorted order:
/// `(line, col, rule)` — one (or more) per rule, nothing from the
/// decoys. Positions are exact so a drifting fixture can't mask a
/// rule that stopped firing or started firing in the wrong place.
pub const FIXTURE_EXPECTED: &[(usize, usize, Rule)] = &[
    (1, 1, Rule::CrateAttrs),
    (1, 1, Rule::CrateAttrs),
    (6, 1, Rule::ErrorImpls),
    (11, 10, Rule::NoThreadSpawn),
    (15, 7, Rule::NoPanic),
    (19, 5, Rule::NoPanic),
    (23, 5, Rule::NoPrintln),
    (27, 34, Rule::NoRelaxed),
    (81, 5, Rule::NoThreadSpawn),
    (94, 23, Rule::LockOrder),
    (111, 14, Rule::CancelSafety),
    (122, 13, Rule::SwallowedResult),
    (126, 21, Rule::SwallowedResult),
    (138, 5, Rule::UnusedAllow),
    (170, 14, Rule::CancelSafety),
    (175, 33, Rule::NoRelaxed),
    (198, 10, Rule::NoDirectFs),
    (202, 14, Rule::NoDirectFs),
    (206, 14, Rule::NoDirectFs),
    (212, 18, Rule::SwallowedResult),
    (216, 18, Rule::SwallowedResult),
    (250, 5, Rule::TxnLeak),
    (255, 5, Rule::TxnLeak),
    (302, 10, Rule::GuardAcrossBlocking),
    (308, 5, Rule::GuardAcrossBlocking),
    (338, 5, Rule::LoopCancelPoll),
    (344, 5, Rule::LoopCancelPoll),
];

/// Run the full analysis over the embedded fixtures and check the
/// findings against the pinned expectations exactly — file, line,
/// column, and rule. Phase one scans the single-file fixture (as its
/// own crate root, so `crate-attrs` participates) against
/// [`FIXTURE_EXPECTED`]; phase two scans the two-crate fixture
/// workspace against [`XCRATE_EXPECTED`], proving each widened rule
/// fires across a crate boundary. Returns human-readable report
/// lines; `Err` lines describe every mismatch.
pub fn run_self_test() -> Result<Vec<String>, Vec<String>> {
    let findings = analyze(&[SourceFile {
        label: "fixtures/violations.rs".to_string(),
        raw: FIXTURE.to_string(),
        crate_name: "fixture".to_string(),
        is_crate_root: true,
        policy: FilePolicy::default(),
    }]);
    let got: Vec<(usize, usize, Rule)> =
        findings.iter().map(|f| (f.line, f.col, f.rule)).collect();
    let expected: Vec<(usize, usize, Rule)> = FIXTURE_EXPECTED.to_vec();
    let mut ok_lines: Vec<String> = Vec::new();
    let mut err_lines: Vec<String> = Vec::new();
    if got == expected {
        ok_lines.extend(findings.iter().map(|f| format!("  fires as expected: {f}")));
        ok_lines.push(format!(
            "self-test OK: {} seeded violations caught at exact line:col, 0 false positives from decoys",
            findings.len()
        ));
    } else {
        err_lines.push("self-test FAILED".to_string());
        for (line, col, rule) in &expected {
            if !got.contains(&(*line, *col, *rule)) {
                err_lines.push(format!(
                    "  missing: fixture {line}:{col} rule {}",
                    rule.name()
                ));
            }
        }
        for f in &findings {
            if !expected.contains(&(f.line, f.col, f.rule)) {
                err_lines.push(format!("  unexpected: {f}"));
            }
        }
    }

    // Phase two: the cross-crate fixture workspace.
    let xfindings = analyze(&[
        SourceFile {
            label: "fixtures/xcrate_alpha.rs".to_string(),
            raw: XCRATE_ALPHA.to_string(),
            crate_name: "fix_alpha".to_string(),
            is_crate_root: false,
            policy: FilePolicy::default(),
        },
        SourceFile {
            label: "fixtures/xcrate_beta.rs".to_string(),
            raw: XCRATE_BETA.to_string(),
            crate_name: "fix_beta".to_string(),
            is_crate_root: false,
            policy: FilePolicy::default(),
        },
    ]);
    let xgot: Vec<(&str, usize, usize, Rule)> = xfindings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    let xexpected: Vec<(&str, usize, usize, Rule)> = XCRATE_EXPECTED.to_vec();
    if xgot == xexpected {
        ok_lines.extend(xfindings.iter().map(|f| format!("  fires as expected: {f}")));
        ok_lines.push(format!(
            "self-test phase 2 OK: {} cross-crate violations caught at exact file:line:col, 0 false positives from decoys",
            xfindings.len()
        ));
    } else {
        if err_lines.is_empty() {
            err_lines.push("self-test FAILED".to_string());
        }
        for (path, line, col, rule) in &xexpected {
            if !xgot.contains(&(*path, *line, *col, *rule)) {
                err_lines.push(format!(
                    "  missing: {path} {line}:{col} rule {}",
                    rule.name()
                ));
            }
        }
        for f in &xfindings {
            if !xexpected.contains(&(f.path.as_str(), f.line, f.col, f.rule)) {
                err_lines.push(format!("  unexpected: {f}"));
            }
        }
    }

    if err_lines.is_empty() {
        Ok(ok_lines)
    } else {
        Err(err_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_self_test_passes() {
        let report = run_self_test().expect("fixture findings must match FIXTURE_EXPECTED");
        assert!(report.iter().any(|l| l.contains("self-test OK")));
    }

    #[test]
    fn fixture_covers_every_rule() {
        let rules: std::collections::HashSet<Rule> =
            FIXTURE_EXPECTED.iter().map(|(_, _, r)| *r).collect();
        for rule in [
            Rule::NoThreadSpawn,
            Rule::NoPanic,
            Rule::NoPrintln,
            Rule::ErrorImpls,
            Rule::NoRelaxed,
            Rule::CrateAttrs,
            Rule::LockOrder,
            Rule::CancelSafety,
            Rule::SwallowedResult,
            Rule::NoDirectFs,
            Rule::TxnLeak,
            Rule::GuardAcrossBlocking,
            Rule::LoopCancelPoll,
            Rule::UnusedAllow,
        ] {
            assert!(rules.contains(&rule), "fixture misses {}", rule.name());
        }
    }

    #[test]
    fn fixture_diagnostics_carry_file_and_line() {
        let findings = scan_file("fixtures/violations.rs", FIXTURE, FilePolicy::default());
        for f in findings {
            let rendered = format!("{f}");
            assert!(
                rendered.starts_with(&format!("fixtures/violations.rs:{}:{}:", f.line, f.col)),
                "diagnostic must lead with file:line:col — got {rendered}"
            );
            assert!(f.col >= 1);
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in [
            Rule::NoThreadSpawn,
            Rule::NoPanic,
            Rule::NoPrintln,
            Rule::ErrorImpls,
            Rule::NoRelaxed,
            Rule::CrateAttrs,
            Rule::LockOrder,
            Rule::CancelSafety,
            Rule::SwallowedResult,
            Rule::NoDirectFs,
            Rule::TxnLeak,
            Rule::GuardAcrossBlocking,
            Rule::LoopCancelPoll,
            Rule::UnusedAllow,
        ] {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn only_unused_allow_is_a_warning() {
        assert!(Rule::UnusedAllow.is_warning());
        for rule in [
            Rule::NoThreadSpawn,
            Rule::NoPanic,
            Rule::NoPrintln,
            Rule::ErrorImpls,
            Rule::NoRelaxed,
            Rule::CrateAttrs,
            Rule::LockOrder,
            Rule::CancelSafety,
            Rule::SwallowedResult,
            Rule::NoDirectFs,
            Rule::TxnLeak,
            Rule::GuardAcrossBlocking,
            Rule::LoopCancelPoll,
        ] {
            assert!(!rule.is_warning(), "{} must be an error", rule.name());
        }
    }
}
