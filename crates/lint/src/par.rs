//! Parallel execution for the scan's summarize phase.
//!
//! With the default `exec-pool` feature the linter dogfoods
//! `teleios-exec`: file summaries are produced on the same
//! work-stealing `WorkerPool` the rules police. Without the feature
//! (a standalone `rustc` build of this crate, or `--no-default-
//! features`) a scoped-thread fan-out with atomic index claiming
//! provides the same submission-order result semantics — results
//! always come back in task order, so parallel and serial scans are
//! byte-identical.

#[cfg(feature = "exec-pool")]
pub(crate) fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    teleios_exec::WorkerPool::with_threads(jobs.max(1)).run(tasks)
}

#[cfg(not(feature = "exec-pool"))]
pub(crate) fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let jobs = jobs.max(1);
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let n = tasks.len();
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // This fallback exists precisely for builds without the
    // substrate; scoped threads join before return, so no detached
    // thread escapes the call.
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let task = slots[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(f) = task {
                    let out = f();
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let out = run_tasks(8, tasks);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
        assert_eq!(run_tasks(1, tasks), vec![0, 1, 2, 3]);
    }
}
