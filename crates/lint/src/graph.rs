//! Shared syntactic extraction over the token stream: function
//! boundaries, lock acquisitions, call shapes, pool-dispatch sites,
//! and raw blocking calls. The results feed the per-file effect
//! summaries ([`crate::summary`]); the concurrency rules themselves
//! (L6 `lock-order`, L7 `cancel-safety`) live in
//! [`crate::interproc`], where calls are resolved across crate
//! boundaries through the workspace-wide call graph.
//!
//! Known approximations, chosen to avoid false positives:
//!
//! - lock identity is the receiver field/binding name (`tables` in
//!   `self.tables.read()`), so two instances of one type share a
//!   node; self-edges (re-acquiring the same name) are skipped since
//!   different instances commonly share field names;
//! - held-ness does not propagate through functions *returning*
//!   guards (e.g. a `lock_state()` accessor) — only through calls
//!   made while a guard is live in the caller;
//! - `Type::assoc()` path calls are not resolved (constructors like
//!   `new` collide across modules); `.method()`, bare, and
//!   module-qualified (`wal::replay(..)`, `teleios_store::open(..)`)
//!   calls are.

use crate::lexer::{enclosing_block_end, ident_at, is_ident, is_punct, stmt_end, stmt_start, Tok};
use crate::rules::FileCtx;

/// One `fn` item: its name, the token index of the name, the token
/// range of its `{...}` body (absent for trait declarations), and the
/// index of the body-open `{` / terminating `;` (the signature end).
pub(crate) struct FnDef {
    pub name: String,
    pub name_idx: usize,
    pub body: Option<(usize, usize)>,
    pub sig_end: usize,
}

/// Every `fn` item in a token stream, at any nesting depth.
pub(crate) fn extract_fns(toks: &[Tok<'_>]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            // `fn(u8) -> u8` pointer types have no name.
            i += 1;
            continue;
        };
        let d = toks[i].depth;
        let mut j = i + 2;
        let mut sig_end = toks.len();
        let mut body = None;
        while j < toks.len() {
            if toks[j].depth < d {
                break;
            }
            if is_punct(toks, j, b';') && toks[j].depth == d {
                sig_end = j;
                break;
            }
            if is_punct(toks, j, b'{') && toks[j].depth == d {
                sig_end = j;
                let mut k = j + 1;
                let mut close = toks.len().saturating_sub(1);
                while k < toks.len() {
                    if is_punct(toks, k, b'}') && toks[k].depth == d {
                        close = k;
                        break;
                    }
                    k += 1;
                }
                body = Some((j, close));
                break;
            }
            j += 1;
        }
        fns.push(FnDef { name: name.to_string(), name_idx: i + 1, body, sig_end });
        i += 2;
    }
    fns
}

/// Index of the innermost function whose body contains token `i`.
/// Closures belong to their enclosing `fn`; nested `fn` items own
/// their tokens.
pub(crate) fn fn_containing(fns: &[FnDef], i: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (k, f) in fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            if open < i && i < close {
                let len = close - open;
                if best.map_or(true, |(bl, _)| len < bl) {
                    best = Some((len, k));
                }
            }
        }
    }
    best.map(|(_, k)| k)
}

/// The byte offset of token `i`, saturating past the end of the
/// stream (ranges like a statement end can point one past the last
/// token).
pub(crate) fn off_at(toks: &[Tok<'_>], i: usize) -> usize {
    toks.get(i).map_or(usize::MAX, |t| t.off)
}

/// A lock acquisition at token `i`: `<name>.lock()` / `.read()` /
/// `.write()` with empty argument lists (io's `read(&mut buf)` never
/// matches). Returns `(lock name, byte offset, byte offset of the
/// last token at which the guard is still held)` — the enclosing
/// block end for `let`-bound guards, the statement end for
/// temporaries (including `let _ =`).
pub(crate) fn acq_at(toks: &[Tok<'_>], i: usize) -> Option<(String, usize, usize)> {
    let name = ident_at(toks, i)?;
    if !(is_punct(toks, i + 1, b'.')
        && matches!(ident_at(toks, i + 2), Some("lock" | "read" | "write"))
        && is_punct(toks, i + 3, b'(')
        && is_punct(toks, i + 4, b')'))
    {
        return None;
    }
    let s = stmt_start(toks, i);
    let let_bound = is_ident(toks, s, "let")
        && !(is_ident(toks, s + 1, "_") && is_punct(toks, s + 2, b'='));
    let until = if let_bound { enclosing_block_end(toks, i) } else { stmt_end(toks, i) };
    Some((name.to_string(), toks[i].off, off_at(toks, until)))
}

/// The shape of a call site at token `i`: the callee name plus how it
/// was reached — `.method()`, bare `f()`, or path-qualified
/// `a::b::f()` (with the leading segments in `qual`). `Type::assoc()`
/// calls and uppercase names (tuple-struct / enum constructors) are
/// skipped: they never resolve to workspace `fn` items.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CallShape {
    pub name: String,
    pub qual: Vec<String>,
    pub method: bool,
}

pub(crate) fn call_shape_at(toks: &[Tok<'_>], i: usize) -> Option<CallShape> {
    let name = ident_at(toks, i)?;
    if !is_punct(toks, i + 1, b'(') {
        return None;
    }
    if matches!(name, "lock" | "read" | "write") {
        return None;
    }
    // `fn f(` is a declaration, not a call.
    if i > 0 && ident_at(toks, i - 1) == Some("fn") {
        return None;
    }
    if name.chars().next().is_some_and(|c| !c.is_ascii_lowercase() && c != '_') {
        return None;
    }
    if i > 0 && is_punct(toks, i - 1, b'.') {
        return Some(CallShape { name: name.to_string(), qual: Vec::new(), method: true });
    }
    let mut qual: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 3 && is_punct(toks, j - 1, b':') && is_punct(toks, j - 2, b':') {
        match ident_at(toks, j - 3) {
            Some(seg) => {
                qual.push(seg.to_string());
                j -= 3;
            }
            // `<T as Trait>::f()` — not resolvable from tokens.
            None => return None,
        }
    }
    qual.reverse();
    if qual
        .iter()
        .any(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
    {
        return None; // `Type::assoc()`
    }
    Some(CallShape { name: name.to_string(), qual, method: false })
}

/// The pool-dispatch methods whose task closures must stay
/// cancellable (L7) — and, for the `*_cancellable` subset, put loops
/// in scope for L12.
pub(crate) const DISPATCH_METHODS: [&str; 5] = [
    "try_run_bounded",
    "try_run_bounded_cancellable",
    "run_stealing",
    "try_run_stealing",
    "try_run_stealing_cancellable",
];

/// Is token `i` the `.` of a pool-dispatch call? Returns the method
/// name.
pub(crate) fn dispatch_method_at(toks: &[Tok<'_>], i: usize) -> Option<&'static str> {
    if !is_punct(toks, i, b'.') {
        return None;
    }
    let m = ident_at(toks, i + 1)?;
    if !is_punct(toks, i + 2, b'(') {
        return None;
    }
    match m {
        "try_run_bounded" => Some("try_run_bounded"),
        "try_run_bounded_cancellable" => Some("try_run_bounded_cancellable"),
        "run_stealing" => Some("run_stealing"),
        "try_run_stealing" => Some("try_run_stealing"),
        "try_run_stealing_cancellable" => Some("try_run_stealing_cancellable"),
        // `.run(..)` / `.run_with(..)` are dispatches only on a
        // pool-ish receiver — `chain.run(..)` and friends are
        // ordinary calls.
        "run" if pool_receiver(toks, i) => Some("run"),
        "run_with" if pool_receiver(toks, i) => Some("run_with"),
        _ => None,
    }
}

fn pool_receiver(toks: &[Tok<'_>], dot: usize) -> bool {
    receiver_name(toks, dot).is_some_and(|r| r.to_lowercase().contains("pool"))
}

/// Is token `i` the method ident of a pool-dispatch call (so call
/// extraction must not double-count it as an ordinary call)?
pub(crate) fn dispatch_call_ident(toks: &[Tok<'_>], i: usize) -> bool {
    i > 0 && dispatch_method_at(toks, i - 1).is_some()
}

/// A raw blocking call at token `i` in the narrow L7 vocabulary:
/// `thread::sleep` (aliases included), channel `recv()` /
/// `recv_timeout(..)`. Returns `(byte offset, description)`.
pub(crate) fn direct_block_at(ctx: &FileCtx<'_>, i: usize) -> Option<(usize, &'static str)> {
    let toks = ctx.toks;
    if let Some(seg) = ident_at(toks, i) {
        let path_next = is_punct(toks, i + 1, b':') && is_punct(toks, i + 2, b':');
        if path_next
            && is_ident(toks, i + 3, "sleep")
            && (seg == "thread" || ctx.aliases.resolves_to(seg, &["std", "thread"]))
        {
            return Some((toks[i].off, "std::thread::sleep"));
        }
        if !path_next
            && is_punct(toks, i + 1, b'(')
            && ctx.aliases.resolves_to(seg, &["std", "thread", "sleep"])
        {
            return Some((toks[i].off, "std::thread::sleep"));
        }
    }
    if is_punct(toks, i, b'.')
        && is_ident(toks, i + 1, "recv")
        && is_punct(toks, i + 2, b'(')
        && is_punct(toks, i + 3, b')')
    {
        return Some((toks[i + 1].off, "channel recv()"));
    }
    if is_punct(toks, i, b'.') && is_ident(toks, i + 1, "recv_timeout") && is_punct(toks, i + 2, b'(') {
        return Some((toks[i + 1].off, "channel recv_timeout()"));
    }
    None
}

/// The name the receiver expression of `.method()` ends with: the
/// ident just before the `.`, or the call name for `f(..).method()`.
pub(crate) fn receiver_name<'a>(toks: &[Tok<'a>], dot: usize) -> Option<&'a str> {
    if dot == 0 {
        return None;
    }
    if let Some(r) = ident_at(toks, dot - 1) {
        return Some(r);
    }
    if is_punct(toks, dot - 1, b')') {
        let mut depth = 0i32;
        let mut k = dot - 1;
        loop {
            if is_punct(toks, k, b')') {
                depth += 1;
            } else if is_punct(toks, k, b'(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        return ident_at(toks, k.checked_sub(1)?);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{scan_file, FilePolicy, Finding, Rule};

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("fixture.rs", src, FilePolicy::default())
    }

    #[test]
    fn extract_fns_names_and_bodies() {
        let masked = crate::mask::mask_code("fn a() { b(); }\nimpl S {\n    fn m(&self) -> u8 { 0 }\n}\ntrait T { fn decl(&self); }");
        let toks = crate::lexer::lex(&masked);
        let fns = extract_fns(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "decl"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn call_shapes_cover_bare_method_and_qualified() {
        let masked = crate::mask::mask_code("fn f() { g(); h.m(); a::b::c(); Vec::new(); x.lock(); }");
        let toks = crate::lexer::lex(&masked);
        let shapes: Vec<CallShape> =
            (0..toks.len()).filter_map(|i| call_shape_at(&toks, i)).collect();
        assert_eq!(
            shapes,
            vec![
                CallShape { name: "g".into(), qual: vec![], method: false },
                CallShape { name: "m".into(), qual: vec![], method: true },
                CallShape { name: "c".into(), qual: vec!["a".into(), "b".into()], method: false },
            ]
        );
    }

    #[test]
    fn lock_order_cycle_fires_with_both_edges() {
        let src = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockOrder);
        assert!(f[0].msg.contains("a -> b"), "{}", f[0].msg);
        assert!(f[0].msg.contains("b -> a"), "{}", f[0].msg);
        assert!(f[0].msg.contains("fixture.rs:"), "{}", f[0].msg);
    }

    #[test]
    fn lock_order_sees_through_same_crate_calls() {
        let src = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn outer(&self) {
        let ga = self.a.lock();
        self.helper();
        drop(ga);
    }
    fn helper(&self) {
        let gb = self.b.lock();
        drop(gb);
    }
    fn inverse(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockOrder);
    }

    #[test]
    fn consistent_order_and_sequential_locks_are_clean() {
        let consistent = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn one(&self) { let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }
    fn two(&self) { let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }
}";
        assert!(scan(consistent).is_empty());
        // Statement-temporary guards don't overlap.
        let sequential = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn one(&self) { *self.a.lock().unwrap_or_else(|e| e.into_inner()) += 1; *self.b.lock().unwrap_or_else(|e| e.into_inner()) += 1; }
    fn two(&self) { *self.b.lock().unwrap_or_else(|e| e.into_inner()) += 1; *self.a.lock().unwrap_or_else(|e| e.into_inner()) += 1; }
}";
        assert!(scan(sequential).is_empty());
    }

    #[test]
    fn cancel_safety_fires_on_sleep_in_dispatch_closure() {
        let src = "\
fn dispatch(pool: &P) {
    pool.try_run_bounded(4, || {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("dispatch"), "{}", f[0].msg);
    }

    #[test]
    fn cancel_safety_sees_through_same_crate_calls() {
        let src = "\
fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
fn dispatch(pool: &P) {
    pool.try_run_bounded_cancellable(4, |_t| {
        backoff();
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("via `backoff`"), "{}", f[0].msg);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cancel_safety_accepts_the_doorways_and_plain_run() {
        let ok = "\
fn dispatch(pool: &P, cancel: &C) {
    pool.try_run_bounded_cancellable(4, |t| {
        t.sleep_cancellable(std::time::Duration::from_millis(5));
        t.poll_cancellable(|| done());
    });
}";
        assert!(scan(ok).is_empty());
        // `.run(` on a non-pool receiver is not a dispatch.
        let chain = "\
fn go(chain: &Chain) {
    chain.run(|| {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        assert!(scan(chain).is_empty());
        // ... but on a pool it is.
        let pool_run = "\
fn go(worker_pool: &P) {
    worker_pool.run(|| {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        assert_eq!(scan(pool_run).len(), 1);
    }

    #[test]
    fn cancel_safety_covers_tasks_built_before_the_dispatch_call() {
        // The closure Vec is constructed first and the *variable* is
        // passed to the pool — the blocking call never appears inside
        // the dispatch call's argument list, only in the same fn body.
        let src = "\
fn attempt(id: u64) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(5));
    id
}
fn run_batch(pool: &P, ids: Vec<u64>) {
    let tasks: Vec<_> = ids.into_iter().map(|id| move || attempt(id)).collect();
    pool.try_run_bounded_cancellable(8, tasks);
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("run_batch"), "{}", f[0].msg);
        assert!(f[0].msg.contains("via `attempt`"), "{}", f[0].msg);
    }

    #[test]
    fn cancel_safety_flags_recv_in_closure() {
        let src = "\
fn drain(pool: &P, rx: &R) {
    pool.try_run_bounded(2, move || {
        let _msg = rx.recv();
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("recv"), "{}", f[0].msg);
    }
}
