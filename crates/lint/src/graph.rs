//! The workspace concurrency model: function extraction, the
//! per-crate lock-acquisition graph behind rule L6 `lock-order`, and
//! the dispatch-closure blocking analysis behind rule L7
//! `cancel-safety`.
//!
//! Both analyses resolve calls by bare name within one crate — the
//! workspace convention of unique, descriptive function names makes
//! that precise enough, and staying inside the crate keeps the graph
//! honest (cross-crate edges would need type information a lexer
//! can't supply). Known approximations, chosen to avoid false
//! positives:
//!
//! - lock identity is the receiver field/binding name (`tables` in
//!   `self.tables.read()`), so two instances of one type share a
//!   node; self-edges (re-acquiring the same name) are skipped since
//!   different instances commonly share field names;
//! - held-ness does not propagate through functions *returning*
//!   guards (e.g. a `lock_state()` accessor) — only through calls
//!   made while a guard is live in the caller;
//! - `Type::assoc()` path calls are not resolved (constructors like
//!   `new` collide across modules); `.method()` and bare calls are.

use crate::lexer::{
    enclosing_block_end, ident_at, in_test, is_ident, is_punct, stmt_end, stmt_start, Tok,
};
use crate::rules::{Diagnostics, FileCtx, Rule};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// One `fn` item: its name, the token index of the name, the token
/// range of its `{...}` body (absent for trait declarations), and the
/// index of the body-open `{` / terminating `;` (the signature end).
pub(crate) struct FnDef {
    pub name: String,
    pub name_idx: usize,
    pub body: Option<(usize, usize)>,
    pub sig_end: usize,
}

/// Every `fn` item in a token stream, at any nesting depth.
pub(crate) fn extract_fns(toks: &[Tok<'_>]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            // `fn(u8) -> u8` pointer types have no name.
            i += 1;
            continue;
        };
        let d = toks[i].depth;
        let mut j = i + 2;
        let mut sig_end = toks.len();
        let mut body = None;
        while j < toks.len() {
            if toks[j].depth < d {
                break;
            }
            if is_punct(toks, j, b';') && toks[j].depth == d {
                sig_end = j;
                break;
            }
            if is_punct(toks, j, b'{') && toks[j].depth == d {
                sig_end = j;
                let mut k = j + 1;
                let mut close = toks.len().saturating_sub(1);
                while k < toks.len() {
                    if is_punct(toks, k, b'}') && toks[k].depth == d {
                        close = k;
                        break;
                    }
                    k += 1;
                }
                body = Some((j, close));
                break;
            }
            j += 1;
        }
        fns.push(FnDef { name: name.to_string(), name_idx: i + 1, body, sig_end });
        i += 2;
    }
    fns
}

/// Index of the innermost function whose body contains token `i`.
/// Closures belong to their enclosing `fn`; nested `fn` items own
/// their tokens.
pub(crate) fn fn_containing(fns: &[FnDef], i: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (k, f) in fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            if open < i && i < close {
                let len = close - open;
                if best.map_or(true, |(bl, _)| len < bl) {
                    best = Some((len, k));
                }
            }
        }
    }
    best.map(|(_, k)| k)
}

/// A lock acquisition: `<name>.lock()` / `.read()` / `.write()` with
/// empty argument lists (io's `read(&mut buf)` never matches).
struct Acq {
    name: String,
    idx: usize,
    /// Last token index at which the guard is still held: the
    /// enclosing block end for `let`-bound guards, the statement end
    /// for temporaries (including `let _ =`).
    until: usize,
}

/// A resolvable call site: `name(..)` or `recv.name(..)` — but not
/// `Type::name(..)`, see the module docs.
pub(crate) struct Call {
    pub(crate) name: String,
    pub(crate) idx: usize,
}

fn acq_at(ctx: &FileCtx<'_>, i: usize) -> Option<Acq> {
    let toks = ctx.toks;
    let name = ident_at(toks, i)?;
    if !(is_punct(toks, i + 1, b'.')
        && matches!(ident_at(toks, i + 2), Some("lock" | "read" | "write"))
        && is_punct(toks, i + 3, b'(')
        && is_punct(toks, i + 4, b')'))
    {
        return None;
    }
    let s = stmt_start(toks, i);
    let let_bound = is_ident(toks, s, "let")
        && !(is_ident(toks, s + 1, "_") && is_punct(toks, s + 2, b'='));
    let until = if let_bound { enclosing_block_end(toks, i) } else { stmt_end(toks, i) };
    Some(Acq { name: name.to_string(), idx: i, until })
}

pub(crate) fn call_at(ctx: &FileCtx<'_>, i: usize) -> Option<Call> {
    let toks = ctx.toks;
    let name = ident_at(toks, i)?;
    if !is_punct(toks, i + 1, b'(') {
        return None;
    }
    if matches!(name, "lock" | "read" | "write") {
        return None;
    }
    if i > 0 && is_punct(toks, i - 1, b':') {
        return None;
    }
    Some(Call { name: name.to_string(), idx: i })
}

/// L6 — build the crate's lock-acquisition graph and report every
/// distinct cycle with `file:line` for each edge.
pub(crate) fn lock_order(
    ctxs: &[FileCtx<'_>],
    fns: &[Vec<FnDef>],
    crate_files: &[usize],
    diag: &mut Diagnostics,
) {
    // Acquisitions and calls, attributed to their innermost fn.
    let mut per_fn: BTreeMap<(usize, usize), (Vec<Acq>, Vec<Call>)> = BTreeMap::new();
    for &fi in crate_files {
        let ctx = &ctxs[fi];
        for i in 0..ctx.toks.len() {
            if in_test(&ctx.regions, ctx.toks[i].off) {
                continue;
            }
            let Some(owner) = fn_containing(&fns[fi], i) else { continue };
            if let Some(a) = acq_at(ctx, i) {
                per_fn.entry((fi, owner)).or_default().0.push(a);
            }
            if let Some(c) = call_at(ctx, i) {
                per_fn.entry((fi, owner)).or_default().1.push(c);
            }
        }
    }

    // Same-crate name resolution.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for &fi in crate_files {
        for (k, f) in fns[fi].iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, k));
        }
    }

    // Transitive lock set per fn: every lock name a call into this fn
    // may acquire, with one representative site.
    let mut memo: HashMap<(usize, usize), BTreeMap<String, (usize, usize)>> = HashMap::new();
    for &fi in crate_files {
        for k in 0..fns[fi].len() {
            let mut visiting = HashSet::new();
            locks_of((fi, k), ctxs, &per_fn, &by_name, &mut memo, &mut visiting);
        }
    }

    // Edges: lock A held while lock B is acquired (directly, or
    // inside a same-crate call made while A is held).
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for ((fi, _), (acqs, calls)) in &per_fn {
        for a in acqs {
            for b in acqs {
                if b.idx > a.idx && b.idx <= a.until && b.name != a.name {
                    edges
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert((*fi, ctxs[*fi].toks[b.idx].off));
                }
            }
            for c in calls {
                if c.idx > a.idx && c.idx <= a.until {
                    for key in by_name.get(c.name.as_str()).into_iter().flatten() {
                        if let Some(locks) = memo.get(key) {
                            for (lname, &(lfi, loff)) in locks {
                                if *lname != a.name {
                                    edges
                                        .entry((a.name.clone(), lname.clone()))
                                        .or_insert((lfi, loff));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection and reporting, one finding per node set.
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a.as_str()).or_default().insert(b.as_str());
        }
        m
    };
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for (a, b) in edges.keys() {
        let Some(path) = bfs_path(&adj, b, a) else { continue };
        let mut seq: Vec<&str> = vec![a.as_str()];
        seq.extend(path.iter().copied());
        let nodes: BTreeSet<String> = seq.iter().map(|s| s.to_string()).collect();
        if !reported.insert(nodes) {
            continue;
        }
        let desc = seq
            .windows(2)
            .map(|w| match edges.get(&(w[0].to_string(), w[1].to_string())) {
                Some(&(efi, eoff)) => {
                    let (line, _) = ctxs[efi].idx.line_col(eoff);
                    format!("{} -> {} ({}:{})", w[0], w[1], ctxs[efi].label, line)
                }
                None => format!("{} -> {}", w[0], w[1]),
            })
            .collect::<Vec<_>>()
            .join(", ");
        let &(afi, aoff) = &edges[&(a.clone(), b.clone())];
        let msg = format!("lock-order cycle: {desc} — acquire these locks in one global order");
        diag.emit(&ctxs[afi], afi, aoff, Rule::LockOrder, msg);
    }
}

/// Transitive closure of the lock names `key`'s function may acquire,
/// each with a representative `(file, byte offset)` site.
fn locks_of(
    key: (usize, usize),
    ctxs: &[FileCtx<'_>],
    per_fn: &BTreeMap<(usize, usize), (Vec<Acq>, Vec<Call>)>,
    by_name: &BTreeMap<&str, Vec<(usize, usize)>>,
    memo: &mut HashMap<(usize, usize), BTreeMap<String, (usize, usize)>>,
    visiting: &mut HashSet<(usize, usize)>,
) -> BTreeMap<String, (usize, usize)> {
    if let Some(m) = memo.get(&key) {
        return m.clone();
    }
    if !visiting.insert(key) {
        return BTreeMap::new();
    }
    let mut out = BTreeMap::new();
    if let Some((acqs, calls)) = per_fn.get(&key) {
        for a in acqs {
            out.entry(a.name.clone())
                .or_insert((key.0, ctxs[key.0].toks[a.idx].off));
        }
        for c in calls {
            for callee in by_name.get(c.name.as_str()).into_iter().flatten() {
                for (n, site) in locks_of(*callee, ctxs, per_fn, by_name, memo, visiting) {
                    out.entry(n).or_insert(site);
                }
            }
        }
    }
    visiting.remove(&key);
    memo.insert(key, out.clone());
    out
}

fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    seen.insert(from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// One blocking call reachable from a dispatch closure.
#[derive(Clone)]
struct Block {
    fi: usize,
    off: usize,
    desc: &'static str,
    chain: Vec<String>,
}

fn direct_block_at(ctx: &FileCtx<'_>, i: usize) -> Option<(usize, &'static str)> {
    let toks = ctx.toks;
    if let Some(seg) = ident_at(toks, i) {
        let path_next = is_punct(toks, i + 1, b':') && is_punct(toks, i + 2, b':');
        if path_next
            && is_ident(toks, i + 3, "sleep")
            && (seg == "thread" || ctx.aliases.resolves_to(seg, &["std", "thread"]))
        {
            return Some((toks[i].off, "std::thread::sleep"));
        }
        if !path_next
            && is_punct(toks, i + 1, b'(')
            && ctx.aliases.resolves_to(seg, &["std", "thread", "sleep"])
        {
            return Some((toks[i].off, "std::thread::sleep"));
        }
    }
    if is_punct(toks, i, b'.')
        && is_ident(toks, i + 1, "recv")
        && is_punct(toks, i + 2, b'(')
        && is_punct(toks, i + 3, b')')
    {
        return Some((toks[i + 1].off, "channel recv()"));
    }
    if is_punct(toks, i, b'.') && is_ident(toks, i + 1, "recv_timeout") && is_punct(toks, i + 2, b'(') {
        return Some((toks[i + 1].off, "channel recv_timeout()"));
    }
    None
}

/// L7 — closures handed to pool dispatch must not reach raw blocking
/// calls; the cancellable doorways (`sleep_cancellable`,
/// `poll_cancellable`) are the sanctioned ways to wait.
pub(crate) fn cancel_safety(
    ctxs: &[FileCtx<'_>],
    fns: &[Vec<FnDef>],
    crate_files: &[usize],
    diag: &mut Diagnostics,
) {
    // The substrate owns its threads and blocks on purpose.
    if crate_files.iter().any(|&fi| ctxs[fi].policy.substrate) {
        return;
    }
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for &fi in crate_files {
        for (k, f) in fns[fi].iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, k));
        }
    }
    let mut memo: HashMap<(usize, usize), Option<Block>> = HashMap::new();
    let mut emitted: BTreeSet<(usize, usize)> = BTreeSet::new();

    // Functions containing at least one dispatch site. Task closures
    // are routinely built into a Vec before the dispatch call, so the
    // whole dispatching function is the scope that must stay
    // non-blocking — not just the call's argument list.
    let mut dispatchers: BTreeMap<(usize, usize), String> = BTreeMap::new();
    for &fi in crate_files {
        let ctx = &ctxs[fi];
        for i in 0..ctx.toks.len() {
            if in_test(&ctx.regions, ctx.toks[i].off) {
                continue;
            }
            if let Some((owner, name)) = dispatch_at(ctx, fns, fi, i) {
                dispatchers.entry((fi, owner)).or_insert(name);
            }
        }
    }

    for (&(fi, owner), entry_name) in &dispatchers {
        let ctx = &ctxs[fi];
        let Some((open, close)) = fns[fi][owner].body else { continue };
        for k in open + 1..close {
            if in_test(&ctx.regions, ctx.toks[k].off)
                || fn_containing(&fns[fi], k) != Some(owner)
            {
                continue;
            }
            if let Some((off, desc)) = direct_block_at(ctx, k) {
                report(ctx, fi, off, desc, entry_name, &[], &mut emitted, diag);
            } else if let Some(c) = call_at(ctx, k) {
                for callee in by_name.get(c.name.as_str()).into_iter().flatten() {
                    let mut visiting = HashSet::new();
                    if let Some(b) =
                        blocks_in(*callee, ctxs, fns, &by_name, &mut memo, &mut visiting)
                    {
                        report(
                            &ctxs[b.fi], b.fi, b.off, b.desc, entry_name, &b.chain,
                            &mut emitted, diag,
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report(
    ctx: &FileCtx<'_>,
    fi: usize,
    off: usize,
    desc: &str,
    entry: &str,
    chain: &[String],
    emitted: &mut BTreeSet<(usize, usize)>,
    diag: &mut Diagnostics,
) {
    if !emitted.insert((fi, off)) {
        return;
    }
    let via = if chain.is_empty() {
        String::new()
    } else {
        format!(" via `{}`", chain.join("` -> `"))
    };
    diag.emit(ctx, fi, off, Rule::CancelSafety, format!(
        "{desc} blocks a pool-dispatched task (entered from `{entry}`{via}): wait through CancelToken::sleep_cancellable / poll_cancellable so deadlines can interrupt it"
    ));
}

/// Is token `i` the `.` of a pool-dispatch call? Returns the index of
/// the containing function and its name.
pub(crate) fn dispatch_at(
    ctx: &FileCtx<'_>,
    fns: &[Vec<FnDef>],
    fi: usize,
    i: usize,
) -> Option<(usize, String)> {
    let toks = ctx.toks;
    if !is_punct(toks, i, b'.') {
        return None;
    }
    let m = ident_at(toks, i + 1)?;
    if !is_punct(toks, i + 2, b'(') {
        return None;
    }
    let is_dispatch = match m {
        "try_run_bounded"
        | "try_run_bounded_cancellable"
        | "run_stealing"
        | "try_run_stealing"
        | "try_run_stealing_cancellable" => true,
        // `.run(..)` / `.run_with(..)` are dispatches only on a
        // pool-ish receiver — `chain.run(..)` and friends are
        // ordinary calls.
        "run" | "run_with" => {
            receiver_name(toks, i).is_some_and(|r| r.to_lowercase().contains("pool"))
        }
        _ => false,
    };
    if !is_dispatch {
        return None;
    }
    let owner = fn_containing(&fns[fi], i)?;
    Some((owner, fns[fi][owner].name.clone()))
}

/// The name the receiver expression of `.method()` ends with: the
/// ident just before the `.`, or the call name for `f(..).method()`.
pub(crate) fn receiver_name<'a>(toks: &[Tok<'a>], dot: usize) -> Option<&'a str> {
    if dot == 0 {
        return None;
    }
    if let Some(r) = ident_at(toks, dot - 1) {
        return Some(r);
    }
    if is_punct(toks, dot - 1, b')') {
        let mut depth = 0i32;
        let mut k = dot - 1;
        loop {
            if is_punct(toks, k, b')') {
                depth += 1;
            } else if is_punct(toks, k, b'(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        return ident_at(toks, k.checked_sub(1)?);
    }
    None
}

/// First blocking call reachable from `key`'s function through
/// same-crate calls, if any.
fn blocks_in(
    key: (usize, usize),
    ctxs: &[FileCtx<'_>],
    fns: &[Vec<FnDef>],
    by_name: &BTreeMap<&str, Vec<(usize, usize)>>,
    memo: &mut HashMap<(usize, usize), Option<Block>>,
    visiting: &mut HashSet<(usize, usize)>,
) -> Option<Block> {
    if let Some(m) = memo.get(&key) {
        return m.clone();
    }
    if !visiting.insert(key) {
        return None;
    }
    let (fi, k) = key;
    let ctx = &ctxs[fi];
    let f = &fns[fi][k];
    let mut result: Option<Block> = None;
    if let Some((open, close)) = f.body {
        for i in open + 1..close {
            if in_test(&ctx.regions, ctx.toks[i].off) || fn_containing(&fns[fi], i) != Some(k) {
                continue;
            }
            if let Some((off, desc)) = direct_block_at(ctx, i) {
                result = Some(Block { fi, off, desc, chain: vec![f.name.clone()] });
                break;
            }
        }
        if result.is_none() {
            'calls: for i in open + 1..close {
                if in_test(&ctx.regions, ctx.toks[i].off) || fn_containing(&fns[fi], i) != Some(k) {
                    continue;
                }
                let Some(c) = call_at(ctx, i) else { continue };
                if c.name == f.name {
                    continue;
                }
                for callee in by_name.get(c.name.as_str()).into_iter().flatten() {
                    if let Some(mut b) = blocks_in(*callee, ctxs, fns, by_name, memo, visiting) {
                        b.chain.insert(0, f.name.clone());
                        result = Some(b);
                        break 'calls;
                    }
                }
            }
        }
    }
    visiting.remove(&key);
    memo.insert(key, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{scan_file, FilePolicy, Finding, Rule};

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("fixture.rs", src, FilePolicy::default())
    }

    #[test]
    fn extract_fns_names_and_bodies() {
        let masked = crate::mask::mask_code("fn a() { b(); }\nimpl S {\n    fn m(&self) -> u8 { 0 }\n}\ntrait T { fn decl(&self); }");
        let toks = crate::lexer::lex(&masked);
        let fns = extract_fns(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "decl"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn lock_order_cycle_fires_with_both_edges() {
        let src = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockOrder);
        assert!(f[0].msg.contains("a -> b"), "{}", f[0].msg);
        assert!(f[0].msg.contains("b -> a"), "{}", f[0].msg);
        assert!(f[0].msg.contains("fixture.rs:"), "{}", f[0].msg);
    }

    #[test]
    fn lock_order_sees_through_same_crate_calls() {
        let src = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn outer(&self) {
        let ga = self.a.lock();
        self.helper();
        drop(ga);
    }
    fn helper(&self) {
        let gb = self.b.lock();
        drop(gb);
    }
    fn inverse(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockOrder);
    }

    #[test]
    fn consistent_order_and_sequential_locks_are_clean() {
        let consistent = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn one(&self) { let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }
    fn two(&self) { let ga = self.a.lock(); let gb = self.b.lock(); drop(gb); drop(ga); }
}";
        assert!(scan(consistent).is_empty());
        // Statement-temporary guards don't overlap.
        let sequential = "\
struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }
impl S {
    fn one(&self) { *self.a.lock().unwrap_or_else(|e| e.into_inner()) += 1; *self.b.lock().unwrap_or_else(|e| e.into_inner()) += 1; }
    fn two(&self) { *self.b.lock().unwrap_or_else(|e| e.into_inner()) += 1; *self.a.lock().unwrap_or_else(|e| e.into_inner()) += 1; }
}";
        assert!(scan(sequential).is_empty());
    }

    #[test]
    fn cancel_safety_fires_on_sleep_in_dispatch_closure() {
        let src = "\
fn dispatch(pool: &P) {
    pool.try_run_bounded(4, || {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("dispatch"), "{}", f[0].msg);
    }

    #[test]
    fn cancel_safety_sees_through_same_crate_calls() {
        let src = "\
fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
fn dispatch(pool: &P) {
    pool.try_run_bounded_cancellable(4, |_t| {
        backoff();
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("via `backoff`"), "{}", f[0].msg);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cancel_safety_accepts_the_doorways_and_plain_run() {
        let ok = "\
fn dispatch(pool: &P, cancel: &C) {
    pool.try_run_bounded_cancellable(4, |t| {
        t.sleep_cancellable(std::time::Duration::from_millis(5));
        t.poll_cancellable(|| done());
    });
}";
        assert!(scan(ok).is_empty());
        // `.run(` on a non-pool receiver is not a dispatch.
        let chain = "\
fn go(chain: &Chain) {
    chain.run(|| {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        assert!(scan(chain).is_empty());
        // ... but on a pool it is.
        let pool_run = "\
fn go(worker_pool: &P) {
    worker_pool.run(|| {
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
}";
        assert_eq!(scan(pool_run).len(), 1);
    }

    #[test]
    fn cancel_safety_covers_tasks_built_before_the_dispatch_call() {
        // The closure Vec is constructed first and the *variable* is
        // passed to the pool — the blocking call never appears inside
        // the dispatch call's argument list, only in the same fn body.
        let src = "\
fn attempt(id: u64) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(5));
    id
}
fn run_batch(pool: &P, ids: Vec<u64>) {
    let tasks: Vec<_> = ids.into_iter().map(|id| move || attempt(id)).collect();
    pool.try_run_bounded_cancellable(8, tasks);
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("run_batch"), "{}", f[0].msg);
        assert!(f[0].msg.contains("via `attempt`"), "{}", f[0].msg);
    }

    #[test]
    fn cancel_safety_flags_recv_in_closure() {
        let src = "\
fn drain(pool: &P, rx: &R) {
    pool.try_run_bounded(2, move || {
        let _msg = rx.recv();
    });
}";
        let f = scan(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::CancelSafety);
        assert!(f[0].msg.contains("recv"), "{}", f[0].msg);
    }
}
