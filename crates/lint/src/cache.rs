//! Content-fingerprint summary cache for warm scans.
//!
//! One entry per source file, keyed by the FNV-1a hash of the file's
//! workspace-relative label: `<dir>/<hash16>.sum`. Each entry embeds
//! the summary's content fingerprint; a lookup whose fingerprint no
//! longer matches is a miss (the source changed) and the entry is
//! rewritten after the fresh summarize. The format is a line-oriented
//! tab-separated text protocol, version-stamped by [`HEADER`] —
//! pure-std like the rest of the linter, no serialization crates.
//!
//! Only the summarize phase is cached. Linking is cheap, global, and
//! must see every file's summary at once, so warm runs re-link from
//! cached summaries and skip the lex/CFG work entirely.

use crate::cfg::{Block, Cfg, Event};
use crate::lexer::{AllowMarker, LineIndex};
use crate::rules::{FilePolicy, Finding, Rule};
use crate::summary::{
    AcqS, CallS, FileSummary, FnEffects, FnReturn, Fnv, SwallowCand, SwallowKind,
};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// First line of every entry; parsing anything else is a miss. Bump
/// when the summary shape changes so stale caches self-invalidate.
const HEADER: &str = "teleios-lint-cache v1";

/// Cache file for a source label.
pub(crate) fn entry_path(dir: &Path, label: &str) -> PathBuf {
    let mut h = Fnv::new();
    h.eat(label.as_bytes());
    dir.join(format!("{:016x}.sum", h.0))
}

/// Load the cached summary for `label` if its stored fingerprint is
/// exactly `fingerprint`. Any read or parse failure is a miss.
pub(crate) fn load(dir: &Path, label: &str, fingerprint: u64) -> Option<FileSummary> {
    let sum = load_any(dir, label)?;
    if sum.fingerprint == fingerprint {
        Some(sum)
    } else {
        None
    }
}

/// Load the cached summary for `label` without a fingerprint check —
/// the trust-the-cache path used by `--changed-since`/file-list mode
/// for files outside the named set.
pub(crate) fn load_any(dir: &Path, label: &str) -> Option<FileSummary> {
    let text = fs::read_to_string(entry_path(dir, label)).ok()?;
    let sum = parse(&text)?;
    if sum.label == label {
        Some(sum)
    } else {
        None
    }
}

/// Write `sum`'s entry, creating the cache directory if needed.
pub(crate) fn store(dir: &Path, sum: &FileSummary) -> io::Result<()> {
    fs::create_dir_all(dir)?; // teleios-lint: allow(no-direct-fs)
    fs::write(entry_path(dir, &sum.label), serialize(sum))
}

// ---------------------------------------------------------------
// Escaping: the protocol is line- and tab-delimited, so both must
// round-trip through a backslash escape.
// ---------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn bit(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

/// The loop-head keywords are `&'static str` in [`Block`]; map the
/// serialized form back onto the statics.
fn head_kw(s: &str) -> Option<&'static str> {
    match s {
        "while" => Some("while"),
        "loop" => Some("loop"),
        "for" => Some("for"),
        _ => None,
    }
}

// ---------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------

pub(crate) fn serialize(sum: &FileSummary) -> String {
    let mut out = String::new();
    let mut line = |parts: &[String]| {
        out.push_str(&parts.join("\t"));
        out.push('\n');
    };
    line(&[HEADER.to_string()]);
    line(&[
        "meta".into(),
        format!("{:016x}", sum.fingerprint),
        esc(&sum.label),
        esc(&sum.crate_name),
        bit(sum.is_crate_root).into(),
        bit(sum.policy.substrate).into(),
        bit(sum.policy.bin_target).into(),
        bit(sum.policy.fs_doorway).into(),
    ]);
    let mut starts = vec!["starts".to_string()];
    starts.extend(sum.idx.starts().iter().map(|s| s.to_string()));
    line(&starts);
    for (a, b) in &sum.regions {
        line(&["region".into(), a.to_string(), b.to_string()]);
    }
    for m in &sum.markers {
        line(&[
            "marker".into(),
            m.line.to_string(),
            m.col.to_string(),
            m.rule.map_or("-".into(), |r| r.name().to_string()),
            esc(&m.name),
        ]);
    }
    for f in &sum.local {
        line(&[
            "local".into(),
            f.line.to_string(),
            f.col.to_string(),
            f.rule.name().into(),
            esc(&f.path),
            esc(&f.msg),
        ]);
    }
    for u in &sum.used_markers {
        line(&["used".into(), u.to_string()]);
    }
    for sw in &sum.swallows {
        line(&[
            "swallow".into(),
            match sw.kind {
                SwallowKind::LetUnderscore => "let".into(),
                SwallowKind::OkDiscard => "ok".into(),
            },
            sw.off.to_string(),
            esc(&sw.callee),
        ]);
    }
    for e in &sum.error_enums {
        line(&["enum".into(), esc(e)]);
    }
    for (name, idents) in &sum.type_aliases {
        let mut parts = vec!["talias".into(), esc(name)];
        parts.extend(idents.iter().map(|i| esc(i)));
        line(&parts);
    }
    for r in &sum.fn_returns {
        let mut parts = vec![
            "ret".into(),
            esc(&r.name),
            bit(r.bare_result).into(),
            r.qualified_crate.as_ref().map_or("-".into(), |q| esc(q)),
        ];
        parts.extend(r.err_idents.iter().map(|i| esc(i)));
        line(&parts);
    }
    for m in &sum.mods {
        line(&["mod".into(), esc(m)]);
    }
    for (name, path) in &sum.imports {
        let mut parts = vec!["import".into(), esc(name)];
        parts.extend(path.iter().map(|s| esc(s)));
        line(&parts);
    }
    for (name, path) in &sum.reexports {
        let mut parts = vec!["reexport".into(), esc(name)];
        parts.extend(path.iter().map(|s| esc(s)));
        line(&parts);
    }
    for path in &sum.globs {
        let mut parts = vec!["glob".into()];
        parts.extend(path.iter().map(|s| esc(s)));
        line(&parts);
    }
    for f in &sum.fns {
        line(&[
            "fn".into(),
            esc(&f.name),
            bit(f.is_test).into(),
            bit(f.cfg.is_some()).into(),
        ]);
        for a in &f.acqs {
            line(&[
                "acq".into(),
                esc(&a.lock),
                a.off.to_string(),
                a.until_off.to_string(),
            ]);
        }
        for c in &f.calls {
            let mut parts = vec![
                "call".into(),
                esc(&c.name),
                bit(c.method).into(),
                c.off.to_string(),
            ];
            parts.extend(c.qual.iter().map(|s| esc(s)));
            line(&parts);
        }
        for (desc, off) in &f.l7_blocks {
            line(&["l7".into(), off.to_string(), esc(desc)]);
        }
        for (method, off) in &f.dispatches {
            line(&["disp".into(), esc(method), off.to_string()]);
        }
        if let Some(cfg) = &f.cfg {
            for b in &cfg.blocks {
                let mut parts = vec![
                    "block".into(),
                    b.head.map_or("-".into(), |(t, _)| t.to_string()),
                    b.head.map_or("-".into(), |(_, kw)| kw.to_string()),
                ];
                parts.extend(b.succs.iter().map(|(i, taken)| format!("{i}:{}", bit(*taken))));
                line(&parts);
                for ev in &b.events {
                    line(&event_parts(ev));
                }
            }
        }
    }
    line(&["end".to_string()]);
    out
}

fn event_parts(ev: &Event) -> Vec<String> {
    match ev {
        Event::Begin { recv, off, close } => vec![
            "ev".into(),
            "begin".into(),
            esc(recv),
            off.to_string(),
            close.to_string(),
        ],
        Event::TxnEnd { recv } => vec!["ev".into(), "txnend".into(), esc(recv)],
        Event::Acquire { binding, lock, off, scope_end } => vec![
            "ev".into(),
            "acquire".into(),
            esc(binding),
            esc(lock),
            off.to_string(),
            scope_end.to_string(),
        ],
        Event::DropGuard { binding } => vec!["ev".into(), "dropguard".into(), esc(binding)],
        Event::Blocking { desc, off } => {
            vec!["ev".into(), "blocking".into(), off.to_string(), esc(desc)]
        }
        Event::Poll => vec!["ev".into(), "poll".into()],
        Event::Call { name, qual, method, off } => {
            let mut parts = vec![
                "ev".into(),
                "callv".into(),
                esc(name),
                bit(*method).into(),
                off.to_string(),
            ];
            parts.extend(qual.iter().map(|s| esc(s)));
            parts
        }
        Event::Question { off } => vec!["ev".into(), "question".into(), off.to_string()],
        Event::Ret { off } => vec!["ev".into(), "ret".into(), off.to_string()],
        Event::EndOfFn => vec!["ev".into(), "endfn".into()],
    }
}

// ---------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------

fn parse_event(fields: &[&str]) -> Option<Event> {
    Some(match *fields.first()? {
        "begin" => Event::Begin {
            recv: unesc(fields.get(1)?),
            off: fields.get(2)?.parse().ok()?,
            close: fields.get(3)?.parse().ok()?,
        },
        "txnend" => Event::TxnEnd { recv: unesc(fields.get(1)?) },
        "acquire" => Event::Acquire {
            binding: unesc(fields.get(1)?),
            lock: unesc(fields.get(2)?),
            off: fields.get(3)?.parse().ok()?,
            scope_end: fields.get(4)?.parse().ok()?,
        },
        "dropguard" => Event::DropGuard { binding: unesc(fields.get(1)?) },
        "blocking" => Event::Blocking {
            off: fields.get(1)?.parse().ok()?,
            desc: unesc(fields.get(2)?),
        },
        "poll" => Event::Poll,
        "callv" => Event::Call {
            name: unesc(fields.get(1)?),
            method: *fields.get(2)? == "1",
            off: fields.get(3)?.parse().ok()?,
            qual: fields[4..].iter().map(|s| unesc(s)).collect(),
        },
        "question" => Event::Question { off: fields.get(1)?.parse().ok()? },
        "ret" => Event::Ret { off: fields.get(1)?.parse().ok()? },
        "endfn" => Event::EndOfFn,
        _ => return None,
    })
}

/// Parse an entry back into a summary. `None` on any malformed or
/// truncated input — the caller treats it as a cache miss.
pub(crate) fn parse(text: &str) -> Option<FileSummary> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let meta_line = lines.next()?;
    let meta: Vec<&str> = meta_line.split('\t').collect();
    if meta.len() != 8 || meta[0] != "meta" {
        return None;
    }
    let label = unesc(meta[2]);
    let mut sum = FileSummary {
        fingerprint: u64::from_str_radix(meta[1], 16).ok()?,
        label: label.clone(),
        crate_name: unesc(meta[3]),
        is_crate_root: meta[4] == "1",
        policy: FilePolicy {
            substrate: meta[5] == "1",
            bin_target: meta[6] == "1",
            fs_doorway: meta[7] == "1",
        },
        idx: LineIndex::from_starts(Vec::new()),
        regions: Vec::new(),
        markers: Vec::new(),
        local: Vec::new(),
        used_markers: BTreeSet::new(),
        swallows: Vec::new(),
        error_enums: Vec::new(),
        type_aliases: Vec::new(),
        fn_returns: Vec::new(),
        fns: Vec::new(),
        mods: Vec::new(),
        imports: Vec::new(),
        reexports: Vec::new(),
        globs: Vec::new(),
    };
    let mut saw_end = false;
    // `cfg_open` marks a fn whose `fn` line promised a CFG: its
    // `block` lines attach to an empty Cfg created on first sight.
    let mut cfg_open = false;
    for raw in lines {
        let fields: Vec<&str> = raw.split('\t').collect();
        match *fields.first()? {
            "starts" => {
                let starts = fields[1..]
                    .iter()
                    .map(|s| s.parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .ok()?;
                sum.idx = LineIndex::from_starts(starts);
            }
            "region" => sum
                .regions
                .push((fields.get(1)?.parse().ok()?, fields.get(2)?.parse().ok()?)),
            "marker" => sum.markers.push(AllowMarker {
                line: fields.get(1)?.parse().ok()?,
                col: fields.get(2)?.parse().ok()?,
                rule: match *fields.get(3)? {
                    "-" => None,
                    name => Some(Rule::from_name(name)?),
                },
                name: unesc(fields.get(4)?),
            }),
            "local" => sum.local.push(Finding {
                line: fields.get(1)?.parse().ok()?,
                col: fields.get(2)?.parse().ok()?,
                rule: Rule::from_name(fields.get(3)?)?,
                path: unesc(fields.get(4)?),
                msg: unesc(fields.get(5)?),
            }),
            "used" => {
                sum.used_markers.insert(fields.get(1)?.parse().ok()?);
            }
            "swallow" => sum.swallows.push(SwallowCand {
                kind: match *fields.get(1)? {
                    "let" => SwallowKind::LetUnderscore,
                    "ok" => SwallowKind::OkDiscard,
                    _ => return None,
                },
                off: fields.get(2)?.parse().ok()?,
                callee: unesc(fields.get(3)?),
            }),
            "enum" => sum.error_enums.push(unesc(fields.get(1)?)),
            "talias" => sum.type_aliases.push((
                unesc(fields.get(1)?),
                fields[2..].iter().map(|s| unesc(s)).collect(),
            )),
            "ret" => sum.fn_returns.push(FnReturn {
                name: unesc(fields.get(1)?),
                bare_result: *fields.get(2)? == "1",
                qualified_crate: match *fields.get(3)? {
                    "-" => None,
                    q => Some(unesc(q)),
                },
                err_idents: fields[4..].iter().map(|s| unesc(s)).collect(),
            }),
            "mod" => sum.mods.push(unesc(fields.get(1)?)),
            "import" => sum.imports.push((
                unesc(fields.get(1)?),
                fields[2..].iter().map(|s| unesc(s)).collect(),
            )),
            "reexport" => sum.reexports.push((
                unesc(fields.get(1)?),
                fields[2..].iter().map(|s| unesc(s)).collect(),
            )),
            "glob" => sum.globs.push(fields[1..].iter().map(|s| unesc(s)).collect()),
            "fn" => {
                cfg_open = *fields.get(3)? == "1";
                sum.fns.push(FnEffects {
                    name: unesc(fields.get(1)?),
                    is_test: *fields.get(2)? == "1",
                    acqs: Vec::new(),
                    calls: Vec::new(),
                    l7_blocks: Vec::new(),
                    dispatches: Vec::new(),
                    cfg: None,
                });
            }
            "acq" => sum.fns.last_mut()?.acqs.push(AcqS {
                lock: unesc(fields.get(1)?),
                off: fields.get(2)?.parse().ok()?,
                until_off: fields.get(3)?.parse().ok()?,
            }),
            "call" => sum.fns.last_mut()?.calls.push(CallS {
                name: unesc(fields.get(1)?),
                method: *fields.get(2)? == "1",
                off: fields.get(3)?.parse().ok()?,
                qual: fields[4..].iter().map(|s| unesc(s)).collect(),
            }),
            "l7" => sum
                .fns
                .last_mut()?
                .l7_blocks
                .push((unesc(fields.get(2)?), fields.get(1)?.parse().ok()?)),
            "disp" => sum
                .fns
                .last_mut()?
                .dispatches
                .push((unesc(fields.get(1)?), fields.get(2)?.parse().ok()?)),
            "block" => {
                if !cfg_open {
                    return None;
                }
                let head = match (*fields.get(1)?, *fields.get(2)?) {
                    ("-", "-") => None,
                    (t, kw) => Some((t.parse::<usize>().ok()?, head_kw(kw)?)),
                };
                let mut succs = Vec::new();
                for pair in &fields[3..] {
                    let (i, taken) = pair.split_once(':')?;
                    succs.push((i.parse::<usize>().ok()?, taken == "1"));
                }
                let f = sum.fns.last_mut()?;
                f.cfg
                    .get_or_insert_with(|| Cfg { blocks: Vec::new() })
                    .blocks
                    .push(Block { events: Vec::new(), succs, head });
            }
            "ev" => {
                let f = sum.fns.last_mut()?;
                let blocks = &mut f.cfg.as_mut()?.blocks;
                blocks.last_mut()?.events.push(parse_event(&fields[1..])?);
            }
            "end" => {
                saw_end = true;
                break;
            }
            _ => return None,
        }
    }
    // A fn that promised a CFG but whose blocks were truncated away
    // still deserializes (`cfg: None` only for trait decls) — the
    // `end` sentinel is what guards truncation.
    if saw_end {
        Some(sum)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{analyze, link, FilePolicy, SourceFile};
    use crate::summary::summarize;

    fn sample_files() -> Vec<SourceFile> {
        let alpha = "\
//! sample
use fix_beta::*;
use std::mem::take;

pub struct S {
    pub a: std::sync::Mutex<u8>,
}

mod wal;

pub fn dispatch(pool: &P, tx: &Tx) -> Result<(), StoreError> {
    let txn = tx.begin();
    pool.try_run_bounded_cancellable(2, |_c| {});
    while !done() {
        helper();
    }
    txn.commit();
    Ok(())
}

fn helper() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn done() -> bool {
    true
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = 1; // teleios-lint: allow(swallowed-result)
    }
}
";
        let beta = "\
pub use fix_alpha::helper as relayed;

pub enum BetaError {
    Io,
}

pub fn catalog(s: &S) {
    let g = s.catalog.lock();
    drop(g);
}
";
        vec![
            SourceFile {
                label: "crates/fix_alpha/src/lib.rs".to_string(),
                raw: alpha.to_string(),
                crate_name: "fix_alpha".to_string(),
                is_crate_root: true,
                policy: FilePolicy::default(),
            },
            SourceFile {
                label: "crates/fix_beta/src/lib.rs".to_string(),
                raw: beta.to_string(),
                crate_name: "fix_beta".to_string(),
                is_crate_root: false,
                policy: FilePolicy::default(),
            },
        ]
    }

    #[test]
    fn summaries_round_trip_byte_identically() {
        for file in sample_files() {
            let sum = summarize(&file);
            let text = serialize(&sum);
            let parsed = parse(&text).expect("entry must parse");
            assert_eq!(serialize(&parsed), text, "re-serialization must be identical");
            assert_eq!(parsed.fingerprint, sum.fingerprint);
            assert_eq!(parsed.label, sum.label);
            assert_eq!(parsed.fns.len(), sum.fns.len());
            assert_eq!(parsed.idx.starts(), sum.idx.starts());
        }
    }

    #[test]
    fn linking_parsed_summaries_matches_direct_analysis() {
        let files = sample_files();
        let direct = analyze(&files);
        let sums: Vec<_> = files
            .iter()
            .map(|f| parse(&serialize(&summarize(f))).expect("round trip"))
            .collect();
        assert_eq!(link(&sums), direct);
    }

    #[test]
    fn truncated_or_mismatched_entries_are_misses() {
        let files = sample_files();
        let sum = summarize(&files[0]);
        let text = serialize(&sum);
        assert!(parse(&text[..text.len() / 2]).is_none(), "truncation must not parse");
        assert!(parse("garbage\n").is_none());
        let dir = std::env::temp_dir().join(format!("teleios-lint-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        store(&dir, &sum).expect("store");
        assert!(load(&dir, &sum.label, sum.fingerprint).is_some());
        assert!(load(&dir, &sum.label, sum.fingerprint ^ 1).is_none(), "stale fingerprint");
        assert!(load(&dir, "no/such/file.rs", sum.fingerprint).is_none());
        assert!(load_any(&dir, &sum.label).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_round_trips_tabs_newlines_and_backslashes() {
        for s in ["plain", "a\tb", "a\nb", "a\\b", "a\\tb\\n", "", "\t\n\\"] {
            assert_eq!(unesc(&esc(s)), s);
        }
    }
}
