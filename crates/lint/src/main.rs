#![forbid(unsafe_code)]
//! Driver: `teleios-lint [--root <path>] [--self-test] [--strict]
//! [--format human|json|github] [--jobs <n> | --serial]
//! [--cache <dir>] [--changed-since <rev>] [--timings] [<file>...]`.
//!
//! Default mode scans every workspace member and exits non-zero on
//! any violated invariant (warnings — `unused-allow` — fail only
//! under `--strict`); `--self-test` runs the analyzer over the seeded
//! fixtures — the single-file crate and the two-crate cross-crate
//! workspace — and verifies each rule fires at its exact
//! `file:line:col` (and that the decoys stay silent).
//!
//! The summarize phase runs one task per file on the worker pool
//! (`--jobs`/`--serial` control the width; findings are byte-
//! identical either way). `--cache <dir>` keeps content-fingerprinted
//! per-file summaries so warm runs skip the lex/CFG work.
//! `--changed-since <rev>` (or naming files directly) re-summarizes
//! only the changed set and links everything else from the cache on
//! trust. `--timings` reports per-phase and per-rule wall-clock plus
//! the cache hit rate on stderr.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use teleios_lint::{Finding, ScanOptions, ScanStats};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Github,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: teleios-lint [--root <workspace-dir>] [--self-test] [--strict] \
         [--format human|json|github] [--jobs <n> | --serial] [--cache <dir>] \
         [--changed-since <rev>] [--timings] [<file>...]"
    );
    ExitCode::from(2)
}

fn render(findings: &[Finding], format: Format) {
    match format {
        Format::Human => {
            for f in findings {
                eprintln!("{f}");
            }
        }
        Format::Json => println!("{}", teleios_lint::render::to_json(findings)),
        Format::Github => {
            for f in findings {
                println!("{}", teleios_lint::render::github_annotation(f));
            }
        }
    }
}

/// Workspace-relative label for a user-named path (absolute, or
/// relative to the invocation directory).
fn to_label(root: &Path, arg: &str) -> String {
    let p = PathBuf::from(arg);
    let abs = if p.is_absolute() {
        p
    } else {
        std::env::current_dir().unwrap_or_default().join(p)
    };
    let abs = abs.canonicalize().unwrap_or(abs);
    let root = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    abs.strip_prefix(&root)
        .unwrap_or(&abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// `.rs` files changed since `rev` (committed, staged, unstaged, or
/// untracked), as workspace-relative labels.
fn git_changed(root: &Path, rev: &str) -> Result<Vec<String>, String> {
    let run = |args: &[&str]| -> Result<String, String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .map_err(|e| format!("running git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let diff = run(&["diff", "--name-only", rev, "--"])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"])?;
    let mut files: Vec<String> = diff
        .lines()
        .chain(untracked.lines())
        .map(str::trim)
        .filter(|l| l.ends_with(".rs"))
        .map(|l| l.replace('\\', "/"))
        .collect();
    files.sort();
    files.dedup();
    Ok(files)
}

fn print_timings(stats: &ScanStats, cached: bool) {
    eprintln!("teleios-lint timings ({} files):", stats.files);
    let mut total: u128 = 0;
    for (name, us) in &stats.phases {
        eprintln!("    {name:<24} {:>9.2}ms", *us as f64 / 1000.0);
        total += us;
    }
    eprintln!("    {:<24} {:>9.2}ms", "total", total as f64 / 1000.0);
    if cached {
        let looked = stats.cache_hits + stats.cache_misses;
        let rate = if looked == 0 {
            0.0
        } else {
            stats.cache_hits as f64 * 100.0 / looked as f64
        };
        eprintln!(
            "    cache: {} hit(s), {} miss(es) — {rate:.0}% hit rate",
            stats.cache_hits, stats.cache_misses
        );
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    let mut strict = false;
    let mut format = Format::Human;
    let mut jobs: usize = 0;
    let mut cache_dir: Option<PathBuf> = None;
    let mut changed_since: Option<String> = None;
    let mut named_files: Vec<String> = Vec::new();
    let mut timings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--self-test" => self_test = true,
            "--strict" => strict = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                _ => return usage(),
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => return usage(),
            },
            "--serial" => jobs = 1,
            "--cache" => match args.next() {
                Some(d) => cache_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--changed-since" => match args.next() {
                Some(rev) => changed_since = Some(rev),
                None => return usage(),
            },
            "--timings" => timings = true,
            "--help" | "-h" => {
                println!("teleios-lint: TELEIOS workspace invariant checker");
                println!();
                println!("  --root <dir>          workspace root (default: walk up from cwd)");
                println!("  --self-test           verify rules L1-L12 + crate-attrs fire on the seeded fixtures (single-file + cross-crate)");
                println!("  --strict              treat warnings (unused-allow) as errors");
                println!("  --format <fmt>        human (default) | json | github annotations");
                println!("  --jobs <n>            summarize-phase worker threads (default: available parallelism)");
                println!("  --serial              single-threaded scan (same findings, byte-identical)");
                println!("  --cache <dir>         content-fingerprint summary cache for warm runs");
                println!("  --changed-since <rev> re-summarize only files git reports changed since <rev>;");
                println!("                        everything else links from the cache on trust");
                println!("  --timings             per-phase/per-rule wall-clock + cache hit rate on stderr");
                println!("  <file>...             explicit changed set (same cache-trust linking)");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => named_files.push(arg),
            _ => return usage(),
        }
    }

    if self_test {
        return match teleios_lint::run_self_test() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(lines) => {
                for line in lines {
                    eprintln!("{line}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match teleios_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("teleios-lint: no workspace Cargo.toml found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut changed: Option<Vec<String>> = None;
    if let Some(rev) = &changed_since {
        match git_changed(&root, rev) {
            Ok(labels) => changed = Some(labels),
            Err(e) => {
                eprintln!("teleios-lint: --changed-since: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !named_files.is_empty() {
        let set = changed.get_or_insert_with(Vec::new);
        set.extend(named_files.iter().map(|f| to_label(&root, f)));
        set.sort();
        set.dedup();
    }
    if changed.is_some() && cache_dir.is_none() {
        eprintln!(
            "teleios-lint: note: changed-set mode without --cache re-reads every file (nothing to link against)"
        );
    }

    let opts = ScanOptions { jobs, cache_dir: cache_dir.clone(), changed };
    match teleios_lint::scan_workspace_with(&root, &opts) {
        // A clean scan of zero files means the root was wrong, not that
        // the workspace is clean — a mispathed CI invocation must fail.
        Ok((_, stats)) if stats.files == 0 => {
            eprintln!("teleios-lint: no .rs files under {} (wrong --root?)", root.display());
            ExitCode::FAILURE
        }
        Ok((findings, stats)) => {
            let file_count = stats.files;
            if timings {
                print_timings(&stats, cache_dir.is_some());
            }
            let errors = findings.iter().filter(|f| !f.rule.is_warning()).count();
            let warnings = findings.len() - errors;
            let failed = errors > 0 || (strict && warnings > 0);
            if findings.is_empty() {
                if format == Format::Json {
                    println!("[]");
                } else {
                    println!("teleios-lint: workspace clean ({file_count} files, 13 rules)");
                }
                return ExitCode::SUCCESS;
            }
            render(&findings, format);
            if format != Format::Json {
                eprintln!(
                    "teleios-lint: {errors} error(s), {warnings} warning(s) across {file_count} files{}",
                    if failed { "" } else { " — warnings don't fail the gate (use --strict)" }
                );
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("teleios-lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
