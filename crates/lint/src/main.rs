#![forbid(unsafe_code)]
//! Driver: `teleios-lint [--root <path>] [--self-test]`.
//!
//! Default mode scans every workspace member and exits non-zero on
//! any violated invariant; `--self-test` runs the scanner over the
//! seeded fixture and verifies each rule L1–L5 fires with a
//! file:line diagnostic (and that the decoys stay silent).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: teleios-lint [--root <workspace-dir>] [--self-test]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("teleios-lint: TELEIOS workspace invariant checker");
                println!();
                println!("  --root <dir>   workspace root (default: walk up from cwd)");
                println!("  --self-test    verify rules L1-L5 fire on the seeded fixture");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if self_test {
        return match teleios_lint::run_self_test() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(lines) => {
                for line in lines {
                    eprintln!("{line}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match teleios_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("teleios-lint: no workspace Cargo.toml found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match teleios_lint::scan_workspace(&root) {
        // A clean scan of zero files means the root was wrong, not that
        // the workspace is clean — a mispathed CI invocation must fail.
        Ok((_, 0)) => {
            eprintln!("teleios-lint: no .rs files under {} (wrong --root?)", root.display());
            ExitCode::FAILURE
        }
        Ok((findings, file_count)) if findings.is_empty() => {
            println!("teleios-lint: workspace clean ({file_count} files, 6 rules)");
            ExitCode::SUCCESS
        }
        Ok((findings, file_count)) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("teleios-lint: {} finding(s) across {file_count} files", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("teleios-lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
