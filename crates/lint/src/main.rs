#![forbid(unsafe_code)]
//! Driver: `teleios-lint [--root <path>] [--self-test] [--strict]
//! [--format human|json|github]`.
//!
//! Default mode scans every workspace member and exits non-zero on
//! any violated invariant (warnings — `unused-allow` — fail only
//! under `--strict`); `--self-test` runs the analyzer over the seeded
//! fixture and verifies each rule fires at its exact `line:col` (and
//! that the decoys stay silent). `--format github` emits workflow
//! annotation commands so CI surfaces findings inline; `--format
//! json` emits a machine-readable array.

use std::path::PathBuf;
use std::process::ExitCode;
use teleios_lint::Finding;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Github,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: teleios-lint [--root <workspace-dir>] [--self-test] [--strict] [--format human|json|github]"
    );
    ExitCode::from(2)
}

fn render(findings: &[Finding], format: Format) {
    match format {
        Format::Human => {
            for f in findings {
                eprintln!("{f}");
            }
        }
        Format::Json => println!("{}", teleios_lint::render::to_json(findings)),
        Format::Github => {
            for f in findings {
                println!("{}", teleios_lint::render::github_annotation(f));
            }
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    let mut strict = false;
    let mut format = Format::Human;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--self-test" => self_test = true,
            "--strict" => strict = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                _ => return usage(),
            },
            "--help" | "-h" => {
                println!("teleios-lint: TELEIOS workspace invariant checker");
                println!();
                println!("  --root <dir>     workspace root (default: walk up from cwd)");
                println!("  --self-test      verify rules L1-L12 + crate-attrs fire on the seeded fixture");
                println!("  --strict         treat warnings (unused-allow) as errors");
                println!("  --format <fmt>   human (default) | json | github annotations");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if self_test {
        return match teleios_lint::run_self_test() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(lines) => {
                for line in lines {
                    eprintln!("{line}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match teleios_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("teleios-lint: no workspace Cargo.toml found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match teleios_lint::scan_workspace(&root) {
        // A clean scan of zero files means the root was wrong, not that
        // the workspace is clean — a mispathed CI invocation must fail.
        Ok((_, 0)) => {
            eprintln!("teleios-lint: no .rs files under {} (wrong --root?)", root.display());
            ExitCode::FAILURE
        }
        Ok((findings, file_count)) => {
            let errors = findings.iter().filter(|f| !f.rule.is_warning()).count();
            let warnings = findings.len() - errors;
            let failed = errors > 0 || (strict && warnings > 0);
            if findings.is_empty() {
                if format == Format::Json {
                    println!("[]");
                } else {
                    println!("teleios-lint: workspace clean ({file_count} files, 13 rules)");
                }
                return ExitCode::SUCCESS;
            }
            render(&findings, format);
            if format != Format::Json {
                eprintln!(
                    "teleios-lint: {errors} error(s), {warnings} warning(s) across {file_count} files{}",
                    if failed { "" } else { " — warnings don't fail the gate (use --strict)" }
                );
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("teleios-lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
