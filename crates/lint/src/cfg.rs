//! Intraprocedural control flow + dataflow: the engine behind the
//! path-sensitive rules L10 `txn-leak`, L11 `guard-across-blocking`,
//! and L12 `loop-cancel-poll`.
//!
//! [`build`] parses one function body — over the [`crate::lexer`]
//! token stream, with [`crate::graph`] supplying call shapes — into
//! basic blocks with edges for `if`/`else if`/`else`, `if let`/
//! `while let`/`let-else`, `match` arms, the three loop forms,
//! `return`, `break`/`continue`, and `?`-propagation.
//! Dataflow-relevant occurrences (transaction begin/commit/rollback,
//! exclusive guard acquisition and `drop`, blocking calls,
//! cancellation polls, function exits) become [`Event`]s in lexical
//! order inside each block, anchored at byte offsets so a CFG stored
//! in a [`crate::summary::FileSummary`] stands alone — no token
//! stream needed at link time.
//!
//! Call sites the builder cannot judge locally become [`Event::Call`]
//! placeholders; the link phase ([`crate::interproc`]) resolves each
//! against the workspace call graph and rewrites it via
//! [`resolve_calls`] into the `Poll` and/or `Blocking` events its
//! callee's effect summary implies — that is how a guard held across
//! a call into another crate's fsync path gets caught.
//!
//! On top of the graph sits a small forward dataflow framework:
//! gen/kill facts per block, joined along edges and iterated over a
//! worklist to fixpoint ([`forward_fixpoint`]), then replayed through
//! each block's events to anchor diagnostics at exact `line:col`
//! positions. Loop bodies are recovered as natural loops (reverse
//! reachability from back edges — every graph this builder produces
//! is reducible) for the must-poll analysis.
//!
//! Deliberate approximations, chosen to keep the engine dependency-
//! free and the false-positive rate near zero: closures are inlined
//! into the enclosing function's flow (a `?` inside a closure is
//! treated as a function exit), labeled `break`/`continue` target the
//! innermost loop, and nested `fn` items are skipped (each gets its
//! own CFG).

use crate::graph;
use crate::lexer::{enclosing_block_end, ident_at, is_ident, is_punct, stmt_start, Tok, TokKind};
use crate::rules::{Diagnostics, FileCtx, Rule};
use crate::summary::FileSummary;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// One dataflow-relevant occurrence inside a basic block. Byte
/// offsets anchor diagnostics; events appear in lexical order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Event {
    /// `recv.begin()` — opens a transaction. `close` is the byte
    /// offset of the call's `)`, used to order a directly attached
    /// `?` *before* the open: on `begin()?`'s Err path no transaction
    /// exists yet.
    Begin { recv: String, off: usize, close: usize },
    /// `recv.commit()` / `recv.rollback()` — closes the transaction
    /// whether it succeeds or errors (the backends `take()` the
    /// transaction first).
    TxnEnd { recv: String },
    /// `let g = lock.lock()` / `.write()` — an exclusive guard bound
    /// to a name. `scope_end` is the byte offset of the `}` closing
    /// the binding's block.
    Acquire { binding: String, lock: String, off: usize, scope_end: usize },
    /// `drop(g)`.
    DropGuard { binding: String },
    /// A call that can stall other threads or outlive a deadline:
    /// pool dispatch, `thread::sleep`, channel `recv`, fsync barrier,
    /// WAL commit — or, after [`resolve_calls`], a call whose effect
    /// summary says it may transitively block.
    Blocking { desc: String, off: usize },
    /// A cancellation poll: `is_cancelled` / `poll_cancellable` /
    /// `sleep_cancellable`, or (after [`resolve_calls`]) a call to a
    /// workspace function that transitively polls.
    Poll,
    /// An unresolved call site: judged at link time against the
    /// callee's effect summary, then rewritten by [`resolve_calls`].
    Call { name: String, qual: Vec<String>, method: bool, off: usize },
    /// `?` — an Err early exit out of the function.
    Question { off: usize },
    /// `return`.
    Ret { off: usize },
    /// Falling off the end of the function body.
    EndOfFn,
}

/// A basic block: events in lexical order plus `(target, is_back)`
/// successor edges. Loop-head blocks carry the loop keyword's byte
/// offset.
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct Block {
    pub(crate) events: Vec<Event>,
    pub(crate) succs: Vec<(usize, bool)>,
    pub(crate) head: Option<(usize, &'static str)>,
}

/// Control-flow graph of one function body; block 0 is the entry.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Cfg {
    pub(crate) blocks: Vec<Block>,
}

impl Cfg {
    fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &(t, _) in &block.succs {
                preds[t].push(b);
            }
        }
        preds
    }
}

/// Build the CFG for the body `(open, close)` (token indices of the
/// function's outer braces).
pub(crate) fn build(ctx: &FileCtx<'_>, body: (usize, usize)) -> Cfg {
    let mut b = Builder { ctx, blocks: vec![Block::default()] };
    let (open, close) = body;
    let mut loops = Vec::new();
    let last = b.parse_flow(open + 1, close, 0, &mut loops);
    b.blocks[last].events.push(Event::EndOfFn);
    Cfg { blocks: b.blocks }
}

/// The link phase's judgement of one unresolved call site.
#[derive(Debug, Clone, Default)]
pub(crate) struct CallVerdict {
    /// The callee transitively polls the CancelToken.
    pub(crate) polls: bool,
    /// The callee may block; the description to report.
    pub(crate) block: Option<String>,
}

/// Rewrite every [`Event::Call`] into the `Poll` and/or `Blocking`
/// events the link phase's verdict implies (or nothing), leaving all
/// other events and the block structure untouched. The path-sensitive
/// checks then run unchanged over the resolved graph.
pub(crate) fn resolve_calls(
    cfg: &Cfg,
    mut verdict: impl FnMut(&str, &[String], bool) -> CallVerdict,
) -> Cfg {
    let blocks = cfg
        .blocks
        .iter()
        .map(|b| {
            let mut events = Vec::with_capacity(b.events.len());
            for ev in &b.events {
                if let Event::Call { name, qual, method, off } = ev {
                    let v = verdict(name, qual, *method);
                    if v.polls {
                        events.push(Event::Poll);
                    }
                    if let Some(desc) = v.block {
                        events.push(Event::Blocking { desc, off: *off });
                    }
                } else {
                    events.push(ev.clone());
                }
            }
            Block { events, succs: b.succs.clone(), head: b.head }
        })
        .collect();
    Cfg { blocks }
}

struct Builder<'b, 'a> {
    ctx: &'b FileCtx<'a>,
    blocks: Vec<Block>,
}

impl Builder<'_, '_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, back: bool) {
        if !self.blocks[from].succs.contains(&(to, back)) {
            self.blocks[from].succs.push((to, back));
        }
    }

    /// The `}` matching the `{` at `open` (the lexer gives both the
    /// same depth).
    fn match_brace(&self, open: usize) -> usize {
        let toks = self.ctx.toks;
        let d = toks[open].depth;
        let mut j = open + 1;
        while j < toks.len() {
            if is_punct(toks, j, b'}') && toks[j].depth == d {
                return j;
            }
            j += 1;
        }
        toks.len().saturating_sub(1)
    }

    /// First `{` at paren/bracket depth zero in `[j, hi)` — the body
    /// open of a control construct. A `match` expression inside the
    /// condition gets its arm list skipped so it is not mistaken for
    /// the body (bare struct literals are illegal in condition
    /// position, so any other `{` at depth zero *is* the body).
    fn cond_body_open(&self, mut j: usize, hi: usize) -> usize {
        let toks = self.ctx.toks;
        let mut paren = 0i32;
        while j < hi {
            match toks[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                TokKind::Punct(b'{') if paren == 0 => return j,
                TokKind::Ident("match") if paren == 0 => {
                    let open = self.cond_body_open(j + 1, hi);
                    if open >= hi {
                        return hi;
                    }
                    j = self.match_brace(open);
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Token index just past the `=` ending a `let <pattern>` in an
    /// `if let` / `while let` / `let-else` head (struct patterns nest
    /// braces; `..=` range patterns contain a non-terminating `=`).
    fn skip_let_pattern(&self, mut j: usize, hi: usize) -> usize {
        let toks = self.ctx.toks;
        let (mut paren, mut brace) = (0i32, 0i32);
        while j < hi {
            match toks[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                TokKind::Punct(b'{') => brace += 1,
                TokKind::Punct(b'}') => brace -= 1,
                TokKind::Punct(b'=') if paren == 0 && brace == 0 => {
                    let part_of_op = is_punct(toks, j + 1, b'=')
                        || is_punct(toks, j + 1, b'>')
                        || (j > 0
                            && (is_punct(toks, j - 1, b'=')
                                || is_punct(toks, j - 1, b'<')
                                || is_punct(toks, j - 1, b'>')
                                || is_punct(toks, j - 1, b'!')
                                || is_punct(toks, j - 1, b'.')));
                    if !part_of_op {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// The `;` ending the expression statement starting at `j`, at
    /// its own paren/brace nesting (or the first `}` that closes the
    /// enclosing block).
    fn stmt_close(&self, mut j: usize, hi: usize) -> usize {
        let toks = self.ctx.toks;
        let (mut paren, mut brace) = (0i32, 0i32);
        while j < hi {
            match toks[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                TokKind::Punct(b'{') => brace += 1,
                TokKind::Punct(b'}') => {
                    brace -= 1;
                    if brace < 0 {
                        return j;
                    }
                }
                TokKind::Punct(b';') if paren == 0 && brace == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Linear walk over `[lo, hi)`: straight-line runs become events
    /// in the current block; control constructs split blocks and add
    /// edges. Returns the block that falls through past `hi`.
    /// `loops` stacks `(head, after)` targets for `continue`/`break`.
    fn parse_flow(
        &mut self,
        lo: usize,
        hi: usize,
        mut cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        let toks = self.ctx.toks;
        let mut i = lo;
        let mut run = lo;
        while i < hi {
            match toks[i].kind {
                TokKind::Ident("if") => {
                    self.scan_events(cur, run, i);
                    let (ni, nc) = self.handle_if(i, hi, cur, loops);
                    cur = nc;
                    i = ni;
                    run = i;
                }
                TokKind::Ident("while") | TokKind::Ident("loop") | TokKind::Ident("for") => {
                    self.scan_events(cur, run, i);
                    let (ni, nc) = self.handle_loop(i, hi, cur, loops);
                    cur = nc;
                    i = ni;
                    run = i;
                }
                TokKind::Ident("match") => {
                    self.scan_events(cur, run, i);
                    let (ni, nc) = self.handle_match(i, hi, cur, loops);
                    cur = nc;
                    i = ni;
                    run = i;
                }
                TokKind::Ident("return") => {
                    self.scan_events(cur, run, i);
                    let end = self.stmt_close(i + 1, hi);
                    self.scan_events(cur, i + 1, end);
                    self.blocks[cur].events.push(Event::Ret { off: toks[i].off });
                    cur = self.new_block(); // unreachable continuation
                    i = end + 1;
                    run = i;
                }
                TokKind::Ident("break") => {
                    self.scan_events(cur, run, i);
                    let end = self.stmt_close(i + 1, hi);
                    self.scan_events(cur, i + 1, end);
                    if let Some(&(_, after)) = loops.last() {
                        self.edge(cur, after, false);
                    }
                    cur = self.new_block();
                    i = end + 1;
                    run = i;
                }
                TokKind::Ident("continue") => {
                    self.scan_events(cur, run, i);
                    let end = self.stmt_close(i + 1, hi);
                    if let Some(&(head, _)) = loops.last() {
                        self.edge(cur, head, true);
                    }
                    cur = self.new_block();
                    i = end + 1;
                    run = i;
                }
                // `let <pattern> = <expr> else { <diverging> };`
                TokKind::Ident("else") if is_punct(toks, i + 1, b'{') => {
                    self.scan_events(cur, run, i);
                    let close = self.match_brace(i + 1);
                    let body = self.new_block();
                    let after = self.new_block();
                    self.edge(cur, body, false);
                    self.edge(cur, after, false);
                    let bx = self.parse_flow(i + 2, close, body, loops);
                    self.edge(bx, after, false);
                    cur = after;
                    i = close + 1;
                    run = i;
                }
                // Nested `fn` item: a definition, not control flow —
                // skip it (it gets its own CFG). `fn` pointer types
                // (`let f: fn(u8)`) have no name ident and fall
                // through as plain tokens.
                TokKind::Ident("fn") if ident_at(toks, i + 1).is_some() => {
                    self.scan_events(cur, run, i);
                    let mut j = i + 1;
                    let mut paren = 0i32;
                    while j < hi {
                        match toks[j].kind {
                            TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                            TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                            TokKind::Punct(b';') if paren == 0 => break,
                            TokKind::Punct(b'{') if paren == 0 => {
                                j = self.match_brace(j);
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    run = i;
                }
                // Plain block, closure body, or unsafe block: inline
                // as sequential flow.
                TokKind::Punct(b'{') => {
                    self.scan_events(cur, run, i);
                    let close = self.match_brace(i);
                    cur = self.parse_flow(i + 1, close, cur, loops);
                    i = close + 1;
                    run = i;
                }
                _ => i += 1,
            }
        }
        self.scan_events(cur, run, hi);
        cur
    }

    /// `if [let <pat> =] <cond> { then } [else if ... | else { .. }]`.
    /// Returns `(token index after the construct, join block)`.
    fn handle_if(
        &mut self,
        i: usize,
        hi: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> (usize, usize) {
        let toks = self.ctx.toks;
        let cond_from = if is_ident(toks, i + 1, "let") {
            self.skip_let_pattern(i + 2, hi)
        } else {
            i + 1
        };
        let open = self.cond_body_open(cond_from, hi);
        if open >= hi {
            self.scan_events(cur, i + 1, hi);
            return (hi, cur);
        }
        self.scan_events(cur, i + 1, open);
        let close = self.match_brace(open);
        let then_entry = self.new_block();
        self.edge(cur, then_entry, false);
        let then_exit = self.parse_flow(open + 1, close, then_entry, loops);
        if is_ident(toks, close + 1, "else") {
            if is_ident(toks, close + 2, "if") {
                let elif_entry = self.new_block();
                self.edge(cur, elif_entry, false);
                let (ni, join) = self.handle_if(close + 2, hi, elif_entry, loops);
                self.edge(then_exit, join, false);
                return (ni, join);
            }
            if is_punct(toks, close + 2, b'{') {
                let eclose = self.match_brace(close + 2);
                let else_entry = self.new_block();
                self.edge(cur, else_entry, false);
                let else_exit = self.parse_flow(close + 3, eclose, else_entry, loops);
                let join = self.new_block();
                self.edge(then_exit, join, false);
                self.edge(else_exit, join, false);
                return (eclose + 1, join);
            }
        }
        let join = self.new_block();
        self.edge(cur, join, false);
        self.edge(then_exit, join, false);
        (close + 1, join)
    }

    /// `loop { .. }` / `while [let <pat> =] <cond> { .. }` /
    /// `for <pat> in <iter> { .. }`. The head block holds the
    /// condition events and carries the keyword's offset.
    fn handle_loop(
        &mut self,
        i: usize,
        hi: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> (usize, usize) {
        let toks = self.ctx.toks;
        let kw: &'static str = match ident_at(toks, i) {
            Some("while") => "while",
            Some("for") => "for",
            _ => "loop",
        };
        let mut cond_from = i + 1;
        if kw == "while" && is_ident(toks, i + 1, "let") {
            cond_from = self.skip_let_pattern(i + 2, hi);
        }
        if kw == "for" {
            let (mut paren, mut brace) = (0i32, 0i32);
            let mut k = i + 1;
            while k < hi {
                match toks[k].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                    TokKind::Punct(b'{') => brace += 1,
                    TokKind::Punct(b'}') => brace -= 1,
                    TokKind::Ident("in") if paren == 0 && brace == 0 => {
                        cond_from = k + 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        let open = self.cond_body_open(cond_from, hi);
        if open >= hi {
            self.scan_events(cur, i + 1, hi);
            return (hi, cur);
        }
        let head = self.new_block();
        self.edge(cur, head, false);
        self.scan_events(head, i + 1, open);
        self.blocks[head].head = Some((toks[i].off, kw));
        let close = self.match_brace(open);
        let after = self.new_block();
        if kw != "loop" {
            // `while`/`for` can fall through without entering.
            self.edge(head, after, false);
        }
        let body = self.new_block();
        self.edge(head, body, false);
        loops.push((head, after));
        let body_exit = self.parse_flow(open + 1, close, body, loops);
        loops.pop();
        self.edge(body_exit, head, true);
        (close + 1, after)
    }

    /// `match <scrutinee> { pat [if guard] => arm, ... }`: one block
    /// per arm, all joining after the match.
    fn handle_match(
        &mut self,
        i: usize,
        hi: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> (usize, usize) {
        let toks = self.ctx.toks;
        let open = self.cond_body_open(i + 1, hi);
        if open >= hi {
            self.scan_events(cur, i + 1, hi);
            return (hi, cur);
        }
        self.scan_events(cur, i + 1, open);
        let close = self.match_brace(open);
        let join = self.new_block();
        let mut j = open + 1;
        let mut arms = 0usize;
        while j < close {
            // `=>` at paren/brace depth zero ends the pattern (and
            // any guard); `..=` / `==` / `<=` never match because the
            // next token must be `>`.
            let (mut paren, mut brace) = (0i32, 0i32);
            let mut arrow = None;
            let mut k = j;
            while k < close {
                match toks[k].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                    TokKind::Punct(b'{') => brace += 1,
                    TokKind::Punct(b'}') => brace -= 1,
                    TokKind::Punct(b'=')
                        if paren == 0 && brace == 0 && is_punct(toks, k + 1, b'>') =>
                    {
                        arrow = Some(k);
                    }
                    _ => {}
                }
                if arrow.is_some() {
                    break;
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let entry = self.new_block();
            self.edge(cur, entry, false);
            self.scan_events(entry, j, arrow); // guard calls can poll
            let body_start = arrow + 2;
            let (exit, mut next);
            if is_punct(toks, body_start, b'{') {
                let bclose = self.match_brace(body_start);
                exit = self.parse_flow(body_start + 1, bclose, entry, loops);
                next = bclose + 1;
            } else {
                // Expression arm: ends at `,` at this nesting level,
                // or at the match close.
                let (mut paren, mut brace) = (0i32, 0i32);
                let mut k = body_start;
                while k < close {
                    match toks[k].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                        TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
                        TokKind::Punct(b'{') => brace += 1,
                        TokKind::Punct(b'}') => brace -= 1,
                        TokKind::Punct(b',') if paren == 0 && brace == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                exit = self.parse_flow(body_start, k, entry, loops);
                next = k;
            }
            self.edge(exit, join, false);
            if is_punct(toks, next, b',') {
                next += 1;
            }
            j = next;
            arms += 1;
        }
        if arms == 0 {
            self.edge(cur, join, false);
        }
        (close + 1, join)
    }

    /// Append the events of the straight-line token run `[lo, hi)` to
    /// block `cur`.
    fn scan_events(&mut self, cur: usize, lo: usize, hi: usize) {
        let ctx = self.ctx;
        let toks = ctx.toks;
        let hi = hi.min(toks.len());
        let mut i = lo;
        while i < hi {
            if is_punct(toks, i, b'?') {
                let ev = Event::Question { off: toks[i].off };
                match self.blocks[cur].events.last() {
                    // `begin()?`: the Err path never opened a
                    // transaction — order the exit before the open.
                    Some(Event::Begin { close, .. }) if i >= 1 && toks[i - 1].off == *close => {
                        let at = self.blocks[cur].events.len() - 1;
                        self.blocks[cur].events.insert(at, ev);
                    }
                    _ => self.blocks[cur].events.push(ev),
                }
                i += 1;
                continue;
            }
            let Some(name) = ident_at(toks, i) else {
                i += 1;
                continue;
            };
            let dotted = i >= 1 && is_punct(toks, i - 1, b'.');
            let called = is_punct(toks, i + 1, b'(');
            let empty_args = called && is_punct(toks, i + 2, b')');
            match name {
                "begin" if dotted && empty_args => {
                    let ev = Event::Begin {
                        recv: recv_name(toks, i),
                        off: toks[recv_anchor(toks, i)].off,
                        close: toks[i + 2].off,
                    };
                    self.blocks[cur].events.push(ev);
                }
                "commit" if dotted && empty_args => {
                    // Dual role: a WAL commit is an fsync barrier
                    // (blocking) *and* it closes the transaction.
                    self.blocks[cur].events.push(Event::Blocking {
                        desc: "the WAL commit `commit()`".to_string(),
                        off: toks[i].off,
                    });
                    self.blocks[cur].events.push(Event::TxnEnd { recv: recv_name(toks, i) });
                }
                "rollback" if dotted && empty_args => {
                    let ev = Event::TxnEnd { recv: recv_name(toks, i) };
                    self.blocks[cur].events.push(ev);
                }
                // Exclusive guard acquisition: only `let`-bound
                // guards on a plain-ident lock outlive their
                // statement. Shared `.read()` guards are exempt —
                // L11 targets guards that stall every other thread.
                "lock" | "write" if dotted && empty_args => {
                    let Some(lock) = (i >= 2).then(|| ident_at(toks, i - 2)).flatten() else {
                        i += 1;
                        continue;
                    };
                    let s = stmt_start(toks, i);
                    if is_ident(toks, s, "let") {
                        let mut b = s + 1;
                        if is_ident(toks, b, "mut") {
                            b += 1;
                        }
                        if let Some(binding) = ident_at(toks, b) {
                            let bound = is_punct(toks, b + 1, b'=') || is_punct(toks, b + 1, b':');
                            if binding != "_" && bound {
                                let ev = Event::Acquire {
                                    binding: binding.to_string(),
                                    lock: lock.to_string(),
                                    off: toks[i].off,
                                    scope_end: graph::off_at(toks, enclosing_block_end(toks, i)),
                                };
                                self.blocks[cur].events.push(ev);
                            }
                        }
                    }
                }
                "drop" if !dotted && called => {
                    if let Some(binding) = ident_at(toks, i + 2) {
                        if is_punct(toks, i + 3, b')') {
                            let ev = Event::DropGuard { binding: binding.to_string() };
                            self.blocks[cur].events.push(ev);
                        }
                    }
                }
                "sleep_cancellable" if dotted && called => {
                    self.blocks[cur].events.push(Event::Poll);
                    self.blocks[cur].events.push(Event::Blocking {
                        desc: "`sleep_cancellable()`".to_string(),
                        off: toks[i].off,
                    });
                }
                "poll_cancellable" | "is_cancelled" if called => {
                    self.blocks[cur].events.push(Event::Poll);
                }
                "sync_all" | "sync_data" if dotted && empty_args => {
                    self.blocks[cur].events.push(Event::Blocking {
                        desc: format!("the fsync barrier `{name}()`"),
                        off: toks[i].off,
                    });
                }
                "recv" if dotted && empty_args => {
                    self.blocks[cur].events.push(Event::Blocking {
                        desc: "channel `recv()`".to_string(),
                        off: toks[i].off,
                    });
                }
                "recv_timeout" if dotted && called => {
                    self.blocks[cur].events.push(Event::Blocking {
                        desc: "channel `recv_timeout()`".to_string(),
                        off: toks[i].off,
                    });
                }
                "sleep" if called => {
                    let path_call = i >= 3 && is_punct(toks, i - 1, b':') && is_punct(toks, i - 2, b':');
                    let via_path = path_call
                        && ident_at(toks, i - 3).is_some_and(|seg| {
                            seg == "thread" || ctx.aliases.resolves_to(seg, &["std", "thread"])
                        });
                    let via_use = !path_call
                        && !dotted
                        && ctx.aliases.resolves_to("sleep", &["std", "thread", "sleep"]);
                    if via_path || via_use {
                        self.blocks[cur].events.push(Event::Blocking {
                            desc: "`std::thread::sleep`".to_string(),
                            off: if via_path { toks[i - 3].off } else { toks[i].off },
                        });
                    }
                }
                _ => {
                    if dotted && called && graph::DISPATCH_METHODS.contains(&name) {
                        self.blocks[cur].events.push(Event::Blocking {
                            desc: format!("the pool dispatch `{name}()`"),
                            off: toks[i].off,
                        });
                    } else if dotted
                        && called
                        && (name == "run" || name == "run_with")
                        && graph::receiver_name(toks, i - 1)
                            .is_some_and(|r| r.to_lowercase().contains("pool"))
                    {
                        self.blocks[cur].events.push(Event::Blocking {
                            desc: format!("the pool dispatch `{name}()`"),
                            off: toks[i].off,
                        });
                    } else if called {
                        // Everything else is an unresolved call site,
                        // judged at link time against the callee's
                        // effect summary.
                        if let Some(shape) = graph::call_shape_at(toks, i) {
                            self.blocks[cur].events.push(Event::Call {
                                name: shape.name,
                                qual: shape.qual,
                                method: shape.method,
                                off: toks[i].off,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// Receiver of `recv.method()`: the ident two tokens before the
/// method name, or a placeholder for chained receivers.
fn recv_name(toks: &[Tok<'_>], call: usize) -> String {
    if call >= 2 {
        if let Some(r) = ident_at(toks, call - 2) {
            return r.to_string();
        }
    }
    "receiver".to_string()
}

/// Diagnostic anchor for `recv.method()`: the receiver ident when it
/// is one, else the method name.
fn recv_anchor(toks: &[Tok<'_>], call: usize) -> usize {
    if call >= 2 && ident_at(toks, call - 2).is_some() {
        call - 2
    } else {
        call
    }
}

// ---------------------------------------------------------------
// The forward dataflow framework
// ---------------------------------------------------------------

/// Worklist iteration to fixpoint. `transfer` computes a block's out
/// fact from its in fact; `merge` joins an out fact into a successor's
/// in fact (receiving the edge kind and the successor block, so a
/// join can filter what survives a back edge) and reports whether the
/// fact changed. Facts must grow monotonically for termination.
fn forward_fixpoint<F: Clone>(
    cfg: &Cfg,
    init: F,
    bottom: F,
    transfer: impl Fn(&Block, &F) -> F,
    merge: impl Fn(&mut F, &F, bool, &Block) -> bool,
) -> Vec<F> {
    let n = cfg.blocks.len();
    let mut ins: Vec<F> = vec![bottom; n];
    ins[0] = init;
    let mut work: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = transfer(&cfg.blocks[b], &ins[b]);
        for &(t, back) in &cfg.blocks[b].succs {
            let changed = merge(&mut ins[t], &out, back, &cfg.blocks[t]);
            if changed && !queued[t] {
                queued[t] = true;
                work.push_back(t);
            }
        }
    }
    ins
}

// ---------------------------------------------------------------
// L10 txn-leak
// ---------------------------------------------------------------

/// Open transactions: receiver name → byte offset of the `begin`
/// site. May-analysis (union join): a transaction open on *any* path
/// into an exit leaks there.
type TxnFact = BTreeMap<String, usize>;

fn txn_transfer(block: &Block, fact: &TxnFact) -> TxnFact {
    let mut f = fact.clone();
    for ev in &block.events {
        match ev {
            Event::Begin { recv, off, .. } => {
                f.entry(recv.clone()).or_insert(*off);
            }
            Event::TxnEnd { recv } => {
                f.remove(recv);
            }
            _ => {}
        }
    }
    f
}

pub(crate) fn check_txn_leak(sum: &FileSummary, fi: usize, cfg: &Cfg, diag: &mut Diagnostics) {
    if !cfg
        .blocks
        .iter()
        .any(|b| b.events.iter().any(|e| matches!(e, Event::Begin { .. })))
    {
        return;
    }
    let ins = forward_fixpoint(
        cfg,
        TxnFact::new(),
        TxnFact::new(),
        txn_transfer,
        |tin, out, _back, _target| {
            let mut changed = false;
            for (k, v) in out {
                if !tin.contains_key(k) {
                    tin.insert(k.clone(), *v);
                    changed = true;
                }
            }
            changed
        },
    );
    // Replay each block's events over its in fact; report the first
    // leaking exit per begin site.
    let mut leaks: BTreeMap<usize, (String, String)> = BTreeMap::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut f = ins[b].clone();
        for ev in &block.events {
            match ev {
                Event::Begin { recv, off, .. } => {
                    f.entry(recv.clone()).or_insert(*off);
                }
                Event::TxnEnd { recv } => {
                    f.remove(recv);
                }
                Event::Question { off } | Event::Ret { off } => {
                    let (line, _) = sum.idx.line_col(*off);
                    let exit = if matches!(ev, Event::Question { .. }) {
                        format!("the `?` on line {line}")
                    } else {
                        format!("the `return` on line {line}")
                    };
                    for (recv, &site) in &f {
                        leaks.entry(site).or_insert_with(|| (recv.clone(), exit.clone()));
                    }
                }
                Event::EndOfFn => {
                    for (recv, &site) in &f {
                        leaks.entry(site).or_insert_with(|| {
                            (recv.clone(), "falling off the end of the function".to_string())
                        });
                    }
                }
                _ => {}
            }
        }
    }
    for (site, (recv, exit)) in leaks {
        diag.emit(sum, fi, site, Rule::TxnLeak, format!(
            "`{recv}.begin()` opens a transaction that is still open when the function exits through {exit}: commit or roll back on every path (debug builds enforce this with TxnWitness)"
        ));
    }
}

// ---------------------------------------------------------------
// L11 guard-across-blocking
// ---------------------------------------------------------------

/// A live exclusive guard: where it was acquired and where its
/// binding's scope ends (byte offset of the closing `}`).
#[derive(Debug, Clone, PartialEq)]
struct Held {
    lock: String,
    off: usize,
    scope_end: usize,
}

/// binding name → guard. May-analysis: held on any path in counts.
type GuardFact = BTreeMap<String, Held>;

fn guard_transfer(block: &Block, fact: &GuardFact) -> GuardFact {
    let mut f = fact.clone();
    for ev in &block.events {
        match ev {
            Event::Acquire { binding, lock, off, scope_end } => {
                f.insert(
                    binding.clone(),
                    Held { lock: lock.clone(), off: *off, scope_end: *scope_end },
                );
            }
            Event::DropGuard { binding } => {
                f.remove(binding);
            }
            Event::Blocking { off, .. } => {
                // A guard whose lexical scope closed before this
                // point was released when its block ended.
                f.retain(|_, g| g.scope_end >= *off);
            }
            _ => {}
        }
    }
    f
}

pub(crate) fn check_guard_blocking(sum: &FileSummary, fi: usize, cfg: &Cfg, diag: &mut Diagnostics) {
    if !cfg
        .blocks
        .iter()
        .any(|b| b.events.iter().any(|e| matches!(e, Event::Acquire { .. })))
    {
        return;
    }
    let ins = forward_fixpoint(
        cfg,
        GuardFact::new(),
        GuardFact::new(),
        guard_transfer,
        |tin, out, back, target| {
            let mut changed = false;
            for (binding, g) in out {
                // A guard acquired inside the loop body died when the
                // body's iteration ended — it does not survive the
                // back edge into the head.
                if back {
                    if let Some((kw_off, _)) = target.head {
                        if g.off > kw_off {
                            continue;
                        }
                    }
                }
                if !tin.contains_key(binding) {
                    tin.insert(binding.clone(), g.clone());
                    changed = true;
                }
            }
            changed
        },
    );
    let mut reported: BTreeSet<(usize, String)> = BTreeSet::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut f = ins[b].clone();
        for ev in &block.events {
            match ev {
                Event::Acquire { binding, lock, off, scope_end } => {
                    f.insert(
                        binding.clone(),
                        Held { lock: lock.clone(), off: *off, scope_end: *scope_end },
                    );
                }
                Event::DropGuard { binding } => {
                    f.remove(binding);
                }
                Event::Blocking { desc, off } => {
                    f.retain(|_, g| g.scope_end >= *off);
                    for (binding, g) in &f {
                        if reported.insert((*off, binding.clone())) {
                            let (line, _) = sum.idx.line_col(g.off);
                            diag.emit(sum, fi, *off, Rule::GuardAcrossBlocking, format!(
                                "exclusive guard `{binding}` on `{}` (acquired on line {line}) is still held across {desc}: drop or scope the guard before blocking",
                                g.lock
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------
// L12 loop-cancel-poll
// ---------------------------------------------------------------

fn has_poll(block: &Block) -> bool {
    block.events.iter().any(|e| matches!(e, Event::Poll))
}

/// For every `loop`/`while` head: must-analysis over the natural loop
/// body — does *every* iteration path from the head back to it cross
/// a cancellation poll? (`for` loops iterate finite morsel sets and
/// are exempt; unbounded spinning lives in `loop`/`while`.)
pub(crate) fn check_loop_polls(
    sum: &FileSummary,
    fi: usize,
    cfg: &Cfg,
    fn_name: &str,
    entry: &str,
    diag: &mut Diagnostics,
) {
    let preds = cfg.preds();
    for (h, hb) in cfg.blocks.iter().enumerate() {
        let Some((kw_off, kw)) = hb.head else { continue };
        if kw == "for" {
            continue;
        }
        let backs: Vec<usize> = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.succs.contains(&(h, true)))
            .map(|(i, _)| i)
            .collect();
        if backs.is_empty() {
            continue;
        }
        // Natural loop body: the head plus everything that reaches a
        // back edge without passing through the head.
        let mut body: HashSet<usize> = HashSet::new();
        body.insert(h);
        let mut stack: Vec<usize> = backs.clone();
        while let Some(n) = stack.pop() {
            if body.insert(n) {
                stack.extend(preds[n].iter().copied());
            }
        }
        // out[b]: every path head → end-of-b crossed a poll. Init
        // optimistically (top = true), AND over in-body predecessors,
        // head pinned to false (the iteration is just starting).
        let mut sorted: Vec<usize> = body.iter().copied().collect();
        sorted.sort_unstable();
        let mut out: HashMap<usize, bool> = sorted.iter().map(|&b| (b, true)).collect();
        loop {
            let mut changed = false;
            for &b in &sorted {
                let inb = if b == h {
                    false
                } else {
                    preds[b]
                        .iter()
                        .filter(|p| body.contains(p))
                        .all(|p| out.get(p).copied().unwrap_or(true))
                };
                let o = inb || has_poll(&cfg.blocks[b]);
                if out.get(&b).copied() != Some(o) {
                    out.insert(b, o);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if backs.iter().any(|b| !out.get(b).copied().unwrap_or(true)) {
            diag.emit(sum, fi, kw_off, Rule::LoopCancelPoll, format!(
                "`{kw}` loop in `{fn_name}` runs on a pool-dispatched path (via `{entry}`) but has an iteration path that never polls the CancelToken: call is_cancelled / poll_cancellable / sleep_cancellable on every iteration"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{scan_file, FilePolicy, Rule};

    /// Positions where `rule` fired on `src` scanned as library code.
    fn fired(src: &str, rule: Rule) -> Vec<(usize, usize)> {
        scan_file("crates/x/src/lib.rs", src, FilePolicy::default())
            .into_iter()
            .filter(|f| f.rule == rule)
            .map(|f| (f.line, f.col))
            .collect()
    }

    #[test]
    fn txn_leak_through_early_return_branch() {
        let src = r#"
pub fn save(b: &B, ok: bool) -> Result<(), StoreError> {
    b.begin();
    if ok {
        return Ok(());
    }
    b.commit();
    Ok(())
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![(3, 5)]);
    }

    #[test]
    fn txn_rolled_back_before_return_is_clean() {
        let src = r#"
pub fn save(b: &B, ok: bool) -> Result<(), StoreError> {
    b.begin();
    if ok {
        b.rollback();
        return Ok(());
    }
    b.commit();
    Ok(())
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![]);
    }

    #[test]
    fn txn_leak_through_a_match_arm() {
        let src = r#"
pub fn settle(b: &B, k: u8) {
    b.begin();
    match k {
        0 => b.commit(),
        _ => {}
    }
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![(3, 5)]);
    }

    #[test]
    fn txn_closed_in_every_match_arm_is_clean() {
        let src = r#"
pub fn settle(b: &B, k: u8) {
    b.begin();
    match k {
        0 => b.commit(),
        _ => b.rollback(),
    }
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![]);
    }

    #[test]
    fn txn_leak_survives_a_loop_back_edge() {
        let src = r#"
pub fn drain(b: &B, q: &Q) {
    while let Some(_x) = q.pop() {
        b.begin();
    }
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![(4, 9)]);
    }

    #[test]
    fn txn_closed_each_iteration_is_clean() {
        let src = r#"
pub fn drain(b: &B, q: &Q) {
    while let Some(_x) = q.pop() {
        b.begin();
        b.commit();
    }
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![]);
    }

    #[test]
    fn txn_let_else_divergence_is_clean() {
        let src = r#"
pub fn run(b: &B, v: Option<u8>) -> Result<(), StoreError> {
    b.begin();
    let Some(x) = v else {
        b.rollback();
        return Err(StoreError::Bad);
    };
    let _n = x;
    b.commit();
    Ok(())
}
"#;
        assert_eq!(fired(src, Rule::TxnLeak), vec![]);
    }

    #[test]
    fn guard_across_channel_recv_fires_at_the_recv() {
        let src = r#"
pub fn pump(s: &S, rx: &R) {
    let g = s.meta.lock();
    let _msg = rx.recv();
    drop(g);
}
"#;
        assert_eq!(fired(src, Rule::GuardAcrossBlocking), vec![(4, 19)]);
    }

    #[test]
    fn guard_held_on_only_one_path_still_fires() {
        let src = r#"
pub fn maybe(s: &S, pool: &P, ok: bool) {
    let g = s.state.lock();
    if ok {
        drop(g);
    }
    pool.try_run_bounded(2, || {});
}
"#;
        assert_eq!(fired(src, Rule::GuardAcrossBlocking), vec![(7, 10)]);
    }

    #[test]
    fn guard_dropped_on_every_path_is_clean() {
        let src = r#"
pub fn maybe(s: &S, pool: &P, ok: bool) {
    let g = s.state.lock();
    if ok {
        drop(g);
    } else {
        drop(g);
    }
    pool.try_run_bounded(2, || {});
}
"#;
        assert_eq!(fired(src, Rule::GuardAcrossBlocking), vec![]);
    }

    #[test]
    fn guard_across_wal_commit_fires() {
        let src = r#"
pub fn flush(s: &S, b: &B) {
    let g = s.state.lock();
    b.commit();
    drop(g);
}
"#;
        assert_eq!(fired(src, Rule::GuardAcrossBlocking), vec![(4, 7)]);
        // `commit()` without a `begin()` is the caller's transaction —
        // no leak reported here.
        assert_eq!(fired(src, Rule::TxnLeak), vec![]);
    }

    #[test]
    fn substrate_policy_skips_guard_rule() {
        let src = r#"
pub fn flush(s: &S, b: &B) {
    let g = s.state.lock();
    b.commit();
    drop(g);
}
"#;
        let f = scan_file("x.rs", src, FilePolicy { substrate: true, ..FilePolicy::default() });
        assert!(f.iter().all(|f| f.rule != Rule::GuardAcrossBlocking));
    }

    #[test]
    fn loop_with_an_unpolled_continue_path_fires() {
        let src = r#"
pub fn worker(pool: &P, t: &T, flag: bool) {
    pool.try_run_stealing_cancellable(|| {}, t);
    let mut i = 0;
    while i < 10 {
        if flag {
            i += 2;
            continue;
        }
        t.poll_cancellable();
        i += 1;
    }
}
"#;
        assert_eq!(fired(src, Rule::LoopCancelPoll), vec![(5, 5)]);
    }

    #[test]
    fn loop_polling_through_a_helper_is_clean() {
        let src = r#"
fn poll_budget(t: &T) -> bool {
    t.is_cancelled()
}
pub fn worker(pool: &P, t: &T) {
    pool.try_run_stealing_cancellable(|| {}, t);
    loop {
        if poll_budget(t) {
            break;
        }
    }
}
"#;
        assert_eq!(fired(src, Rule::LoopCancelPoll), vec![]);
    }

    #[test]
    fn loop_in_undispatched_function_is_exempt() {
        let src = r#"
pub fn local_spin(mut n: u8) -> u8 {
    while n < 10 {
        n += 1;
    }
    n
}
"#;
        assert_eq!(fired(src, Rule::LoopCancelPoll), vec![]);
    }
}
