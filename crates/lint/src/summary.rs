//! Phase one of the analysis: reduce each source file — independently
//! of every other file — to a self-contained [`FileSummary`].
//!
//! The summary carries two kinds of material. The *local* findings
//! (per-token rules, L4, crate attributes) are final: they never
//! change whatever the rest of the workspace looks like. The *effect*
//! material (per-function lock acquisitions, call sites, blocking
//! sites, pool dispatches, CFGs, plus the file's import/re-export
//! surface) is raw input for [`crate::interproc`], which links every
//! file's summary into a workspace-wide call graph and runs the
//! cross-crate rules over it.
//!
//! Because `summarize` reads nothing but its own file, the phase is
//! embarrassingly parallel (see `par.rs`) and its output is cacheable
//! by content fingerprint (see `cache.rs`): a warm run re-summarizes
//! only edited files and re-links from cache.

use crate::cfg::{self, Cfg};
use crate::graph;
use crate::lexer::{self, ident_at, in_test, is_ident, is_punct, AllowMarker, LineIndex};
use crate::rules::{self, FileCtx, FilePolicy, Finding, LocalSink, SourceFile};
use std::collections::BTreeSet;

/// Bumped whenever the summary structure or its serialized form
/// changes; part of the content fingerprint, so a stale cache entry
/// from an older lint can never be deserialized.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// One lock acquisition: the lock's name, the byte offset of the
/// site, and the byte offset of the last token at which the guard is
/// still held.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AcqS {
    pub lock: String,
    pub off: usize,
    pub until_off: usize,
}

/// One unresolved call site (shape per [`graph::call_shape_at`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CallS {
    pub name: String,
    pub qual: Vec<String>,
    pub method: bool,
    pub off: usize,
}

/// The raw return-type facts of one function, resolved against the
/// workspace `*Error` enum set at link time (L8).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FnReturn {
    pub name: String,
    /// `*Error`-suffixed idents in the return region, in order.
    pub err_idents: Vec<String>,
    /// Returns a bare (crate-alias) `Result<..>`.
    pub bare_result: bool,
    /// Returns `teleios_<crate>::Result<..>` — the crate.
    pub qualified_crate: Option<String>,
}

/// How a candidate L8 site discards its `Result`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SwallowKind {
    LetUnderscore,
    OkDiscard,
}

/// A candidate L8 site, judged against the workspace return index at
/// link time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SwallowCand {
    pub kind: SwallowKind,
    pub off: usize,
    pub callee: String,
}

/// Everything the interprocedural rules need to know about one
/// function without re-reading its source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FnEffects {
    pub name: String,
    /// Defined inside a `#[cfg(test)]` region — exempt from every
    /// rule and never a call-resolution target.
    pub is_test: bool,
    pub acqs: Vec<AcqS>,
    pub calls: Vec<CallS>,
    /// Raw blocking sites in the narrow L7 vocabulary, as
    /// `(description, byte offset)` in token order.
    pub l7_blocks: Vec<(String, usize)>,
    /// Pool-dispatch sites, as `(method name, byte offset)`.
    pub dispatches: Vec<(String, usize)>,
    /// Control-flow graph of the body (absent for trait declarations
    /// and test functions).
    pub cfg: Option<Cfg>,
}

/// The complete analysis product of one file. Owns everything —
/// serializable to the summary cache and safe to move across the
/// worker pool.
#[derive(Debug, Clone)]
pub(crate) struct FileSummary {
    pub label: String,
    pub crate_name: String,
    pub is_crate_root: bool,
    pub policy: FilePolicy,
    pub idx: LineIndex,
    /// Byte ranges of `#[cfg(test)]` regions.
    pub regions: Vec<(usize, usize)>,
    pub markers: Vec<AllowMarker>,
    /// Local findings, already filtered through this file's markers.
    pub local: Vec<Finding>,
    /// Markers consumed by local findings.
    pub used_markers: BTreeSet<usize>,
    pub swallows: Vec<SwallowCand>,
    pub error_enums: Vec<String>,
    pub type_aliases: Vec<(String, Vec<String>)>,
    pub fn_returns: Vec<FnReturn>,
    pub fns: Vec<FnEffects>,
    /// `mod x;` / `mod x { .. }` declarations — lets a
    /// module-qualified same-crate call (`wal::replay()`) resolve.
    pub mods: Vec<String>,
    /// `use` bindings: name → full path, sorted by name.
    pub imports: Vec<(String, Vec<String>)>,
    /// `pub use` re-exports in declaration order: exported name →
    /// source path.
    pub reexports: Vec<(String, Vec<String>)>,
    /// Glob-imported path prefixes (`use teleios_core::*`).
    pub globs: Vec<Vec<String>>,
    /// FNV-1a 64 over the raw source plus every workspace coordinate
    /// that feeds the analysis. Two files with equal fingerprints
    /// produce equal summaries.
    pub fingerprint: u64,
}

/// FNV-1a 64 — tiny, dependency-free, stable across platforms.
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Fingerprint of one input file: raw content plus the workspace
/// coordinates (label, crate, policy, root status) and the summary
/// format version.
pub(crate) fn fingerprint(file: &SourceFile) -> u64 {
    let mut h = Fnv::new();
    h.eat(&FORMAT_VERSION.to_le_bytes());
    h.eat(file.label.as_bytes());
    h.eat(&[0xff]);
    h.eat(file.crate_name.as_bytes());
    h.eat(&[
        0xff,
        u8::from(file.policy.substrate),
        u8::from(file.policy.bin_target),
        u8::from(file.policy.fs_doorway),
        u8::from(file.is_crate_root),
    ]);
    h.eat(file.raw.as_bytes());
    h.0
}

/// Summarize one file: run the local rules and extract the effect
/// material. Pure — reads nothing but `file`.
pub(crate) fn summarize(file: &SourceFile) -> FileSummary {
    let masked = crate::mask::mask_code(&file.raw);
    let toks = lexer::lex(&masked);
    let ctx = FileCtx {
        raw: &file.raw,
        idx: LineIndex::new(&file.raw),
        regions: lexer::test_regions(&toks),
        aliases: lexer::use_aliases(&toks),
        toks: &toks,
        policy: file.policy,
    };
    let markers = lexer::allow_markers(&file.raw, &masked);

    let mut sink = LocalSink::new(&file.label, &ctx.idx, &markers);
    rules::token_rules(&ctx, &mut sink);
    rules::error_impls(&ctx, &mut sink);
    if file.is_crate_root {
        rules::crate_attrs(&ctx, &mut sink);
    }
    let (local, used_markers) = sink.into_parts();

    let defs = graph::extract_fns(&toks);
    let mut fns: Vec<FnEffects> = defs
        .iter()
        .map(|f| {
            let name_off = toks.get(f.name_idx).map_or(0, |t| t.off);
            let body_off = f.body.map(|(o, _)| toks[o].off);
            FnEffects {
                name: f.name.clone(),
                is_test: in_test(&ctx.regions, name_off)
                    || body_off.is_some_and(|o| in_test(&ctx.regions, o)),
                acqs: Vec::new(),
                calls: Vec::new(),
                l7_blocks: Vec::new(),
                dispatches: Vec::new(),
                cfg: None,
            }
        })
        .collect();

    for i in 0..toks.len() {
        let off = toks[i].off;
        if in_test(&ctx.regions, off) {
            continue;
        }
        let Some(owner) = graph::fn_containing(&defs, i) else { continue };
        if fns[owner].is_test {
            continue;
        }
        if let Some(m) = graph::dispatch_method_at(&toks, i) {
            fns[owner].dispatches.push((m.to_string(), off));
        }
        if let Some((boff, desc)) = graph::direct_block_at(&ctx, i) {
            fns[owner].l7_blocks.push((desc.to_string(), boff));
        }
        if let Some((lock, aoff, until_off)) = graph::acq_at(&toks, i) {
            fns[owner].acqs.push(AcqS { lock, off: aoff, until_off });
        }
        // The dispatch method ident itself is not an ordinary call —
        // it is already recorded as a dispatch.
        if graph::dispatch_call_ident(&toks, i) {
            continue;
        }
        if let Some(s) = graph::call_shape_at(&toks, i) {
            fns[owner].calls.push(CallS { name: s.name, qual: s.qual, method: s.method, off });
        }
    }
    for (k, f) in defs.iter().enumerate() {
        if fns[k].is_test {
            continue;
        }
        if let Some(body) = f.body {
            fns[k].cfg = Some(cfg::build(&ctx, body));
        }
    }

    let fn_returns: Vec<FnReturn> =
        defs.iter().filter_map(|f| rules::fn_return_raw(&ctx, f)).collect();

    let mut mods = Vec::new();
    for i in 0..toks.len() {
        if is_ident(&toks, i, "mod")
            && (is_punct(&toks, i + 2, b';') || is_punct(&toks, i + 2, b'{'))
        {
            if let Some(name) = ident_at(&toks, i + 1) {
                mods.push(name.to_string());
            }
        }
    }

    let error_enums = rules::collect_error_enums(&ctx);
    let type_aliases = rules::collect_type_aliases(&ctx);
    let swallows = rules::swallow_candidates(&ctx);
    let mut imports: Vec<(String, Vec<String>)> =
        ctx.aliases.entries().map(|(k, v)| (k.clone(), v.clone())).collect();
    imports.sort();
    let reexports = ctx.aliases.reexports().to_vec();
    let globs = ctx.aliases.globs().to_vec();
    let FileCtx { idx, regions, .. } = ctx;

    FileSummary {
        label: file.label.clone(),
        crate_name: file.crate_name.clone(),
        is_crate_root: file.is_crate_root,
        policy: file.policy,
        idx,
        regions,
        markers,
        local,
        used_markers,
        swallows,
        error_enums,
        type_aliases,
        fn_returns,
        fns,
        mods,
        imports,
        reexports,
        globs,
        fingerprint: fingerprint(file),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            label: "crates/x/src/lib.rs".to_string(),
            raw: src.to_string(),
            crate_name: "x".to_string(),
            is_crate_root: false,
            policy: FilePolicy::default(),
        }
    }

    #[test]
    fn effects_cover_locks_calls_blocks_and_dispatches() {
        let src = "\
fn work(s: &S, pool: &P, rx: &R) {
    let g = s.meta.lock();
    helper();
    drop(g);
    pool.try_run_bounded(2, || {});
    let _m = rx.recv();
    wal::replay();
}
mod wal;
";
        let sum = summarize(&file(src));
        assert_eq!(sum.fns.len(), 1);
        let f = &sum.fns[0];
        assert_eq!(f.name, "work");
        assert!(!f.is_test);
        assert_eq!(f.acqs.len(), 1);
        assert_eq!(f.acqs[0].lock, "meta");
        assert_eq!(f.dispatches, vec![("try_run_bounded".to_string(), src.find(".try_run").unwrap())]);
        assert_eq!(f.l7_blocks.len(), 1);
        assert!(f.l7_blocks[0].0.contains("recv"));
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"replay"), "{names:?}");
        assert!(!names.contains(&"try_run_bounded"), "{names:?}");
        assert_eq!(sum.mods, vec!["wal".to_string()]);
        assert!(f.cfg.is_some());
    }

    #[test]
    fn test_functions_are_marked_and_contribute_no_effects() {
        let src = "\
fn lib_side() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
";
        let sum = summarize(&file(src));
        assert_eq!(sum.fns.len(), 2);
        assert!(!sum.fns[0].is_test);
        assert!(sum.fns[1].is_test);
        assert!(sum.fns[1].l7_blocks.is_empty());
        assert!(sum.fns[1].cfg.is_none());
        assert!(sum.local.is_empty());
    }

    #[test]
    fn fingerprint_tracks_content_and_coordinates() {
        let a = file("fn f() {}\n");
        assert_eq!(summarize(&a).fingerprint, fingerprint(&a));
        let mut b = a.clone();
        b.raw.push(' ');
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let mut c = a.clone();
        c.crate_name = "y".to_string();
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let mut d = a.clone();
        d.policy.substrate = true;
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn import_surface_is_sorted_and_complete() {
        let src = "\
use teleios_core::geom::{Point as P, Rect};
pub use crate::inner::thing;
use teleios_store::*;
fn f() {}
";
        let sum = summarize(&file(src));
        let names: Vec<&str> = sum.imports.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["P", "Rect", "thing"]);
        assert_eq!(sum.reexports.len(), 1);
        assert_eq!(sum.reexports[0].0, "thing");
        assert_eq!(sum.globs, vec![vec!["teleios_store".to_string()]]);
    }
}
