//! Machine-readable output rendering, shared by the CLI and tests.
//!
//! JSON strings escape quotes, backslashes, and all control
//! characters (so a finding whose message quotes source text — or a
//! path with unusual bytes — can never emit invalid JSON); GitHub
//! workflow-command properties and messages use the `%`-encoding the
//! Actions runner expects for `%`, `\r`, `\n` (plus `:`/`,` in
//! properties).

use crate::rules::Finding;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The findings as a JSON array (`[]` when empty) — one object per
/// finding with `path`/`line`/`col`/`rule`/`severity`/`message`.
pub fn to_json(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "[]".to_string();
    }
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.path),
                f.line,
                f.col,
                f.rule.name(),
                f.severity(),
                json_escape(&f.msg)
            )
        })
        .collect();
    format!("[\n{}\n]", rows.join(",\n"))
}

/// Escape a workflow-command message (data after `::`).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escape a workflow-command property value (`file=`, `title=`, …).
fn github_escape_property(s: &str) -> String {
    github_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// One GitHub workflow annotation command — rendered inline on the PR
/// diff when printed from a CI step.
pub fn github_annotation(f: &Finding) -> String {
    format!(
        "::{} file={},line={},col={},title=teleios-lint {}::{}",
        f.severity(),
        github_escape_property(&f.path),
        f.line,
        f.col,
        f.rule.name(),
        github_escape_data(&f.msg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(path: &str, msg: &str) -> Finding {
        Finding {
            path: path.to_string(),
            line: 3,
            col: 7,
            rule: Rule::NoPanic,
            msg: msg.to_string(),
        }
    }

    #[test]
    fn json_escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("a\nb\tc\r"), r"a\nb\tc\r");
        assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_array_shape_and_content() {
        assert_eq!(to_json(&[]), "[]");
        let out = to_json(&[finding("crates\\x\\src/lib.rs", "uses \"quotes\"")]);
        assert!(out.starts_with("[\n"));
        assert!(out.ends_with("\n]"));
        assert!(out.contains(r#""path":"crates\\x\\src/lib.rs""#), "{out}");
        assert!(out.contains(r#""message":"uses \"quotes\"""#), "{out}");
        assert!(out.contains(r#""rule":"no-panic""#));
        assert!(out.contains(r#""severity":"error""#));
        assert!(out.contains(r#""line":3"#));
        assert!(out.contains(r#""col":7"#));
    }

    #[test]
    fn json_rows_join_with_commas() {
        let out = to_json(&[finding("a.rs", "one"), finding("b.rs", "two")]);
        assert_eq!(out.matches("},\n").count(), 1, "{out}");
    }

    #[test]
    fn github_annotation_escapes_message_and_path() {
        let out = github_annotation(&finding("a.rs", "50% done\nnext"));
        assert_eq!(
            out,
            "::error file=a.rs,line=3,col=7,title=teleios-lint no-panic::50%25 done%0Anext"
        );
        let out = github_annotation(&finding("odd,name:x.rs", "m"));
        assert!(out.contains("file=odd%2Cname%3Ax.rs"), "{out}");
    }
}
