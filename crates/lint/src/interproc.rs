//! Phase two: link every file's [`FileSummary`] into a workspace-wide
//! call graph and run the interprocedural concurrency rules over it.
//!
//! Resolution works bottom-up over the crate-dependency graph. The
//! graph is condensed with Tarjan's SCC algorithm — dependency cycles
//! (legal between dev-dependencies, and deliberately present in the
//! self-test fixture workspace) get a fixpoint iteration inside the
//! component, so facts converge even when crate A's helper calls into
//! crate B and back.
//!
//! A call site resolves to workspace `fn` items through, in order:
//! `crate::`/`self::`/`super::` paths, the file's `use`-alias map
//! (one hop — a `std` import is exclusive and ends resolution), the
//! caller crate's own `mod` declarations, and finally crate names
//! (`teleios_store::open` and, for fixture workspaces, plain member
//! names). `pub use` re-export chains are chased through facade
//! crates with a cycle guard. Method calls resolve by name within the
//! caller's crate first, then — excluding ubiquitous std method names
//! — to a unique hit in the crate's dependency closure.
//!
//! The facts computed over the linked graph:
//!
//! - **polls**: does a function transitively reach a `CancelToken`
//!   poll? (feeds L12 and the CFG call resolution);
//! - **may-block**: the first blocking primitive a function can reach
//!   (feeds L11's cross-crate call verdicts);
//! - **lock sets**: every lock a call into a function may acquire
//!   (feeds the workspace lock-order graph, L6);
//! - **L7 blocking sites**: the raw sleep/recv a pool-dispatched
//!   task can reach, with the call chain for the diagnostic.

use crate::cfg::{self, CallVerdict, Event};
use crate::rules::{Diagnostics, Rule};
use crate::summary::FileSummary;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// `(file index, fn index)` — one function in the analyzed set.
type FnKey = (usize, usize);

/// Path segments that never name a workspace member, even when a
/// member shares the name (`teleios-core` vs `::core`).
const EXCLUDED_SEGS: [&str; 6] = ["std", "core", "alloc", "crate", "self", "super"];

const POLLS: [&str; 3] = ["is_cancelled", "poll_cancellable", "sleep_cancellable"];

/// The dispatch methods that hand the task a `CancelToken` — only
/// their paths owe L12 an iteration-wise poll.
const CANCELLABLE_DISPATCHES: [&str; 2] =
    ["try_run_bounded_cancellable", "try_run_stealing_cancellable"];

/// Ubiquitous std/collection method names: a `.len()` in crate A must
/// not resolve to some crate B's `fn len` just because B is the only
/// dependency defining one. Same-crate resolution is checked first
/// and is not subject to this list.
const METHOD_COMMON: [&str; 64] = [
    "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str", "borrow",
    "borrow_mut", "chain", "chars", "clear", "clone", "cloned", "cmp", "collect", "contains",
    "contains_key", "count", "drain", "entry", "enumerate", "eq", "extend", "filter", "find",
    "first", "flatten", "flush", "fmt", "fold", "get", "get_mut", "insert", "into_iter", "is_empty",
    "iter", "iter_mut", "join", "keys", "last", "len", "map", "max", "min", "next", "parse",
    "position", "push", "push_str", "remove", "retain", "rev", "send", "sort", "split", "sum",
    "take", "to_owned", "to_string", "to_vec", "values", "zip",
];

/// Run the interprocedural rules (L6, L7, and the path-sensitive
/// L10/L11/L12) over the linked summaries, recording per-rule
/// wall-clock into `phases` for `--timings`.
pub(crate) fn link_rules(
    sums: &[FileSummary],
    diag: &mut Diagnostics,
    phases: &mut Vec<(&'static str, u128)>,
) {
    let t = std::time::Instant::now();
    let lk = Linker::new(sums);
    phases.push(("link:graph-build", t.elapsed().as_micros()));
    let t = std::time::Instant::now();
    lk.lock_order(diag);
    phases.push(("link:lock-order", t.elapsed().as_micros()));
    let t = std::time::Instant::now();
    lk.cancel_safety(diag);
    phases.push(("link:cancel-safety", t.elapsed().as_micros()));
    let t = std::time::Instant::now();
    lk.flow_rules(diag);
    phases.push(("link:flow-rules", t.elapsed().as_micros()));
}

struct Linker<'a> {
    sums: &'a [FileSummary],
    members: BTreeSet<&'a str>,
    /// crate → fn name → definitions (non-test only).
    fns_by_crate: HashMap<&'a str, HashMap<&'a str, Vec<FnKey>>>,
    /// crate → exported name → source path (first declaration wins).
    reexports: HashMap<&'a str, HashMap<&'a str, &'a [String]>>,
    /// per file: `use` binding → full path.
    imports: Vec<HashMap<&'a str, &'a [String]>>,
    /// crate → its `mod` declarations.
    mods: HashMap<&'a str, BTreeSet<&'a str>>,
    /// transitive dependency closure per crate.
    dep_closure: HashMap<&'a str, BTreeSet<&'a str>>,
    /// SCCs of the crate graph, dependencies-first.
    sccs: Vec<Vec<&'a str>>,
    /// per non-test fn: resolved targets of each summary call site,
    /// aligned with `FnEffects::calls`.
    resolved: HashMap<FnKey, Vec<Vec<FnKey>>>,
    /// fns that transitively poll the CancelToken.
    polls: HashSet<FnKey>,
    /// fn → the first blocking primitive it can reach, if any.
    any_block: HashMap<FnKey, Option<String>>,
}

impl<'a> Linker<'a> {
    fn new(sums: &'a [FileSummary]) -> Linker<'a> {
        let members: BTreeSet<&str> = sums.iter().map(|s| s.crate_name.as_str()).collect();

        let mut fns_by_crate: HashMap<&str, HashMap<&str, Vec<FnKey>>> = HashMap::new();
        for (fi, s) in sums.iter().enumerate() {
            for (k, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                fns_by_crate
                    .entry(s.crate_name.as_str())
                    .or_default()
                    .entry(f.name.as_str())
                    .or_default()
                    .push((fi, k));
            }
        }

        let mut reexports: HashMap<&str, HashMap<&str, &[String]>> = HashMap::new();
        let mut mods: HashMap<&str, BTreeSet<&str>> = HashMap::new();
        let mut imports: Vec<HashMap<&str, &[String]>> = Vec::with_capacity(sums.len());
        for s in sums {
            let c = s.crate_name.as_str();
            let re = reexports.entry(c).or_default();
            for (name, path) in &s.reexports {
                re.entry(name.as_str()).or_insert(path.as_slice());
            }
            mods.entry(c).or_default().extend(s.mods.iter().map(String::as_str));
            imports.push(
                s.imports.iter().map(|(k, v)| (k.as_str(), v.as_slice())).collect(),
            );
        }

        let mut deps: BTreeMap<&str, BTreeSet<&str>> =
            members.iter().map(|&m| (m, BTreeSet::new())).collect();
        for s in sums {
            let c = s.crate_name.as_str();
            let mut firsts: Vec<&str> = Vec::new();
            for (_, path) in &s.imports {
                firsts.extend(path.first().map(String::as_str));
            }
            for path in &s.globs {
                firsts.extend(path.first().map(String::as_str));
            }
            for (_, path) in &s.reexports {
                firsts.extend(path.first().map(String::as_str));
            }
            for f in &s.fns {
                for call in &f.calls {
                    firsts.extend(call.qual.first().map(String::as_str));
                }
            }
            for r in &s.fn_returns {
                if let Some(qc) = &r.qualified_crate {
                    if let Some(&m) = members.get(qc.as_str()) {
                        firsts.push(m);
                    }
                }
            }
            if let Some(d) = deps.get_mut(c) {
                for seg in firsts {
                    if let Some(m) = member_of(&members, seg) {
                        if m != c {
                            d.insert(m);
                        }
                    }
                }
            }
        }

        let mut dep_closure: HashMap<&str, BTreeSet<&str>> = HashMap::new();
        for &m in &members {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![m];
            while let Some(n) = stack.pop() {
                for &d in deps.get(n).into_iter().flatten() {
                    if seen.insert(d) {
                        stack.push(d);
                    }
                }
            }
            dep_closure.insert(m, seen);
        }

        let sccs = tarjan_sccs(&members, &deps);

        let mut lk = Linker {
            sums,
            members,
            fns_by_crate,
            reexports,
            imports,
            mods,
            dep_closure,
            sccs,
            resolved: HashMap::new(),
            polls: HashSet::new(),
            any_block: HashMap::new(),
        };
        lk.precompute_resolutions();
        lk.compute_polls();
        lk.compute_any_block();
        lk
    }

    // -----------------------------------------------------------
    // Name resolution
    // -----------------------------------------------------------

    /// The workspace crate a bare path segment names from `fi`'s
    /// scope, if any.
    fn crate_of_seg(&self, fi: usize, seg: &str) -> Option<&'a str> {
        let caller = self.sums[fi].crate_name.as_str();
        if matches!(seg, "crate" | "self" | "super") {
            return Some(caller);
        }
        if let Some(path) = self.imports[fi].get(seg) {
            return match path.first().map(String::as_str) {
                Some("crate" | "self" | "super") => Some(caller),
                Some(first) => member_of(&self.members, first),
                // A `std`/external import is exclusive: the name is
                // taken, and it is not ours.
                None => None,
            };
        }
        if self.mods.get(caller).is_some_and(|m| m.contains(seg)) {
            return Some(caller);
        }
        member_of(&self.members, seg)
    }

    /// Definitions of `name` in `krate`, chasing `pub use` re-export
    /// chains through facades (with a cycle guard).
    fn lookup_fn(&self, krate: &'a str, name: &str) -> Vec<FnKey> {
        let mut seen: HashSet<(&str, String)> = HashSet::new();
        self.lookup_inner(krate, name, &mut seen)
    }

    fn lookup_inner(
        &self,
        krate: &'a str,
        name: &str,
        seen: &mut HashSet<(&'a str, String)>,
    ) -> Vec<FnKey> {
        if let Some(v) = self.fns_by_crate.get(krate).and_then(|m| m.get(name)) {
            return v.clone();
        }
        if !seen.insert((krate, name.to_string())) {
            return Vec::new();
        }
        if let Some(path) = self.reexports.get(krate).and_then(|m| m.get(name)) {
            let target = match path.first().map(String::as_str) {
                Some("crate" | "self" | "super") | None => krate,
                // `pub use inner::thing` (module-relative) stays in
                // this crate; `pub use teleios_store::open` hops.
                Some(first) => member_of(&self.members, first).unwrap_or(krate),
            };
            let real = path.last().map_or(name, String::as_str);
            return self.lookup_inner(target, real, seen);
        }
        Vec::new()
    }

    /// Workspace definitions a call site may land on. Empty when the
    /// call is external (std) or unresolvable from tokens.
    fn resolve(&self, fi: usize, name: &str, qual: &[String], method: bool) -> Vec<FnKey> {
        let caller = self.sums[fi].crate_name.as_str();
        if method {
            let v = self.lookup_fn(caller, name);
            if !v.is_empty() {
                return v;
            }
            if METHOD_COMMON.contains(&name) {
                return Vec::new();
            }
            // A unique hit in the dependency closure resolves;
            // ambiguity (or no hit) stays unresolved.
            let mut hit: Option<Vec<FnKey>> = None;
            for &dep in self.dep_closure.get(caller).into_iter().flatten() {
                if dep == caller {
                    continue;
                }
                let v = self.lookup_fn(dep, name);
                if !v.is_empty() {
                    if hit.is_some() {
                        return Vec::new();
                    }
                    hit = Some(v);
                }
            }
            return hit.unwrap_or_default();
        }
        if qual.is_empty() {
            if let Some(path) = self.imports[fi].get(name) {
                let target = match path.first().map(String::as_str) {
                    Some("crate" | "self" | "super") => Some(caller),
                    Some(first) => member_of(&self.members, first),
                    None => None,
                };
                // The import is exclusive: a std binding ends
                // resolution even though the name matches nothing.
                return match target {
                    Some(t) => {
                        let real = path.last().map_or(name, String::as_str);
                        self.lookup_fn(t, real)
                    }
                    None => Vec::new(),
                };
            }
            let v = self.lookup_fn(caller, name);
            if !v.is_empty() {
                return v;
            }
            for g in &self.sums[fi].globs {
                if let Some(first) = g.first() {
                    if let Some(m) = member_of(&self.members, first) {
                        let v = self.lookup_fn(m, name);
                        if !v.is_empty() {
                            return v;
                        }
                    }
                }
            }
            return Vec::new();
        }
        match self.crate_of_seg(fi, &qual[0]) {
            Some(t) => self.lookup_fn(t, name),
            None => Vec::new(),
        }
    }

    fn precompute_resolutions(&mut self) {
        let mut resolved: HashMap<FnKey, Vec<Vec<FnKey>>> = HashMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            for (k, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let targets = f
                    .calls
                    .iter()
                    .map(|c| self.resolve(fi, &c.name, &c.qual, c.method))
                    .collect();
                resolved.insert((fi, k), targets);
            }
        }
        self.resolved = resolved;
    }

    // -----------------------------------------------------------
    // Facts
    // -----------------------------------------------------------

    /// Which fns transitively poll the CancelToken: seeded from
    /// direct poll calls, closed bottom-up over the crate SCCs (with
    /// a fixpoint inside each component), then a final global sweep
    /// in case resolution produced an edge outside the declared
    /// dependency graph.
    fn compute_polls(&mut self) {
        let mut polls: HashSet<FnKey> = HashSet::new();
        let mut by_crate: HashMap<&str, Vec<FnKey>> = HashMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            for (k, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_crate.entry(s.crate_name.as_str()).or_default().push((fi, k));
                if f.calls.iter().any(|c| POLLS.contains(&c.name.as_str())) {
                    polls.insert((fi, k));
                }
            }
        }
        let sweep = |keys: &[FnKey], polls: &mut HashSet<FnKey>| loop {
            let mut changed = false;
            for &key in keys {
                if polls.contains(&key) {
                    continue;
                }
                let reaches = self
                    .resolved
                    .get(&key)
                    .is_some_and(|ts| ts.iter().flatten().any(|t| polls.contains(t)));
                if reaches {
                    polls.insert(key);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        };
        for scc in &self.sccs {
            let keys: Vec<FnKey> = scc
                .iter()
                .flat_map(|c| by_crate.get(c).into_iter().flatten())
                .copied()
                .collect();
            sweep(&keys, &mut polls);
        }
        let all: Vec<FnKey> = {
            let mut v: Vec<FnKey> = by_crate.values().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        sweep(&all, &mut polls);
        self.polls = polls;
    }

    /// Precompute the may-block fact for every fn (memoized DFS;
    /// cycles resolve to "no" — the false-negative bias every lint
    /// rule here shares).
    fn compute_any_block(&mut self) {
        let mut memo: HashMap<FnKey, Option<String>> = HashMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            for k in 0..s.fns.len() {
                let mut visiting = HashSet::new();
                self.any_block_of((fi, k), &mut memo, &mut visiting);
            }
        }
        self.any_block = memo;
    }

    fn any_block_of(
        &self,
        key: FnKey,
        memo: &mut HashMap<FnKey, Option<String>>,
        visiting: &mut HashSet<FnKey>,
    ) -> Option<String> {
        if let Some(m) = memo.get(&key) {
            return m.clone();
        }
        if !visiting.insert(key) {
            return None;
        }
        let (fi, k) = key;
        let f = &self.sums[fi].fns[k];
        let mut result: Option<String> = None;
        // The substrate blocks by design; calling into it is only a
        // finding when the call is itself a dispatch (a direct
        // Blocking event), not for its internals.
        if !self.sums[fi].policy.substrate && !f.is_test {
            if let Some(cfg) = &f.cfg {
                'outer: for b in &cfg.blocks {
                    for ev in &b.events {
                        match ev {
                            Event::Blocking { desc, .. } => {
                                result = Some(desc.clone());
                                break 'outer;
                            }
                            Event::Call { name, qual, method, .. } => {
                                for t in self.resolve(fi, name, qual, *method) {
                                    if let Some(inner) = self.any_block_of(t, memo, visiting) {
                                        result = Some(inner);
                                        break 'outer;
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        visiting.remove(&key);
        memo.insert(key, result.clone());
        result
    }

    // -----------------------------------------------------------
    // L6 lock-order — the workspace lock-acquisition graph
    // -----------------------------------------------------------

    /// Transitive closure of the lock names `key`'s function may
    /// acquire, each with a representative `(file, byte offset)`
    /// site.
    fn locks_of(
        &self,
        key: FnKey,
        memo: &mut HashMap<FnKey, BTreeMap<String, (usize, usize)>>,
        visiting: &mut HashSet<FnKey>,
    ) -> BTreeMap<String, (usize, usize)> {
        if let Some(m) = memo.get(&key) {
            return m.clone();
        }
        if !visiting.insert(key) {
            return BTreeMap::new();
        }
        let (fi, k) = key;
        let f = &self.sums[fi].fns[k];
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for a in &f.acqs {
            out.entry(a.lock.clone()).or_insert((fi, a.off));
        }
        if let Some(res) = self.resolved.get(&key) {
            for ts in res {
                for &t in ts {
                    for (n, site) in self.locks_of(t, memo, visiting) {
                        out.entry(n).or_insert(site);
                    }
                }
            }
        }
        visiting.remove(&key);
        memo.insert(key, out.clone());
        out
    }

    /// L6 — build the workspace lock-acquisition graph (edges through
    /// same-crate *and* cross-crate calls) and report every distinct
    /// cycle with `file:line` for each edge.
    fn lock_order(&self, diag: &mut Diagnostics) {
        let mut memo: HashMap<FnKey, BTreeMap<String, (usize, usize)>> = HashMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            for (k, f) in s.fns.iter().enumerate() {
                if !f.is_test {
                    let mut visiting = HashSet::new();
                    self.locks_of((fi, k), &mut memo, &mut visiting);
                }
            }
        }
        // Edges: lock A held while lock B is acquired (directly, or
        // inside a call made while A is held, wherever it resolves).
        let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            for (k, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                for a in &f.acqs {
                    for b in &f.acqs {
                        if b.off > a.off && b.off <= a.until_off && b.lock != a.lock {
                            edges
                                .entry((a.lock.clone(), b.lock.clone()))
                                .or_insert((fi, b.off));
                        }
                    }
                    let Some(res) = self.resolved.get(&(fi, k)) else { continue };
                    for (ci, c) in f.calls.iter().enumerate() {
                        if c.off > a.off && c.off <= a.until_off {
                            for t in &res[ci] {
                                if let Some(locks) = memo.get(t) {
                                    for (lname, &site) in locks {
                                        if *lname != a.lock {
                                            edges
                                                .entry((a.lock.clone(), lname.clone()))
                                                .or_insert(site);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Cycle detection and reporting, one finding per node set.
        let adj: BTreeMap<&str, BTreeSet<&str>> = {
            let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                m.entry(a.as_str()).or_default().insert(b.as_str());
            }
            m
        };
        let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
        for (a, b) in edges.keys() {
            let Some(path) = bfs_path(&adj, b, a) else { continue };
            let mut seq: Vec<&str> = vec![a.as_str()];
            seq.extend(path.iter().copied());
            let nodes: BTreeSet<String> = seq.iter().map(|s| s.to_string()).collect();
            if !reported.insert(nodes) {
                continue;
            }
            let desc = seq
                .windows(2)
                .map(|w| match edges.get(&(w[0].to_string(), w[1].to_string())) {
                    Some(&(efi, eoff)) => {
                        let (line, _) = self.sums[efi].idx.line_col(eoff);
                        format!("{} -> {} ({}:{})", w[0], w[1], self.sums[efi].label, line)
                    }
                    None => format!("{} -> {}", w[0], w[1]),
                })
                .collect::<Vec<_>>()
                .join(", ");
            let &(afi, aoff) = &edges[&(a.clone(), b.clone())];
            let msg =
                format!("lock-order cycle: {desc} — acquire these locks in one global order");
            diag.emit(&self.sums[afi], afi, aoff, Rule::LockOrder, msg);
        }
    }

    // -----------------------------------------------------------
    // L7 cancel-safety — across crate boundaries
    // -----------------------------------------------------------

    /// First raw blocking call reachable from `key`'s function
    /// through resolved calls, if any.
    fn blocks_in(
        &self,
        key: FnKey,
        memo: &mut HashMap<FnKey, Option<Site>>,
        visiting: &mut HashSet<FnKey>,
    ) -> Option<Site> {
        if let Some(m) = memo.get(&key) {
            return m.clone();
        }
        if !visiting.insert(key) {
            return None;
        }
        let (fi, k) = key;
        let f = &self.sums[fi].fns[k];
        let mut result: Option<Site> = None;
        if !self.sums[fi].policy.substrate && !f.is_test {
            if let Some((desc, off)) = f.l7_blocks.first() {
                result = Some(Site {
                    fi,
                    off: *off,
                    desc: desc.clone(),
                    chain: vec![f.name.clone()],
                });
            }
            if result.is_none() {
                if let Some(res) = self.resolved.get(&key) {
                    'calls: for (ci, ts) in res.iter().enumerate() {
                        if f.calls[ci].name == f.name {
                            continue;
                        }
                        for &t in ts {
                            if let Some(mut s) = self.blocks_in(t, memo, visiting) {
                                s.chain.insert(0, f.name.clone());
                                result = Some(s);
                                break 'calls;
                            }
                        }
                    }
                }
            }
        }
        visiting.remove(&key);
        memo.insert(key, result.clone());
        result
    }

    /// L7 — closures handed to pool dispatch must not reach raw
    /// blocking calls, followed through the workspace call graph; the
    /// cancellable doorways (`sleep_cancellable`, `poll_cancellable`)
    /// are the sanctioned ways to wait. Task closures are routinely
    /// built into a Vec before the dispatch call, so the whole
    /// dispatching function is the scope that must stay non-blocking.
    fn cancel_safety(&self, diag: &mut Diagnostics) {
        let mut memo: HashMap<FnKey, Option<Site>> = HashMap::new();
        let mut emitted: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut dispatchers: BTreeMap<FnKey, &str> = BTreeMap::new();
        for (fi, s) in self.sums.iter().enumerate() {
            // The substrate owns its threads and blocks on purpose.
            if s.policy.substrate {
                continue;
            }
            for (k, f) in s.fns.iter().enumerate() {
                if !f.is_test && !f.dispatches.is_empty() {
                    dispatchers.insert((fi, k), f.name.as_str());
                }
            }
        }
        for (&(fi, k), &entry) in &dispatchers {
            let f = &self.sums[fi].fns[k];
            let Some(res) = self.resolved.get(&(fi, k)) else { continue };
            // Walk blocking sites and calls in token order, as they
            // appear in the dispatching function's body.
            let (mut bi, mut ci) = (0usize, 0usize);
            while bi < f.l7_blocks.len() || ci < f.calls.len() {
                let take_block = ci >= f.calls.len()
                    || (bi < f.l7_blocks.len() && f.l7_blocks[bi].1 <= f.calls[ci].off);
                if take_block {
                    let (desc, off) = &f.l7_blocks[bi];
                    bi += 1;
                    report_l7(self.sums, fi, *off, desc, entry, &[], &mut emitted, diag);
                } else {
                    for &t in &res[ci] {
                        let mut visiting = HashSet::new();
                        if let Some(site) = self.blocks_in(t, &mut memo, &mut visiting) {
                            report_l7(
                                self.sums, site.fi, site.off, &site.desc, entry, &site.chain,
                                &mut emitted, diag,
                            );
                        }
                    }
                    ci += 1;
                }
            }
        }
    }

    // -----------------------------------------------------------
    // The path-sensitive rules (L10/L11/L12) over resolved CFGs
    // -----------------------------------------------------------

    /// Functions on a cancellable-dispatched path: every function
    /// containing a `*_cancellable` dispatch site, plus (transitively)
    /// every workspace function they call. Maps the fn to the
    /// dispatcher's name for the diagnostic.
    fn dispatch_reach(&self) -> HashMap<FnKey, &'a str> {
        let mut reach: HashMap<FnKey, &str> = HashMap::new();
        let mut queue: VecDeque<FnKey> = VecDeque::new();
        for (fi, s) in self.sums.iter().enumerate() {
            if s.policy.substrate {
                continue;
            }
            for (k, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                if f.dispatches.iter().any(|(m, _)| CANCELLABLE_DISPATCHES.contains(&m.as_str()))
                    && reach.insert((fi, k), f.name.as_str()).is_none()
                {
                    queue.push_back((fi, k));
                }
            }
        }
        while let Some(key) = queue.pop_front() {
            let Some(&entry) = reach.get(&key) else { continue };
            let Some(res) = self.resolved.get(&key) else { continue };
            for ts in res {
                for &t in ts {
                    if self.sums[t.0].policy.substrate || self.sums[t.0].fns[t.1].is_test {
                        continue;
                    }
                    if !reach.contains_key(&t) {
                        reach.insert(t, entry);
                        queue.push_back(t);
                    }
                }
            }
        }
        reach
    }

    /// Run L10/L11/L12 over every function's CFG, with call sites
    /// resolved against the workspace facts: a call to a polling fn
    /// becomes a `Poll` event; a cross-crate call to a fn that may
    /// block becomes a `Blocking` event with the chain described.
    fn flow_rules(&self, diag: &mut Diagnostics) {
        let reach = self.dispatch_reach();
        for (fi, s) in self.sums.iter().enumerate() {
            let mut verdicts: HashMap<(String, Vec<String>, bool), CallVerdict> = HashMap::new();
            for (k, f) in s.fns.iter().enumerate() {
                let Some(cfg) = &f.cfg else { continue };
                let resolved_cfg = cfg::resolve_calls(cfg, |name, qual, method| {
                    let vkey = (name.to_string(), qual.to_vec(), method);
                    if let Some(v) = verdicts.get(&vkey) {
                        return v.clone();
                    }
                    let targets = self.resolve(fi, name, qual, method);
                    let polls = targets.iter().any(|t| self.polls.contains(t));
                    let mut block = None;
                    for t in &targets {
                        // Same-crate blocking is already visible to
                        // the CFG's own events; the summary adds what
                        // another crate would hide.
                        if self.sums[t.0].crate_name != s.crate_name {
                            if let Some(inner) = self.any_block.get(t).cloned().flatten() {
                                block = Some(format!(
                                    "a call to `{name}` that may block on {inner}"
                                ));
                                break;
                            }
                        }
                    }
                    let v = CallVerdict { polls, block };
                    verdicts.insert(vkey, v.clone());
                    v
                });
                cfg::check_txn_leak(s, fi, &resolved_cfg, diag);
                // The substrate owns raw blocking by design; its own
                // internals are outside L11/L12 (mirrors L7's policy).
                if !s.policy.substrate {
                    cfg::check_guard_blocking(s, fi, &resolved_cfg, diag);
                    if let Some(entry) = reach.get(&(fi, k)) {
                        cfg::check_loop_polls(s, fi, &resolved_cfg, &f.name, entry, diag);
                    }
                }
            }
        }
    }
}

/// One blocking call reachable from a dispatch, with the call chain
/// that reaches it.
#[derive(Clone)]
struct Site {
    fi: usize,
    off: usize,
    desc: String,
    chain: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn report_l7(
    sums: &[FileSummary],
    fi: usize,
    off: usize,
    desc: &str,
    entry: &str,
    chain: &[String],
    emitted: &mut BTreeSet<(usize, usize)>,
    diag: &mut Diagnostics,
) {
    if !emitted.insert((fi, off)) {
        return;
    }
    let via = if chain.is_empty() {
        String::new()
    } else {
        format!(" via `{}`", chain.join("` -> `"))
    };
    diag.emit(&sums[fi], fi, off, Rule::CancelSafety, format!(
        "{desc} blocks a pool-dispatched task (entered from `{entry}`{via}): wait through CancelToken::sleep_cancellable / poll_cancellable so deadlines can interrupt it"
    ));
}

/// The workspace member a path segment names: an exact member name
/// (minus the reserved std segments) or the `teleios_<member>` crate
/// form.
fn member_of<'a>(members: &BTreeSet<&'a str>, seg: &str) -> Option<&'a str> {
    if EXCLUDED_SEGS.contains(&seg) {
        return None;
    }
    if let Some(&m) = members.get(seg) {
        return Some(m);
    }
    if let Some(rest) = seg.strip_prefix("teleios_") {
        if let Some(&m) = members.get(rest) {
            return Some(m);
        }
    }
    None
}

/// Tarjan's strongly-connected components over the crate graph.
/// Edges point dependent → dependency, so components are emitted
/// dependencies-first — the bottom-up linking order.
fn tarjan_sccs<'a>(
    members: &BTreeSet<&'a str>,
    deps: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> Vec<Vec<&'a str>> {
    struct St<'a> {
        index: HashMap<&'a str, usize>,
        low: HashMap<&'a str, usize>,
        on: HashSet<&'a str>,
        stack: Vec<&'a str>,
        counter: usize,
        out: Vec<Vec<&'a str>>,
    }
    fn strong<'a>(v: &'a str, deps: &BTreeMap<&'a str, BTreeSet<&'a str>>, st: &mut St<'a>) {
        st.index.insert(v, st.counter);
        st.low.insert(v, st.counter);
        st.counter += 1;
        st.stack.push(v);
        st.on.insert(v);
        for &w in deps.get(v).into_iter().flatten() {
            if !st.index.contains_key(w) {
                strong(w, deps, st);
                let lw = st.low.get(w).copied().unwrap_or(0);
                if st.low.get(v).is_some_and(|&lv| lw < lv) {
                    st.low.insert(v, lw);
                }
            } else if st.on.contains(w) {
                let iw = st.index.get(w).copied().unwrap_or(0);
                if st.low.get(v).is_some_and(|&lv| iw < lv) {
                    st.low.insert(v, iw);
                }
            }
        }
        if st.low.get(v) == st.index.get(v) {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on.remove(w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = St {
        index: HashMap::new(),
        low: HashMap::new(),
        on: HashSet::new(),
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for &v in members {
        if !st.index.contains_key(v) {
            strong(v, deps, &mut st);
        }
    }
    st.out
}

fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    seen.insert(from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::rules::{analyze, FilePolicy, Finding, Rule, SourceFile};

    fn lib(krate: &str, src: &str) -> SourceFile {
        SourceFile {
            label: format!("crates/{krate}/src/lib.rs"),
            raw: src.to_string(),
            crate_name: krate.to_string(),
            is_crate_root: false,
            policy: FilePolicy::default(),
        }
    }

    fn hits(files: &[SourceFile], rule: Rule) -> Vec<Finding> {
        analyze(files).into_iter().filter(|f| f.rule == rule).collect()
    }

    #[test]
    fn cancel_safety_follows_calls_across_crates() {
        let alpha = lib(
            "alpha",
            "pub fn dispatch(pool: &P) {\n    pool.try_run_bounded_cancellable(4, |_t| {\n        teleios_beta::backoff();\n    });\n}",
        );
        let beta = lib(
            "beta",
            "pub fn backoff() {\n    std::thread::sleep(std::time::Duration::from_millis(5));\n}",
        );
        let f = hits(&[alpha, beta], Rule::CancelSafety);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/beta/src/lib.rs");
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("entered from `dispatch`"), "{}", f[0].msg);
        assert!(f[0].msg.contains("via `backoff`"), "{}", f[0].msg);
    }

    #[test]
    fn cancel_safety_chases_reexport_chains() {
        let alpha = lib(
            "alpha",
            "use teleios_facade::stall;\npub fn dispatch(pool: &P) {\n    pool.try_run_bounded(4, || stall());\n}",
        );
        let facade = lib("facade", "pub use teleios_beta::stall;\n");
        let beta = lib(
            "beta",
            "pub fn stall(rx: &R) {\n    let _m = rx.recv();\n}",
        );
        let f = hits(&[alpha, facade, beta], Rule::CancelSafety);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/beta/src/lib.rs");
        assert!(f[0].msg.contains("via `stall`"), "{}", f[0].msg);
    }

    #[test]
    fn lock_order_cycle_spanning_two_crates() {
        let alpha = lib(
            "alpha",
            "pub fn forward(s: &S) {\n    let ga = s.alock.lock();\n    teleios_beta::take_b(s);\n    drop(ga);\n}",
        );
        let beta = lib(
            "beta",
            "pub fn take_b(s: &S) {\n    let gb = s.block.lock();\n    drop(gb);\n}\npub fn reverse(s: &S) {\n    let gb = s.block.lock();\n    teleios_alpha::take_a(s);\n    drop(gb);\n}",
        );
        let alpha2 = SourceFile {
            label: "crates/alpha/src/extra.rs".to_string(),
            raw: "pub fn take_a(s: &S) {\n    let ga = s.alock.lock();\n    drop(ga);\n}".to_string(),
            crate_name: "alpha".to_string(),
            is_crate_root: false,
            policy: FilePolicy::default(),
        };
        let f = hits(&[alpha, beta, alpha2], Rule::LockOrder);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("alock -> block"), "{}", f[0].msg);
        assert!(f[0].msg.contains("block -> alock"), "{}", f[0].msg);
    }

    #[test]
    fn guard_across_a_cross_crate_blocking_call_fires() {
        let alpha = lib(
            "alpha",
            "pub fn persist(s: &S) {\n    let g = s.state.lock();\n    teleios_beta::sync_everything(s);\n    drop(g);\n}",
        );
        let beta = lib(
            "beta",
            "pub fn sync_everything(s: &S) {\n    s.file.sync_all();\n}",
        );
        let f = hits(&[alpha, beta], Rule::GuardAcrossBlocking);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/alpha/src/lib.rs");
        assert_eq!(f[0].line, 3);
        assert!(
            f[0].msg.contains("a call to `sync_everything` that may block on the fsync barrier"),
            "{}",
            f[0].msg
        );
    }

    #[test]
    fn loop_poll_credit_flows_across_crates() {
        // The helper crate polls; the dispatching crate's loop calls
        // it — clean. Remove the poll and the loop fires.
        let polling = lib(
            "beta",
            "pub fn poll_budget(t: &T) -> bool {\n    t.is_cancelled()\n}",
        );
        let alpha = lib(
            "alpha",
            "pub fn worker(pool: &P, t: &T) {\n    pool.try_run_stealing_cancellable(|| {}, t);\n    loop {\n        if teleios_beta::poll_budget(t) {\n            break;\n        }\n    }\n}",
        );
        assert!(hits(&[alpha.clone(), polling], Rule::LoopCancelPoll).is_empty());
        let silent = lib("beta", "pub fn poll_budget(t: &T) -> bool {\n    t.is_done()\n}");
        let f = hits(&[alpha, silent], Rule::LoopCancelPoll);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("via `worker`"), "{}", f[0].msg);
    }

    #[test]
    fn std_imports_are_exclusive_and_do_not_resolve() {
        // `take` is imported from std: the call must not resolve to
        // the workspace fn of the same name (which would block).
        let alpha = lib(
            "alpha",
            "use std::mem::take;\npub fn dispatch(pool: &P, v: &mut Vec<u8>) {\n    pool.try_run_bounded(4, || {});\n    let _v = take(v);\n}",
        );
        let beta = lib(
            "beta",
            "pub fn take(rx: &R) {\n    let _m = rx.recv();\n}",
        );
        assert!(hits(&[alpha, beta], Rule::CancelSafety).is_empty());
    }

    #[test]
    fn dependency_cycles_between_crates_still_converge() {
        // alpha calls beta, beta calls alpha — a crate-graph cycle.
        // The poll credit still propagates: gamma's loop calls into
        // alpha, which polls via beta.
        let alpha = lib(
            "alpha",
            "pub fn ping(t: &T, n: u8) -> bool {\n    teleios_beta::pong(t, n)\n}",
        );
        let beta = lib(
            "beta",
            "pub fn pong(t: &T, n: u8) -> bool {\n    if n == 0 {\n        return t.is_cancelled();\n    }\n    teleios_alpha::ping(t, n - 1)\n}",
        );
        let gamma = lib(
            "gamma",
            "pub fn worker(pool: &P, t: &T) {\n    pool.try_run_stealing_cancellable(|| {}, t);\n    loop {\n        if teleios_alpha::ping(t, 3) {\n            break;\n        }\n    }\n}",
        );
        assert!(hits(&[alpha, beta, gamma], Rule::LoopCancelPoll).is_empty());
    }
}
