//! The rule engine. [`analyze`] takes every source file of a
//! workspace (or a single file, via [`scan_file`]) and runs two
//! phases:
//!
//! **Summarize** (per file, independent — parallel and cacheable, see
//! [`crate::summary`]):
//!
//! - per-token rules L1/L2/L3/L5/L9 over the [`crate::lexer`] stream,
//!   alias-aware via each file's `use` map;
//! - per-file structural rule L4 (`*Error` enums must impl
//!   `Display` + `Error`);
//! - the crate-root attribute rule on `lib.rs` files;
//! - per-function effect summaries (locks, calls, blocking sites,
//!   pool dispatches, the CFG) plus the file's import/re-export
//!   surface.
//!
//! **Link** (whole workspace, serial and deterministic):
//!
//! - L8 `swallowed-result` against a workspace-wide index of
//!   functions returning `Result<_, *Error>`;
//! - the interprocedural concurrency rules L6 `lock-order`, L7
//!   `cancel-safety`, L10/L11/L12 over the workspace call graph
//!   (see [`crate::interproc`]);
//! - unused-suppression detection: an allow marker that suppressed
//!   nothing becomes an `unused-allow` warning.
//!
//! Workspace-level policy (which crates/targets are exempt from which
//! rules) arrives via [`FilePolicy`].

use crate::lexer::{
    self, ident_at, in_test, is_ident, is_punct, stmt_end, stmt_start, AllowMarker, LineIndex,
    Tok, TokKind,
};
use crate::summary::{FileSummary, FnReturn, SwallowCand, SwallowKind};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// The architectural invariants. Names are the stable identifiers
/// used in diagnostics and in `// teleios-lint: allow(<name>)`
/// suppression markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// L1: no `std::thread::spawn` / `thread::Builder` outside the
    /// concurrency substrate (`teleios-exec`, `teleios-loom`) — not
    /// even through a renamed import.
    NoThreadSpawn,
    /// L2: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
    /// library code outside `#[cfg(test)]`.
    NoPanic,
    /// L3: no `println!`/`eprintln!` in library code.
    NoPrintln,
    /// L4: every public `*Error` enum implements `Display` and
    /// `std::error::Error`.
    ErrorImpls,
    /// L5: no `Ordering::Relaxed` outside `crates/exec`.
    NoRelaxed,
    /// Crate-root check: every workspace member carries
    /// `forbid(unsafe_code)` plus the clippy unwrap/expect denies.
    CrateAttrs,
    /// L6: the *workspace* lock-acquisition graph (who holds what
    /// while taking what, resolved through same-crate and cross-crate
    /// calls) must be acyclic.
    LockOrder,
    /// L7: closures handed to `WorkerPool` dispatch must not block
    /// outside the sanctioned cancellable doorways
    /// (`sleep_cancellable` / `poll_cancellable`) — followed through
    /// calls across crate boundaries.
    CancelSafety,
    /// L8: `let _ =` / statement-level `.ok()` must not discard a
    /// `Result` whose error type is a workspace `*Error` enum — nor a
    /// `flush()` / `sync_all()` / `sync_data()` durability barrier's
    /// `io::Result`.
    SwallowedResult,
    /// L9: no direct `std::fs` mutation (`write`/`rename`/`remove_*`/
    /// `create_dir*`/`copy`/…), `File::create`, or `OpenOptions`
    /// outside the storage doorway (`crates/store`) — durability goes
    /// through `teleios-store`'s `Medium`.
    NoDirectFs,
    /// L10: a `StorageBackend::begin()` must reach a `commit()` or
    /// `rollback()` on every path out of the function — including
    /// `?`-early-exits (path-sensitive, see `cfg.rs`; cross-validated
    /// at runtime by `teleios-store`'s `TxnWitness`).
    TxnLeak,
    /// L11: an exclusive `Mutex`/`OrderedMutex`/`RwLock`-write guard
    /// must not be live across a pool dispatch, `sleep_cancellable`,
    /// fsync barrier, WAL commit — or a call whose effect summary
    /// says it may block, even in another crate.
    GuardAcrossBlocking,
    /// L12: `loop`/`while` loops on a cancellable-dispatched path
    /// must poll the `CancelToken` on every iteration path, with the
    /// path followed across crate boundaries (closes the gap that
    /// let the supervisor's uninterruptible retry backoff through).
    LoopCancelPoll,
    /// An allow marker that suppressed nothing (warning; error under
    /// `--strict`).
    UnusedAllow,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoThreadSpawn => "no-thread-spawn",
            Rule::NoPanic => "no-panic",
            Rule::NoPrintln => "no-println",
            Rule::ErrorImpls => "error-impls",
            Rule::NoRelaxed => "no-relaxed",
            Rule::CrateAttrs => "crate-attrs",
            Rule::LockOrder => "lock-order",
            Rule::CancelSafety => "cancel-safety",
            Rule::SwallowedResult => "swallowed-result",
            Rule::NoDirectFs => "no-direct-fs",
            Rule::TxnLeak => "txn-leak",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::LoopCancelPoll => "loop-cancel-poll",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-thread-spawn" => Some(Rule::NoThreadSpawn),
            "no-panic" => Some(Rule::NoPanic),
            "no-println" => Some(Rule::NoPrintln),
            "error-impls" => Some(Rule::ErrorImpls),
            "no-relaxed" => Some(Rule::NoRelaxed),
            "crate-attrs" => Some(Rule::CrateAttrs),
            "lock-order" => Some(Rule::LockOrder),
            "cancel-safety" => Some(Rule::CancelSafety),
            "swallowed-result" => Some(Rule::SwallowedResult),
            "no-direct-fs" => Some(Rule::NoDirectFs),
            "txn-leak" => Some(Rule::TxnLeak),
            "guard-across-blocking" => Some(Rule::GuardAcrossBlocking),
            "loop-cancel-poll" => Some(Rule::LoopCancelPoll),
            "unused-allow" => Some(Rule::UnusedAllow),
            _ => None,
        }
    }

    /// Warnings don't fail the gate unless `--strict` is set.
    pub fn is_warning(self) -> bool {
        matches!(self, Rule::UnusedAllow)
    }
}

/// One diagnostic: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub rule: Rule,
    pub msg: String,
}

impl Finding {
    pub fn severity(&self) -> &'static str {
        if self.rule.is_warning() {
            "warning"
        } else {
            "error"
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.msg
        )
    }
}

/// Per-file exemptions, derived from where the file lives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FilePolicy {
    /// `crates/exec` and `crates/loom`: the substrate that is allowed
    /// to own OS threads, relaxed atomics, and raw blocking calls.
    pub substrate: bool,
    /// Binary / bench / example targets: drivers fail fast by design
    /// (L2 exempt) and print their tables (L3 exempt). The other
    /// rules still apply.
    pub bin_target: bool,
    /// `crates/store`: the one crate allowed to mutate the filesystem
    /// directly — everything else reaches disk through its `Medium`
    /// (L9 exempt).
    pub fs_doorway: bool,
}

/// One source file handed to [`analyze`]: contents plus the workspace
/// coordinates the rules need (crate membership for the concurrency
/// model, crate-root status for the attribute rule).
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub label: String,
    pub raw: String,
    pub crate_name: String,
    pub is_crate_root: bool,
    pub policy: FilePolicy,
}

/// Everything the summarize phase needs about one file, borrowed
/// from the masked/lexed arenas in [`crate::summary::summarize`].
pub(crate) struct FileCtx<'a> {
    pub raw: &'a str,
    pub toks: &'a [Tok<'a>],
    pub idx: LineIndex,
    pub regions: Vec<(usize, usize)>,
    pub aliases: lexer::UseAliases,
    pub policy: FilePolicy,
}

/// Per-file finding collector for the summarize phase: applies this
/// file's allow markers and records which markers suppressed
/// something. The surviving findings and the used-marker set travel
/// in the [`FileSummary`] — so a cached summary carries its local
/// diagnostics without re-reading the file.
pub(crate) struct LocalSink<'a> {
    label: &'a str,
    idx: &'a LineIndex,
    markers: &'a [AllowMarker],
    pub(crate) findings: Vec<Finding>,
    pub(crate) used: BTreeSet<usize>,
}

impl<'a> LocalSink<'a> {
    pub(crate) fn new(
        label: &'a str,
        idx: &'a LineIndex,
        markers: &'a [AllowMarker],
    ) -> LocalSink<'a> {
        LocalSink { label, idx, markers, findings: Vec::new(), used: BTreeSet::new() }
    }

    pub(crate) fn emit(&mut self, off: usize, rule: Rule, msg: String) {
        let (line, col) = self.idx.line_col(off);
        if let Some(mi) = self
            .markers
            .iter()
            .position(|m| m.rule == Some(rule) && (m.line == line || m.line + 1 == line))
        {
            self.used.insert(mi);
            return;
        }
        self.findings.push(Finding { path: self.label.to_string(), line, col, rule, msg });
    }

    pub(crate) fn into_parts(self) -> (Vec<Finding>, BTreeSet<usize>) {
        (self.findings, self.used)
    }
}

/// Link-phase finding collector: seeded with every file's local
/// findings and used-marker sets, it applies allow markers to the
/// cross-file rules' emissions and turns leftover markers into
/// `unused-allow` warnings at the end.
pub(crate) struct Diagnostics {
    findings: Vec<Finding>,
    used: Vec<BTreeSet<usize>>,
}

impl Diagnostics {
    pub(crate) fn new(sums: &[FileSummary]) -> Diagnostics {
        Diagnostics {
            findings: sums.iter().flat_map(|s| s.local.iter().cloned()).collect(),
            used: sums.iter().map(|s| s.used_markers.clone()).collect(),
        }
    }

    pub(crate) fn emit(
        &mut self,
        sum: &FileSummary,
        fi: usize,
        off: usize,
        rule: Rule,
        msg: String,
    ) {
        let (line, col) = sum.idx.line_col(off);
        if let Some(mi) = sum
            .markers
            .iter()
            .position(|m| m.rule == Some(rule) && (m.line == line || m.line + 1 == line))
        {
            self.used[fi].insert(mi);
            return;
        }
        self.findings.push(Finding { path: sum.label.clone(), line, col, rule, msg });
    }

    pub(crate) fn finish(mut self, sums: &[FileSummary]) -> Vec<Finding> {
        for (fi, sum) in sums.iter().enumerate() {
            for (mi, m) in sum.markers.iter().enumerate() {
                if self.used[fi].contains(&mi) {
                    continue;
                }
                // Markers inside test regions are inert (tests are
                // exempt from every rule), not stale.
                if in_test(&sum.regions, sum.idx.line_start(m.line)) {
                    continue;
                }
                let msg = match m.rule {
                    Some(_) => format!(
                        "allow({}) suppresses nothing on this or the next line — remove the stale marker",
                        m.name
                    ),
                    None => format!("allow({}) does not name a known rule", m.name),
                };
                self.findings.push(Finding {
                    path: sum.label.clone(),
                    line: m.line,
                    col: m.col,
                    rule: Rule::UnusedAllow,
                    msg,
                });
            }
        }
        self.findings.sort();
        self.findings
    }
}

/// Run every rule over a set of source files (a whole workspace, or a
/// single file via [`scan_file`]). Files sharing a `crate_name` form
/// one crate; the interprocedural rules link all crates together.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let sums: Vec<FileSummary> = files.iter().map(crate::summary::summarize).collect();
    link(&sums)
}

/// The link phase over pre-computed (possibly cached) summaries.
pub(crate) fn link(sums: &[FileSummary]) -> Vec<Finding> {
    let mut phases = Vec::new();
    link_timed(sums, &mut phases)
}

/// [`link`], recording per-rule wall-clock into `phases` as
/// `(name, microseconds)` for `--timings`.
pub(crate) fn link_timed(
    sums: &[FileSummary],
    phases: &mut Vec<(&'static str, u128)>,
) -> Vec<Finding> {
    let mut diag = Diagnostics::new(sums);
    let t = std::time::Instant::now();
    swallowed_link(sums, &mut diag);
    phases.push(("link:swallowed-result", t.elapsed().as_micros()));
    crate::interproc::link_rules(sums, &mut diag, phases);
    let t = std::time::Instant::now();
    let findings = diag.finish(sums);
    phases.push(("link:finish", t.elapsed().as_micros()));
    findings
}

/// Run every rule over one file. `path` labels findings; the file is
/// its own single-file crate for the cross-file rules.
pub fn scan_file(path: &str, raw: &str, policy: FilePolicy) -> Vec<Finding> {
    analyze(&[SourceFile {
        label: path.to_string(),
        raw: raw.to_string(),
        crate_name: "file".to_string(),
        is_crate_root: false,
        policy,
    }])
}

/// L1/L2/L3/L5/L9: the per-token rules.
pub(crate) fn token_rules(ctx: &FileCtx<'_>, sink: &mut LocalSink<'_>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let off = toks[i].off;
        // Import lines declare, they don't use; violations fire at
        // usage sites.
        if ctx.aliases.in_use_stmt(i) {
            continue;
        }
        let tested = in_test(&ctx.regions, off);
        let seg = ident_at(toks, i);
        let path_next = is_punct(toks, i + 1, b':') && is_punct(toks, i + 2, b':');
        let path_prev = i >= 2 && is_punct(toks, i - 1, b':') && is_punct(toks, i - 2, b':');

        // L1 — thread::spawn / thread::Builder, aliases included.
        if !ctx.policy.substrate && !tested {
            if let Some(seg) = seg {
                if path_next {
                    if let Some(what @ ("spawn" | "Builder")) = ident_at(toks, i + 3) {
                        if seg == "thread" {
                            sink.emit(off, Rule::NoThreadSpawn, format!(
                                "std::thread::{what}: OS threads belong to teleios-exec (WorkerPool / spawn_named)"
                            ));
                        } else if ctx.aliases.resolves_to(seg, &["std", "thread"]) {
                            sink.emit(off, Rule::NoThreadSpawn, format!(
                                "std::thread::{what} via alias `{seg}`: OS threads belong to teleios-exec (WorkerPool / spawn_named)"
                            ));
                        }
                    }
                }
                if !path_prev
                    && ctx.aliases.resolves_to(seg, &["std", "thread", "spawn"])
                    && is_punct(toks, i + 1, b'(')
                {
                    sink.emit(off, Rule::NoThreadSpawn, format!(
                        "std::thread::spawn via alias `{seg}`: OS threads belong to teleios-exec (WorkerPool / spawn_named)"
                    ));
                }
                if !path_prev && ctx.aliases.resolves_to(seg, &["std", "thread", "Builder"]) {
                    sink.emit(off, Rule::NoThreadSpawn, format!(
                        "std::thread::Builder via `use` as `{seg}`: OS threads belong to teleios-exec (WorkerPool / spawn_named)"
                    ));
                }
            }
        }

        // L2 — unwrap/expect/panic!/todo!/unimplemented!
        if !ctx.policy.bin_target && !tested {
            if let Some(name @ ("unwrap" | "expect")) = seg {
                // `self.expect(..)` is a parser combinator method in
                // the WKT/SQL/SPARQL parsers, not Option/Result::expect
                // (`self` is never an Option in this workspace).
                let own_method = name == "expect" && i >= 2 && is_ident(toks, i - 2, "self");
                if !own_method && i > 0 && is_punct(toks, i - 1, b'.') && is_punct(toks, i + 1, b'(') {
                    sink.emit(off, Rule::NoPanic, format!(
                        ".{name}() in library code: return a typed error instead"
                    ));
                }
            }
            if let Some(name @ ("panic" | "todo" | "unimplemented")) = seg {
                if is_punct(toks, i + 1, b'!') {
                    sink.emit(off, Rule::NoPanic, format!(
                        "{name}! in library code: return a typed error instead"
                    ));
                }
            }
        }

        // L3 — println!/eprintln!
        if !ctx.policy.bin_target && !tested {
            if let Some(name @ ("println" | "eprintln")) = seg {
                if is_punct(toks, i + 1, b'!') {
                    sink.emit(off, Rule::NoPrintln, format!(
                        "{name}! in library code: route output through the caller or a report type"
                    ));
                }
            }
        }

        // L9 — direct filesystem mutation outside the storage
        // doorway. Reads stay free; writes, renames, removals, and
        // writable-open handles must go through teleios-store's
        // Medium so the WAL's crash-consistency contract holds.
        if !ctx.policy.fs_doorway && !tested {
            const FS_MUTATORS: [&str; 10] = [
                "write",
                "rename",
                "remove_file",
                "remove_dir",
                "remove_dir_all",
                "create_dir",
                "create_dir_all",
                "copy",
                "hard_link",
                "set_permissions",
            ];
            if let Some(seg) = seg {
                if path_next {
                    if let Some(what) = ident_at(toks, i + 3) {
                        if FS_MUTATORS.contains(&what)
                            && (seg == "fs" || ctx.aliases.resolves_to(seg, &["std", "fs"]))
                        {
                            sink.emit(off, Rule::NoDirectFs, format!(
                                "std::fs::{what} outside crates/store: filesystem mutation goes through teleios-store's Medium"
                            ));
                        }
                        if matches!(what, "create" | "create_new" | "options")
                            && (seg == "File"
                                || ctx.aliases.resolves_to(seg, &["std", "fs", "File"]))
                        {
                            sink.emit(off, Rule::NoDirectFs, format!(
                                "File::{what} outside crates/store: writable file handles go through teleios-store's Medium"
                            ));
                        }
                    }
                }
                if seg == "OpenOptions"
                    || (!path_prev
                        && ctx.aliases.resolves_to(seg, &["std", "fs", "OpenOptions"]))
                {
                    sink.emit(off, Rule::NoDirectFs,
                        "OpenOptions outside crates/store: writable file handles go through teleios-store's Medium".to_string());
                }
                if !path_prev
                    && is_punct(toks, i + 1, b'(')
                    && ctx.aliases.resolve(seg).is_some_and(|p| {
                        p.len() == 3
                            && p[0] == "std"
                            && p[1] == "fs"
                            && FS_MUTATORS.contains(&p[2].as_str())
                    })
                {
                    sink.emit(off, Rule::NoDirectFs, format!(
                        "std::fs mutation via alias `{seg}`: filesystem mutation goes through teleios-store's Medium"
                    ));
                }
            }
        }

        // L5 — Ordering::Relaxed, aliases included. Applies inside
        // tests too: the loom model is SeqCst-only everywhere.
        if !ctx.policy.substrate {
            if let Some(seg) = seg {
                if seg == "Ordering" && path_next && is_ident(toks, i + 3, "Relaxed") {
                    sink.emit(off, Rule::NoRelaxed,
                        "Ordering::Relaxed outside crates/exec: the loom model assumes SeqCst".to_string());
                } else if seg != "Ordering"
                    && path_next
                    && is_ident(toks, i + 3, "Relaxed")
                    && ctx.aliases.resolve(seg).is_some_and(|p| p.last().map(String::as_str) == Some("Ordering"))
                {
                    sink.emit(off, Rule::NoRelaxed, format!(
                        "Ordering::Relaxed via alias `{seg}`: the loom model assumes SeqCst"
                    ));
                } else if !path_prev
                    && !path_next
                    && ctx.aliases.resolve(seg).is_some_and(|p| {
                        p.last().map(String::as_str) == Some("Relaxed")
                            && p.iter().any(|s| s == "Ordering")
                    })
                {
                    sink.emit(off, Rule::NoRelaxed, format!(
                        "Ordering::Relaxed via `use` of `{seg}`: the loom model assumes SeqCst"
                    ));
                }
            }
        }
    }
}

/// Trait impls in the file, as `(last trait path segment, type name)`
/// pairs — enough to verify `impl Display for FooError` and
/// `impl std::error::Error for FooError`.
fn impl_pairs<'a>(toks: &[Tok<'a>]) -> Vec<(&'a str, &'a str)> {
    let mut pairs = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "impl") {
            i += 1;
            continue;
        }
        let mut trait_seg: Option<&str> = None;
        let mut generic_depth = 0usize;
        let mut j = i + 1;
        let limit = (i + 40).min(toks.len());
        while j < limit {
            match toks[j].kind {
                TokKind::Punct(b'<') => generic_depth += 1,
                TokKind::Punct(b'>') => generic_depth = generic_depth.saturating_sub(1),
                TokKind::Punct(b'{') | TokKind::Punct(b';') => break,
                TokKind::Ident("for") if generic_depth == 0 => {
                    if let (Some(t), Some(ty)) = (trait_seg, ident_at(toks, j + 1)) {
                        pairs.push((t, ty));
                    }
                    break;
                }
                TokKind::Ident(s) => trait_seg = Some(s),
                TokKind::Punct(_) => {}
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    pairs
}

/// L4 — public `*Error` enums must impl Display + Error in this file.
pub(crate) fn error_impls(ctx: &FileCtx<'_>, sink: &mut LocalSink<'_>) {
    let toks = ctx.toks;
    let pairs = impl_pairs(toks);
    for i in 0..toks.len() {
        if !is_ident(toks, i, "pub") {
            continue;
        }
        // `pub(crate)` etc. is not public API.
        if is_punct(toks, i + 1, b'(') {
            continue;
        }
        if !is_ident(toks, i + 1, "enum") {
            continue;
        }
        let Some(name) = ident_at(toks, i + 2) else {
            continue;
        };
        if !name.ends_with("Error") || name == "Error" || in_test(&ctx.regions, toks[i].off) {
            continue;
        }
        let has_display = pairs.iter().any(|(t, ty)| *t == "Display" && *ty == name);
        let has_error = pairs.iter().any(|(t, ty)| *t == "Error" && *ty == name);
        if !has_display || !has_error {
            let missing = match (has_display, has_error) {
                (false, false) => "Display and std::error::Error",
                (false, true) => "Display",
                (true, false) => "std::error::Error",
                (true, true) => unreachable!(),
            };
            sink.emit(toks[i].off, Rule::ErrorImpls, format!(
                "public error enum {name} does not implement {missing} in this file"
            ));
        }
    }
}

/// The crate-root attribute rule: every member's `lib.rs` must carry
/// `#![forbid(unsafe_code)]` and deny clippy's unwrap/expect lints.
pub(crate) fn crate_attrs(ctx: &FileCtx<'_>, sink: &mut LocalSink<'_>) {
    if !ctx.raw.contains("forbid(unsafe_code)") {
        sink.emit(0, Rule::CrateAttrs,
            "crate root is missing #![forbid(unsafe_code)]".to_string());
    }
    if !ctx.raw.contains("clippy::unwrap_used") || !ctx.raw.contains("clippy::expect_used") {
        sink.emit(0, Rule::CrateAttrs,
            "crate root is missing deny(clippy::unwrap_used, clippy::expect_used)".to_string());
    }
}

// ---------------------------------------------------------------
// L8 swallowed-result: summarize-side extraction
// ---------------------------------------------------------------

/// Every `enum *Error` declared in the file (test regions included —
/// the index only needs the name to exist somewhere).
pub(crate) fn collect_error_enums(ctx: &FileCtx<'_>) -> Vec<String> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if is_ident(toks, i, "enum") {
            if let Some(name) = ident_at(toks, i + 1) {
                if name.ends_with("Error") && name != "Error" {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Every `type X<T> = ...;` in the file, as the alias name plus the
/// `*Error`-suffixed idents appearing in its right-hand side (in
/// order — the link phase picks the last one that names a workspace
/// error enum).
pub(crate) fn collect_type_aliases(ctx: &FileCtx<'_>) -> Vec<(String, Vec<String>)> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !is_ident(toks, i, "type") {
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else { continue };
        let end = stmt_end(toks, i);
        let mut errs = Vec::new();
        for k in i + 2..end.min(toks.len()) {
            if let Some(id) = ident_at(toks, k) {
                if id.ends_with("Error") {
                    errs.push(id.to_string());
                }
            }
        }
        out.push((name.to_string(), errs));
    }
    out
}

/// The raw return-type facts of one function: the `*Error`-suffixed
/// idents in its return region (in order), whether it returns a bare
/// (crate-alias) `Result`, and the crate of a qualified
/// `teleios_<crate>::Result`. Resolution against the workspace enum
/// set happens at link time.
pub(crate) fn fn_return_raw(ctx: &FileCtx<'_>, f: &crate::graph::FnDef) -> Option<FnReturn> {
    let toks = ctx.toks;
    let stop = f.sig_end;
    // Locate the return arrow at paren/angle depth zero (skipping
    // `Fn(..) -> ..` bounds inside the parameter list or generics).
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut arrow = None;
    let mut j = f.name_idx + 1;
    while j < stop.min(toks.len()) {
        match toks[j].kind {
            TokKind::Punct(b'(') => paren += 1,
            TokKind::Punct(b')') => paren -= 1,
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => {
                if j > 0 && is_punct(toks, j - 1, b'-') {
                    if paren == 0 && angle == 0 {
                        arrow = Some(j);
                        break;
                    }
                } else {
                    angle -= 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let arrow = arrow?;
    let mut region_end = stop;
    for k in arrow + 1..stop {
        if is_ident(toks, k, "where") {
            region_end = k;
            break;
        }
    }
    let mut err_idents: Vec<String> = Vec::new();
    let mut bare_result = false;
    let mut qualified_crate: Option<String> = None;
    for k in arrow + 1..region_end.min(toks.len()) {
        if let Some(id) = ident_at(toks, k) {
            if id.ends_with("Error") {
                err_idents.push(id.to_string());
            }
            if id == "Result" {
                let path_prev = k >= 2 && is_punct(toks, k - 1, b':') && is_punct(toks, k - 2, b':');
                if !path_prev {
                    bare_result = true;
                } else if let Some(seg) = k.checked_sub(3).and_then(|p| ident_at(toks, p)) {
                    if let Some(c) = seg.strip_prefix("teleios_") {
                        qualified_crate = Some(c.to_string());
                    }
                }
            }
        }
    }
    Some(FnReturn { name: f.name.clone(), err_idents, bare_result, qualified_crate })
}

/// Candidate L8 sites in the file: `let _ = f(..);` and
/// statement-level `expr.f(..).ok();` outside tests, with every
/// structural exemption (top-level `?`, bindings, assignments)
/// already applied. Whether the callee's `Result` matters is decided
/// at link time against the workspace index.
pub(crate) fn swallow_candidates(ctx: &FileCtx<'_>) -> Vec<SwallowCand> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let off = toks[i].off;
        if in_test(&ctx.regions, off) {
            continue;
        }
        if is_ident(toks, i, "let") && is_ident(toks, i + 1, "_") && is_punct(toks, i + 2, b'=') {
            let end = stmt_end(toks, i);
            if let Some((ci, callee)) = top_level_call(toks, i + 3, end) {
                out.push(SwallowCand {
                    kind: SwallowKind::LetUnderscore,
                    off: toks[ci].off,
                    callee: callee.to_string(),
                });
            }
        }
        if is_punct(toks, i, b'.')
            && is_ident(toks, i + 1, "ok")
            && is_punct(toks, i + 2, b'(')
            && is_punct(toks, i + 3, b')')
            && is_punct(toks, i + 4, b';')
        {
            let start = stmt_start(toks, i);
            if is_ident(toks, start, "let") || is_ident(toks, start, "return") {
                continue;
            }
            if has_top_level_assign(toks, start, i) {
                continue;
            }
            if let Some(callee) = call_before(toks, i) {
                out.push(SwallowCand {
                    kind: SwallowKind::OkDiscard,
                    off: toks[i + 1].off,
                    callee: callee.to_string(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------
// L8 swallowed-result: link-side decision
// ---------------------------------------------------------------

/// L8 — decide every file's swallow candidates against the
/// workspace-wide index of functions returning `Result<_, *Error>`.
/// Durability barriers (`flush` / `sync_all` / `sync_data`) are
/// flagged whatever their error type: a discarded fsync result
/// silently loses the crash-consistency guarantee.
pub(crate) fn swallowed_link(sums: &[FileSummary], diag: &mut Diagnostics) {
    const SYNC_CALLS: [&str; 3] = ["flush", "sync_all", "sync_data"];
    // Every `enum *Error` declared anywhere in the analyzed set.
    let mut enums: HashSet<&str> = HashSet::new();
    for sum in sums {
        for e in &sum.error_enums {
            enums.insert(e.as_str());
        }
    }
    // Per-crate `type X<T> = ... SomeError ...;` aliases.
    let mut aliases: HashMap<String, HashMap<String, String>> = HashMap::new();
    for sum in sums {
        for (name, errs) in &sum.type_aliases {
            if let Some(e) = errs.iter().filter(|e| enums.contains(e.as_str())).next_back() {
                aliases
                    .entry(sum.crate_name.clone())
                    .or_default()
                    .insert(name.clone(), e.clone());
            }
        }
    }
    // Function name → the `*Error` its `Result` return carries.
    let mut index: HashMap<&str, String> = HashMap::new();
    for sum in sums {
        for r in &sum.fn_returns {
            let mut err = r
                .err_idents
                .iter()
                .filter(|e| enums.contains(e.as_str()))
                .next_back()
                .cloned();
            if err.is_none() && r.bare_result {
                err = aliases.get(&sum.crate_name).and_then(|m| m.get("Result")).cloned();
            }
            if err.is_none() {
                if let Some(c) = &r.qualified_crate {
                    err = aliases.get(c).and_then(|m| m.get("Result")).cloned();
                }
            }
            if let Some(e) = err {
                index.insert(r.name.as_str(), e);
            }
        }
    }
    // Decide the candidates.
    for (fi, sum) in sums.iter().enumerate() {
        for c in &sum.swallows {
            let callee = c.callee.as_str();
            match c.kind {
                SwallowKind::LetUnderscore => {
                    if let Some(err) = index.get(callee) {
                        diag.emit(sum, fi, c.off, Rule::SwallowedResult, format!(
                            "`let _ =` discards Result<_, {err}> from `{callee}`: handle it, propagate with `?`, or justify with an allow marker"
                        ));
                    } else if SYNC_CALLS.contains(&callee) {
                        diag.emit(sum, fi, c.off, Rule::SwallowedResult, format!(
                            "`let _ =` discards the io::Result from `{callee}`: a failed durability barrier must be handled, propagated, or justified with an allow marker"
                        ));
                    }
                }
                SwallowKind::OkDiscard => {
                    if let Some(err) = index.get(callee) {
                        diag.emit(sum, fi, c.off, Rule::SwallowedResult, format!(
                            ".ok() discards Result<_, {err}> from `{callee}` without reading it: handle the error or justify with an allow marker"
                        ));
                    } else if SYNC_CALLS.contains(&callee) {
                        diag.emit(sum, fi, c.off, Rule::SwallowedResult, format!(
                            ".ok() discards the io::Result from `{callee}` without reading it: a failed durability barrier must be handled or justified with an allow marker"
                        ));
                    }
                }
            }
        }
    }
}

/// The last call made at the top level of an expression (the one
/// whose result the statement yields), or `None` if a top-level `?`
/// already propagates errors.
fn top_level_call<'a>(toks: &[Tok<'a>], s: usize, end: usize) -> Option<(usize, &'a str)> {
    let mut depth = 0i32;
    let mut last = None;
    for k in s..end.min(toks.len()) {
        match toks[k].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'?') if depth == 0 => return None,
            TokKind::Ident(id) if depth == 0 && is_punct(toks, k + 1, b'(') => {
                last = Some((k, id));
            }
            _ => {}
        }
    }
    last
}

/// Is there a bare `=` (assignment, not `==`/`=>`/`<=` etc.) at paren
/// depth zero in `[s, i)`?
fn has_top_level_assign(toks: &[Tok<'_>], s: usize, i: usize) -> bool {
    let mut depth = 0i32;
    for k in s..i {
        match toks[k].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'=') if depth == 0 => {
                let eq_like = is_punct(toks, k + 1, b'=')
                    || is_punct(toks, k + 1, b'>')
                    || (k > 0
                        && (is_punct(toks, k - 1, b'=')
                            || is_punct(toks, k - 1, b'!')
                            || is_punct(toks, k - 1, b'<')
                            || is_punct(toks, k - 1, b'>')));
                if !eq_like {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// For `recv.f(args).ok()`: the name of the call whose parens close
/// just before the `.` at `i`.
fn call_before<'a>(toks: &[Tok<'a>], i: usize) -> Option<&'a str> {
    if i == 0 || !is_punct(toks, i - 1, b')') {
        return None;
    }
    let mut depth = 0i32;
    let mut k = i - 1;
    loop {
        if is_punct(toks, k, b')') {
            depth += 1;
        } else if is_punct(toks, k, b'(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    ident_at(toks, k.checked_sub(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("fixture.rs", src, FilePolicy::default())
    }

    fn rules_hit(src: &str) -> Vec<(usize, Rule)> {
        scan(src).into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn l1_fires_on_thread_spawn_and_builder() {
        assert_eq!(
            rules_hit("fn f() {\n    std::thread::spawn(|| {});\n}"),
            vec![(2, Rule::NoThreadSpawn)]
        );
        assert_eq!(
            rules_hit("fn f() {\n    thread::Builder::new();\n}"),
            vec![(2, Rule::NoThreadSpawn)]
        );
    }

    #[test]
    fn l1_sees_through_aliased_imports() {
        assert_eq!(
            rules_hit("use std::thread as t;\nfn f() {\n    t::spawn(|| {});\n}"),
            vec![(3, Rule::NoThreadSpawn)]
        );
        assert_eq!(
            rules_hit("use std::thread::spawn;\nfn f() {\n    spawn(|| {});\n}"),
            vec![(3, Rule::NoThreadSpawn)]
        );
        assert_eq!(
            rules_hit("use std::thread::spawn as go;\nfn f() {\n    go(|| {});\n}"),
            vec![(3, Rule::NoThreadSpawn)]
        );
        assert_eq!(
            rules_hit("use std::thread::Builder as B;\nfn f() {\n    B::new();\n}"),
            vec![(3, Rule::NoThreadSpawn)]
        );
        // An unrelated alias named like the std items must not fire.
        assert!(scan("use crate::jobs::spawn;\nfn f() {\n    spawn(|| {});\n}").is_empty());
    }

    #[test]
    fn l1_exempt_for_substrate_and_tests() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}";
        let f = scan_file("x.rs", src, FilePolicy { substrate: true, ..FilePolicy::default() });
        assert!(f.is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}";
        assert!(scan(test_src).is_empty());
    }

    #[test]
    fn l2_fires_outside_tests_only() {
        assert_eq!(rules_hit("fn f(v: Option<u8>) {\n    v.unwrap();\n}"), vec![(2, Rule::NoPanic)]);
        assert_eq!(rules_hit("fn f() {\n    panic!(\"x\");\n}"), vec![(2, Rule::NoPanic)]);
        assert_eq!(rules_hit("fn f() {\n    todo!();\n}"), vec![(2, Rule::NoPanic)]);
        assert!(scan("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}").is_empty());
    }

    #[test]
    fn l2_whole_token_matching() {
        // unwrap_or_else / expect_kw must not match; method paths
        // without a leading dot must not match.
        assert!(scan("fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or_else(|| 0)\n}").is_empty());
        assert!(scan("fn f(p: &mut P) {\n    p.expect_kw(\"SET\");\n}").is_empty());
        // The parsers' own `self.expect(..)` combinator is not
        // Option::expect; `other.expect(..)` still fires.
        assert!(scan("fn f(&mut self) -> Result<()> {\n    self.expect(b'(')?;\n    Ok(())\n}").is_empty());
        assert_eq!(
            rules_hit("fn f(v: Option<u8>) -> u8 {\n    v.expect(\"msg\")\n}"),
            vec![(2, Rule::NoPanic)]
        );
    }

    #[test]
    fn l3_fires_and_bin_targets_are_exempt() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}";
        assert_eq!(rules_hit(src), vec![(2, Rule::NoPrintln), (3, Rule::NoPrintln)]);
        let f = scan_file("x.rs", src, FilePolicy { bin_target: true, ..FilePolicy::default() });
        assert!(f.is_empty());
    }

    #[test]
    fn l4_missing_impls_reported_with_specifics() {
        let hits = rules_hit("pub enum LoneError {\n    A,\n}");
        assert_eq!(hits, vec![(1, Rule::ErrorImpls)]);
        let src = "pub enum HalfError { A }\nimpl std::fmt::Display for HalfError {\n    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n}";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("std::error::Error"), "{}", f[0].msg);
        assert!(!f[0].msg.contains("Display and"), "{}", f[0].msg);
    }

    #[test]
    fn l4_satisfied_and_non_public_skipped() {
        let ok = "pub enum FineError { A }\nimpl std::fmt::Display for FineError {\n    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n}\nimpl std::error::Error for FineError {}";
        assert!(scan(ok).is_empty());
        assert!(scan("pub(crate) enum InnerError { A }").is_empty());
        assert!(scan("enum PrivateError { A }").is_empty());
    }

    #[test]
    fn l5_fires_everywhere_except_substrate() {
        let src = "fn f(b: &AtomicBool) {\n    b.load(Ordering::Relaxed);\n}";
        assert_eq!(rules_hit(src), vec![(2, Rule::NoRelaxed)]);
        let f = scan_file("x.rs", src, FilePolicy { substrate: true, ..FilePolicy::default() });
        assert!(f.is_empty());
    }

    #[test]
    fn l5_sees_through_aliased_imports() {
        assert_eq!(
            rules_hit("use std::sync::atomic::Ordering as O;\nfn f(b: &AtomicBool) {\n    b.load(O::Relaxed);\n}"),
            vec![(3, Rule::NoRelaxed)]
        );
        assert_eq!(
            rules_hit("use std::sync::atomic::Ordering::Relaxed;\nfn f(b: &AtomicBool) {\n    b.load(Relaxed);\n}"),
            vec![(3, Rule::NoRelaxed)]
        );
        // A `Relaxed` not imported from an Ordering is not ours.
        assert!(scan("use crate::policy::Relaxed;\nfn f() {\n    let _p = Relaxed;\n}").is_empty());
    }

    #[test]
    fn l8_swallowed_workspace_result() {
        let src = "enum DbError { X }\nfn load() -> Result<u8, DbError> { Err(DbError::X) }\nfn f() {\n    let _ = load();\n}";
        assert_eq!(rules_hit(src), vec![(4, Rule::SwallowedResult)]);
        let ok_stmt = "enum DbError { X }\nfn load() -> Result<u8, DbError> { Err(DbError::X) }\nfn f(x: &S) {\n    x.load().ok();\n}";
        assert_eq!(rules_hit(ok_stmt), vec![(4, Rule::SwallowedResult)]);
    }

    #[test]
    fn l8_resolves_crate_result_alias() {
        let src = "enum DbError { X }\ntype Result<T> = std::result::Result<T, DbError>;\nfn load() -> Result<u8> { Err(DbError::X) }\nfn f() {\n    let _ = load();\n}";
        assert_eq!(rules_hit(src), vec![(5, Rule::SwallowedResult)]);
    }

    #[test]
    fn l8_exemptions() {
        // `?` propagates; binding keeps the value; non-workspace error
        // types and tests are out of scope.
        let qmark = "enum DbError { X }\nfn load() -> Result<u8, DbError> { Err(DbError::X) }\nfn g() -> Result<u8, DbError> {\n    let _ = load()?;\n    Ok(0)\n}";
        assert!(scan(qmark).is_empty());
        let bound = "enum DbError { X }\nfn load() -> Result<u8, DbError> { Err(DbError::X) }\nfn f() {\n    let v = load().ok();\n    drop(v);\n}";
        assert!(scan(bound).is_empty());
        let io = "fn probe() -> Result<u8, std::io::Error> { Ok(0) }\nfn f() {\n    let _ = probe();\n}";
        assert!(scan(io).is_empty());
        let test = "enum DbError { X }\nfn load() -> Result<u8, DbError> { Err(DbError::X) }\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = super::load(); }\n}";
        assert!(scan(test).is_empty());
    }

    #[test]
    fn l8_flags_discarded_durability_barriers() {
        // flush/sync_all/sync_data fire regardless of error type —
        // no workspace *Error enum involved.
        assert_eq!(
            rules_hit("fn f(file: &std::fs::File) {\n    let _ = file.sync_all();\n}"),
            vec![(2, Rule::SwallowedResult)]
        );
        assert_eq!(
            rules_hit("fn f(w: &mut W) {\n    w.flush().ok();\n}"),
            vec![(2, Rule::SwallowedResult)]
        );
        assert_eq!(
            rules_hit("fn f(file: &std::fs::File) {\n    let _ = file.sync_data();\n}"),
            vec![(2, Rule::SwallowedResult)]
        );
        // Propagated, bound, or test-scoped syncs stay silent.
        let qmark = "fn f(w: &mut W) -> std::io::Result<()> {\n    let _ = w.flush()?;\n    Ok(())\n}";
        assert!(scan(qmark).is_empty());
        let bound = "fn f(file: &std::fs::File) {\n    let r = file.sync_all();\n    drop(r);\n}";
        assert!(scan(bound).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    fn t(file: &std::fs::File) { let _ = file.sync_all(); }\n}";
        assert!(scan(test).is_empty());
    }

    #[test]
    fn l9_fires_on_fs_mutation() {
        assert_eq!(
            rules_hit("fn f(p: &std::path::Path) -> std::io::Result<()> {\n    std::fs::write(p, b\"x\")\n}"),
            vec![(2, Rule::NoDirectFs)]
        );
        assert_eq!(
            rules_hit("fn f(a: &str, b: &str) -> std::io::Result<()> {\n    std::fs::rename(a, b)\n}"),
            vec![(2, Rule::NoDirectFs)]
        );
        assert_eq!(
            rules_hit("fn f(p: &str) -> std::io::Result<std::fs::File> {\n    std::fs::File::create(p)\n}"),
            vec![(2, Rule::NoDirectFs)]
        );
        assert_eq!(
            rules_hit("fn f(p: &str) -> std::io::Result<std::fs::File> {\n    std::fs::OpenOptions::new().append(true).open(p)\n}"),
            vec![(2, Rule::NoDirectFs)]
        );
    }

    #[test]
    fn l9_sees_through_aliased_imports() {
        assert_eq!(
            rules_hit("use std::fs as disk;\nfn f(p: &str) -> std::io::Result<()> {\n    disk::write(p, b\"x\")\n}"),
            vec![(3, Rule::NoDirectFs)]
        );
        assert_eq!(
            rules_hit("use std::fs::write;\nfn f(p: &str) -> std::io::Result<()> {\n    write(p, b\"x\")\n}"),
            vec![(3, Rule::NoDirectFs)]
        );
        assert_eq!(
            rules_hit("use std::fs::File as F;\nfn f(p: &str) -> std::io::Result<F> {\n    F::create(p)\n}"),
            vec![(3, Rule::NoDirectFs)]
        );
        // An unrelated `write` (fmt, io) must not fire.
        assert!(scan("use std::fmt::Write;\nfn f(s: &mut String) {\n    s.write_str(\"x\").ok();\n}").is_empty());
    }

    #[test]
    fn l9_exemptions_reads_doorway_and_tests() {
        // Reads are free everywhere.
        assert!(scan("fn f(p: &str) -> std::io::Result<Vec<u8>> {\n    std::fs::read(p)\n}").is_empty());
        assert!(scan("fn f(p: &str) -> std::io::Result<String> {\n    std::fs::read_to_string(p)\n}").is_empty());
        // The storage doorway may mutate.
        let src = "fn f(p: &str) -> std::io::Result<()> {\n    std::fs::write(p, b\"x\")\n}";
        let f = scan_file("x.rs", src, FilePolicy { fs_doorway: true, ..FilePolicy::default() });
        assert!(f.is_empty());
        // Test code may mutate (scratch dirs).
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"t\", b\"x\").ok(); }\n}";
        assert!(scan(test).is_empty());
        // An allow marker justifies a deliberate site.
        let marked = "fn f(p: &str) -> std::io::Result<()> {\n    // teleios-lint: allow(no-direct-fs) — legacy export\n    std::fs::write(p, b\"{}\")\n}";
        assert!(scan(marked).is_empty());
    }

    #[test]
    fn unused_allow_marker_warns() {
        let stale = "fn f() {\n    // teleios-lint: allow(no-panic) — nothing here panics\n    let x = 1;\n    drop(x);\n}";
        let f = scan(stale);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, Rule::UnusedAllow));
        assert_eq!(f[0].severity(), "warning");
        let unknown = "fn f() {\n    // teleios-lint: allow(no-such-rule)\n}";
        let f = scan(unknown);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("unknown rule") || f[0].msg.contains("does not name"), "{}", f[0].msg);
    }

    #[test]
    fn masked_text_never_fires() {
        let src = "fn f() {\n    let _ = \"x.unwrap() println! thread::spawn Ordering::Relaxed\";\n    // panic!(\"in comment\")\n}";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let same = "fn f() {\n    panic!(\"x\"); // teleios-lint: allow(no-panic) — deliberate\n}";
        assert!(scan(same).is_empty());
        let above = "fn f() {\n    // teleios-lint: allow(no-panic) — deliberate\n    panic!(\"x\");\n}";
        assert!(scan(above).is_empty());
        // A marker for the wrong rule suppresses nothing — the real
        // finding stands and the marker itself is flagged as stale.
        let wrong_rule = "fn f() {\n    // teleios-lint: allow(no-println)\n    panic!(\"x\");\n}";
        assert_eq!(
            rules_hit(wrong_rule),
            vec![(2, Rule::UnusedAllow), (3, Rule::NoPanic)]
        );
    }

    #[test]
    fn cfg_attr_not_test_is_not_a_test_region() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn f(v: Option<u8>) {\n    v.unwrap();\n}";
        assert_eq!(rules_hit(src), vec![(3, Rule::NoPanic)]);
    }

    #[test]
    fn finding_display_format() {
        let f = scan("fn f() {\n    panic!(\"x\");\n}");
        assert_eq!(format!("{}", f[0]), "fixture.rs:2:5: [no-panic] panic! in library code: return a typed error instead");
    }

    #[test]
    fn crate_attrs_fire_on_roots_only() {
        let bare = SourceFile {
            label: "crates/x/src/lib.rs".to_string(),
            raw: "pub fn f() {}\n".to_string(),
            crate_name: "x".to_string(),
            is_crate_root: true,
            policy: FilePolicy::default(),
        };
        let f = analyze(&[bare.clone()]);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::CrateAttrs && f.line == 1 && f.col == 1));
        let not_root = SourceFile { is_crate_root: false, ..bare };
        assert!(analyze(&[not_root]).is_empty());
    }
}
