//! The rule engine: tokenize masked source, locate `#[cfg(test)]` /
//! `#[test]` regions, and run the architectural rules L1–L5 over a
//! single file. Workspace-level policy (which crates/targets are
//! exempt from which rules) arrives via [`FilePolicy`].

use crate::mask::mask_code;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The architectural invariants. Names are the stable identifiers
/// used in diagnostics and in `// teleios-lint: allow(<name>)`
/// suppression markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// L1: no `std::thread::spawn` / `thread::Builder` outside the
    /// concurrency substrate (`teleios-exec`, `teleios-loom`).
    NoThreadSpawn,
    /// L2: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
    /// library code outside `#[cfg(test)]`.
    NoPanic,
    /// L3: no `println!`/`eprintln!` in library code.
    NoPrintln,
    /// L4: every public `*Error` enum implements `Display` and
    /// `std::error::Error`.
    ErrorImpls,
    /// L5: no `Ordering::Relaxed` outside `crates/exec`.
    NoRelaxed,
    /// Crate-root check: every workspace member carries
    /// `forbid(unsafe_code)` plus the clippy unwrap/expect denies.
    CrateAttrs,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoThreadSpawn => "no-thread-spawn",
            Rule::NoPanic => "no-panic",
            Rule::NoPrintln => "no-println",
            Rule::ErrorImpls => "error-impls",
            Rule::NoRelaxed => "no-relaxed",
            Rule::CrateAttrs => "crate-attrs",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-thread-spawn" => Some(Rule::NoThreadSpawn),
            "no-panic" => Some(Rule::NoPanic),
            "no-println" => Some(Rule::NoPrintln),
            "error-impls" => Some(Rule::ErrorImpls),
            "no-relaxed" => Some(Rule::NoRelaxed),
            "crate-attrs" => Some(Rule::CrateAttrs),
            _ => None,
        }
    }
}

/// One diagnostic: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub rule: Rule,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.msg
        )
    }
}

/// Per-file exemptions, derived from where the file lives.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePolicy {
    /// `crates/exec` and `crates/loom`: the substrate that is allowed
    /// to own OS threads and relaxed atomics.
    pub substrate: bool,
    /// Binary / bench / example targets: drivers fail fast by design
    /// (L2 exempt) and print their tables (L3 exempt). L1/L4/L5 still
    /// apply.
    pub bin_target: bool,
}

/// Byte-offset → 1-based line:col mapping.
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    pub fn line_col(&self, off: usize) -> (usize, usize) {
        let idx = match self.starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (idx + 1, off - self.starts[idx] + 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokKind<'a> {
    Ident(&'a str),
    Punct(u8),
}

#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    kind: TokKind<'a>,
    off: usize,
}

fn tokenize(masked: &str) -> Vec<Tok<'_>> {
    let b = masked.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(&masked[start..i]),
                off: start,
            });
            continue;
        }
        if c.is_ascii() {
            toks.push(Tok {
                kind: TokKind::Punct(c),
                off: i,
            });
        }
        i += 1;
    }
    toks
}

fn ident_at<'a>(toks: &[Tok<'a>], i: usize) -> Option<&'a str> {
    match toks.get(i)?.kind {
        TokKind::Ident(s) => Some(s),
        TokKind::Punct(_) => None,
    }
}

fn is_ident(toks: &[Tok<'_>], i: usize, s: &str) -> bool {
    ident_at(toks, i) == Some(s)
}

fn is_punct(toks: &[Tok<'_>], i: usize, c: u8) -> bool {
    matches!(toks.get(i), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
}

/// Skip an attribute starting at index `i` (which must be `#`);
/// returns the index just past the closing `]`.
fn skip_attr(toks: &[Tok<'_>], i: usize) -> usize {
    let mut k = i + 1;
    let mut depth = 0usize;
    while k < toks.len() {
        if is_punct(toks, k, b'[') {
            depth += 1;
        } else if is_punct(toks, k, b']') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Byte ranges covered by `#[cfg(test)]` / `#[test]` items. Only the
/// exact forms are recognized — the workspace uses no other spelling,
/// and `#[cfg_attr(not(test), ...)]` must *not* create a region.
fn test_regions(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(toks, i, b'#') && is_punct(toks, i + 1, b'[')) {
            i += 1;
            continue;
        }
        let is_test_attr = (is_ident(toks, i + 2, "cfg")
            && is_punct(toks, i + 3, b'(')
            && is_ident(toks, i + 4, "test")
            && is_punct(toks, i + 5, b')')
            && is_punct(toks, i + 6, b']'))
            || (is_ident(toks, i + 2, "test") && is_punct(toks, i + 3, b']'));
        if !is_test_attr {
            i = skip_attr(toks, i);
            continue;
        }
        let start_off = toks[i].off;
        // Skip this attribute plus any stacked ones (`#[cfg(test)]
        // #[derive(..)] struct S;`).
        let mut j = skip_attr(toks, i);
        while is_punct(toks, j, b'#') && is_punct(toks, j + 1, b'[') {
            j = skip_attr(toks, j);
        }
        // The item extends to its matched `{...}` block, or to a `;`
        // for block-less items.
        let mut end_off = toks.last().map(|t| t.off).unwrap_or(start_off);
        let mut k = j;
        while k < toks.len() {
            if is_punct(toks, k, b';') {
                end_off = toks[k].off;
                break;
            }
            if is_punct(toks, k, b'{') {
                let mut depth = 0usize;
                while k < toks.len() {
                    if is_punct(toks, k, b'{') {
                        depth += 1;
                    } else if is_punct(toks, k, b'}') {
                        depth -= 1;
                        if depth == 0 {
                            end_off = toks[k].off;
                            break;
                        }
                    }
                    k += 1;
                }
                break;
            }
            k += 1;
        }
        regions.push((start_off, end_off));
        i = j;
    }
    regions
}

fn in_test(regions: &[(usize, usize)], off: usize) -> bool {
    regions.iter().any(|(s, e)| *s <= off && off <= *e)
}

/// `// teleios-lint: allow(<rule>)` markers by line. A marker
/// suppresses findings of that rule on its own line and the next one
/// (so a marker can sit on a comment line above a long statement).
fn allow_markers(raw: &str) -> HashMap<usize, HashSet<Rule>> {
    let mut map: HashMap<usize, HashSet<Rule>> = HashMap::new();
    for (i, line) in raw.lines().enumerate() {
        let Some(p) = line.find("teleios-lint: allow(") else {
            continue;
        };
        let after = &line[p + "teleios-lint: allow(".len()..];
        let Some(q) = after.find(')') else { continue };
        if let Some(rule) = Rule::from_name(&after[..q]) {
            map.entry(i + 1).or_default().insert(rule);
        }
    }
    map
}

/// Trait impls in the file, as `(last trait path segment, type name)`
/// pairs — enough to verify `impl Display for FooError` and
/// `impl std::error::Error for FooError`.
fn impl_pairs<'a>(toks: &[Tok<'a>]) -> Vec<(&'a str, &'a str)> {
    let mut pairs = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "impl") {
            i += 1;
            continue;
        }
        let mut trait_seg: Option<&str> = None;
        let mut generic_depth = 0usize;
        let mut j = i + 1;
        let limit = (i + 40).min(toks.len());
        while j < limit {
            match toks[j].kind {
                TokKind::Punct(b'<') => generic_depth += 1,
                TokKind::Punct(b'>') => generic_depth = generic_depth.saturating_sub(1),
                TokKind::Punct(b'{') | TokKind::Punct(b';') => break,
                TokKind::Ident("for") if generic_depth == 0 => {
                    if let (Some(t), Some(ty)) = (trait_seg, ident_at(toks, j + 1)) {
                        pairs.push((t, ty));
                    }
                    break;
                }
                TokKind::Ident(s) => trait_seg = Some(s),
                TokKind::Punct(_) => {}
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    pairs
}

/// Run rules L1–L5 over one file. `path` is only used to label
/// findings.
pub fn scan_file(path: &str, raw: &str, policy: FilePolicy) -> Vec<Finding> {
    let masked = mask_code(raw);
    let toks = tokenize(&masked);
    let idx = LineIndex::new(raw);
    let regions = test_regions(&toks);
    let allows = allow_markers(raw);
    let mut findings: Vec<Finding> = Vec::new();
    let push = |off: usize, rule: Rule, msg: String, findings: &mut Vec<Finding>| {
        let (line, col) = idx.line_col(off);
        let allowed = allows.get(&line).is_some_and(|s| s.contains(&rule))
            || (line > 1 && allows.get(&(line - 1)).is_some_and(|s| s.contains(&rule)));
        if !allowed {
            findings.push(Finding {
                path: path.to_string(),
                line,
                col,
                rule,
                msg,
            });
        }
    };

    for i in 0..toks.len() {
        let off = toks[i].off;
        // L1 — thread::spawn / thread::Builder
        if !policy.substrate
            && is_ident(&toks, i, "thread")
            && is_punct(&toks, i + 1, b':')
            && is_punct(&toks, i + 2, b':')
            && !in_test(&regions, off)
        {
            if let Some(what @ ("spawn" | "Builder")) = ident_at(&toks, i + 3) {
                push(
                    off,
                    Rule::NoThreadSpawn,
                    format!("std::thread::{what}: OS threads belong to teleios-exec (WorkerPool / spawn_named)"),
                    &mut findings,
                );
            }
        }
        // L2 — unwrap/expect/panic!/todo!/unimplemented!
        if !policy.bin_target && !in_test(&regions, off) {
            if let Some(name @ ("unwrap" | "expect")) = ident_at(&toks, i) {
                // `self.expect(..)` is a parser combinator method in
                // the WKT/SQL/SPARQL parsers, not Option/Result::expect
                // (`self` is never an Option in this workspace).
                let own_method = name == "expect" && i >= 2 && is_ident(&toks, i - 2, "self");
                if !own_method && i > 0 && is_punct(&toks, i - 1, b'.') && is_punct(&toks, i + 1, b'(') {
                    push(
                        off,
                        Rule::NoPanic,
                        format!(".{name}() in library code: return a typed error instead"),
                        &mut findings,
                    );
                }
            }
            if let Some(name @ ("panic" | "todo" | "unimplemented")) = ident_at(&toks, i) {
                if is_punct(&toks, i + 1, b'!') {
                    push(
                        off,
                        Rule::NoPanic,
                        format!("{name}! in library code: return a typed error instead"),
                        &mut findings,
                    );
                }
            }
        }
        // L3 — println!/eprintln!
        if !policy.bin_target && !in_test(&regions, off) {
            if let Some(name @ ("println" | "eprintln")) = ident_at(&toks, i) {
                if is_punct(&toks, i + 1, b'!') {
                    push(
                        off,
                        Rule::NoPrintln,
                        format!("{name}! in library code: route output through the caller or a report type"),
                        &mut findings,
                    );
                }
            }
        }
        // L5 — Ordering::Relaxed
        if !policy.substrate
            && is_ident(&toks, i, "Ordering")
            && is_punct(&toks, i + 1, b':')
            && is_punct(&toks, i + 2, b':')
            && is_ident(&toks, i + 3, "Relaxed")
        {
            push(
                off,
                Rule::NoRelaxed,
                "Ordering::Relaxed outside crates/exec: the loom model assumes SeqCst".to_string(),
                &mut findings,
            );
        }
    }

    // L4 — public *Error enums must impl Display + Error.
    let pairs = impl_pairs(&toks);
    for i in 0..toks.len() {
        if !is_ident(&toks, i, "pub") {
            continue;
        }
        // `pub(crate)` etc. is not public API.
        if is_punct(&toks, i + 1, b'(') {
            continue;
        }
        if !is_ident(&toks, i + 1, "enum") {
            continue;
        }
        let Some(name) = ident_at(&toks, i + 2) else {
            continue;
        };
        if !name.ends_with("Error") || name == "Error" || in_test(&regions, toks[i].off) {
            continue;
        }
        let has_display = pairs.iter().any(|(t, ty)| *t == "Display" && *ty == name);
        let has_error = pairs.iter().any(|(t, ty)| *t == "Error" && *ty == name);
        if !has_display || !has_error {
            let missing = match (has_display, has_error) {
                (false, false) => "Display and std::error::Error",
                (false, true) => "Display",
                (true, false) => "std::error::Error",
                (true, true) => unreachable!(),
            };
            push(
                toks[i].off,
                Rule::ErrorImpls,
                format!("public error enum {name} does not implement {missing} in this file"),
                &mut findings,
            );
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("fixture.rs", src, FilePolicy::default())
    }

    fn rules_hit(src: &str) -> Vec<(usize, Rule)> {
        scan(src).into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn l1_fires_on_thread_spawn_and_builder() {
        assert_eq!(
            rules_hit("fn f() {\n    std::thread::spawn(|| {});\n}"),
            vec![(2, Rule::NoThreadSpawn)]
        );
        assert_eq!(
            rules_hit("fn f() {\n    thread::Builder::new();\n}"),
            vec![(2, Rule::NoThreadSpawn)]
        );
    }

    #[test]
    fn l1_exempt_for_substrate_and_tests() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}";
        let f = scan_file("x.rs", src, FilePolicy { substrate: true, bin_target: false });
        assert!(f.is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}";
        assert!(scan(test_src).is_empty());
    }

    #[test]
    fn l2_fires_outside_tests_only() {
        assert_eq!(rules_hit("fn f(v: Option<u8>) {\n    v.unwrap();\n}"), vec![(2, Rule::NoPanic)]);
        assert_eq!(rules_hit("fn f() {\n    panic!(\"x\");\n}"), vec![(2, Rule::NoPanic)]);
        assert_eq!(rules_hit("fn f() {\n    todo!();\n}"), vec![(2, Rule::NoPanic)]);
        assert!(scan("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}").is_empty());
    }

    #[test]
    fn l2_whole_token_matching() {
        // unwrap_or_else / expect_kw must not match; method paths
        // without a leading dot must not match.
        assert!(scan("fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or_else(|| 0)\n}").is_empty());
        assert!(scan("fn f(p: &mut P) {\n    p.expect_kw(\"SET\");\n}").is_empty());
        // The parsers' own `self.expect(..)` combinator is not
        // Option::expect; `other.expect(..)` still fires.
        assert!(scan("fn f(&mut self) -> Result<()> {\n    self.expect(b'(')?;\n    Ok(())\n}").is_empty());
        assert_eq!(
            rules_hit("fn f(v: Option<u8>) -> u8 {\n    v.expect(\"msg\")\n}"),
            vec![(2, Rule::NoPanic)]
        );
    }

    #[test]
    fn l3_fires_and_bin_targets_are_exempt() {
        let src = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}";
        assert_eq!(rules_hit(src), vec![(2, Rule::NoPrintln), (3, Rule::NoPrintln)]);
        let f = scan_file("x.rs", src, FilePolicy { substrate: false, bin_target: true });
        assert!(f.is_empty());
    }

    #[test]
    fn l4_missing_impls_reported_with_specifics() {
        let hits = rules_hit("pub enum LoneError {\n    A,\n}");
        assert_eq!(hits, vec![(1, Rule::ErrorImpls)]);
        let src = "pub enum HalfError { A }\nimpl std::fmt::Display for HalfError {\n    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n}";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("std::error::Error"), "{}", f[0].msg);
        assert!(!f[0].msg.contains("Display and"), "{}", f[0].msg);
    }

    #[test]
    fn l4_satisfied_and_non_public_skipped() {
        let ok = "pub enum FineError { A }\nimpl std::fmt::Display for FineError {\n    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n}\nimpl std::error::Error for FineError {}";
        assert!(scan(ok).is_empty());
        assert!(scan("pub(crate) enum InnerError { A }").is_empty());
        assert!(scan("enum PrivateError { A }").is_empty());
    }

    #[test]
    fn l5_fires_everywhere_except_substrate() {
        let src = "fn f(b: &AtomicBool) {\n    b.load(Ordering::Relaxed);\n}";
        assert_eq!(rules_hit(src), vec![(2, Rule::NoRelaxed)]);
        let f = scan_file("x.rs", src, FilePolicy { substrate: true, bin_target: false });
        assert!(f.is_empty());
    }

    #[test]
    fn masked_text_never_fires() {
        let src = "fn f() {\n    let _ = \"x.unwrap() println! thread::spawn Ordering::Relaxed\";\n    // panic!(\"in comment\")\n}";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let same = "fn f() {\n    panic!(\"x\"); // teleios-lint: allow(no-panic) — deliberate\n}";
        assert!(scan(same).is_empty());
        let above = "fn f() {\n    // teleios-lint: allow(no-panic) — deliberate\n    panic!(\"x\");\n}";
        assert!(scan(above).is_empty());
        let wrong_rule = "fn f() {\n    // teleios-lint: allow(no-println)\n    panic!(\"x\");\n}";
        assert_eq!(rules_hit(wrong_rule), vec![(3, Rule::NoPanic)]);
    }

    #[test]
    fn cfg_attr_not_test_is_not_a_test_region() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn f(v: Option<u8>) {\n    v.unwrap();\n}";
        assert_eq!(rules_hit(src), vec![(3, Rule::NoPanic)]);
    }

    #[test]
    fn finding_display_format() {
        let f = scan("fn f() {\n    panic!(\"x\");\n}");
        assert_eq!(format!("{}", f[0]), "fixture.rs:2:5: [no-panic] panic! in library code: return a typed error instead");
    }
}
