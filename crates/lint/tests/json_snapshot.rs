//! Pins the `--format json` schema byte-for-byte and the scan's
//! determinism contract through the real binary: the JSON emitted for
//! a fixed mini workspace is an exact snapshot (so any schema change
//! is a deliberate test edit, not an accident a downstream consumer
//! discovers), a parallel scan is byte-identical to `--serial`, and a
//! warm `--cache` run reports a full hit rate while still emitting
//! the same bytes.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A single-member workspace with three deterministic findings: both
/// missing crate attributes (1:1) and a `println!` (2:5).
fn mini_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "teleios-lint-snapshot-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates").join("demo").join("src");
    fs::create_dir_all(&src).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/demo\"]\n")
        .unwrap();
    fs::write(
        root.join("crates").join("demo").join("Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .unwrap();
    fs::write(src.join("lib.rs"), "pub fn noisy() {\n    println!(\"boot\");\n}\n")
        .unwrap();
    root
}

fn run(root: &PathBuf, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_teleios-lint"));
    cmd.arg("--root").arg(root);
    for a in extra {
        cmd.arg(a);
    }
    cmd.output().unwrap()
}

/// The pinned schema: an array of objects with exactly these keys in
/// exactly this order, two-space indent, one finding per line.
const SNAPSHOT: &str = r#"[
  {"path":"crates/demo/src/lib.rs","line":1,"col":1,"rule":"crate-attrs","severity":"error","message":"crate root is missing #![forbid(unsafe_code)]"},
  {"path":"crates/demo/src/lib.rs","line":1,"col":1,"rule":"crate-attrs","severity":"error","message":"crate root is missing deny(clippy::unwrap_used, clippy::expect_used)"},
  {"path":"crates/demo/src/lib.rs","line":2,"col":5,"rule":"no-println","severity":"error","message":"println! in library code: route output through the caller or a report type"}
]
"#;

#[test]
fn json_output_matches_the_pinned_snapshot() {
    let root = mini_workspace("schema");
    let out = run(&root, &["--format", "json"]);
    assert!(!out.status.success(), "the seeded findings are errors");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        SNAPSHOT,
        "json schema drifted — if intentional, update SNAPSHOT"
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn parallel_scan_is_byte_identical_to_serial() {
    let root = mini_workspace("par");
    let serial = run(&root, &["--format", "json", "--serial"]);
    let parallel = run(&root, &["--format", "json", "--jobs", "8"]);
    assert_eq!(serial.stdout, parallel.stdout, "findings must not depend on --jobs");
    assert_eq!(serial.status.code(), parallel.status.code());
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn warm_cache_run_hits_fully_and_emits_the_same_bytes() {
    let root = mini_workspace("cache");
    let cache = root.join("lint-cache");
    let cache_arg = cache.to_string_lossy().into_owned();
    let cold = run(&root, &["--format", "json", "--cache", &cache_arg, "--timings"]);
    let warm = run(&root, &["--format", "json", "--cache", &cache_arg, "--timings"]);
    assert_eq!(cold.stdout, warm.stdout, "cached summaries must link identically");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        cold_err.contains("0 hit(s)"),
        "first run misses everything: {cold_err}"
    );
    assert!(
        warm_err.contains("0 miss(es)") && warm_err.contains("100% hit rate"),
        "second run serves every summary from the cache: {warm_err}"
    );
    fs::remove_dir_all(&root).unwrap();
}
