//! End-to-end check of the `--strict` contract through the real
//! binary: a stale `// teleios-lint: allow(...)` marker is a warning
//! (exit 0) by default and an error (exit 1) under `--strict`, and
//! the warning survives into both human and JSON output.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Lay out a minimal workspace whose single member carries one stale
/// allow marker and no actual violations.
fn mini_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "teleios-lint-strict-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates").join("demo").join("src");
    fs::create_dir_all(&src).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/demo\"]\n")
        .unwrap();
    fs::write(
        root.join("crates").join("demo").join("Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .unwrap();
    fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n\
         //! Demo crate for the strict-allow integration test.\n\n\
         /// Nothing below panics, so this marker is stale.\n\
         pub fn quiet() -> u32 {\n\
             // teleios-lint: allow(no-panic) — stale on purpose\n\
             41 + 1\n\
         }\n",
    )
    .unwrap();
    root
}

fn run(root: &PathBuf, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_teleios-lint"));
    cmd.arg("--root").arg(root);
    for a in extra {
        cmd.arg(a);
    }
    cmd.output().unwrap()
}

#[test]
fn stale_allow_is_a_warning_without_strict_and_an_error_with() {
    let root = mini_workspace("basic");

    let lenient = run(&root, &[]);
    assert!(
        lenient.status.success(),
        "stale allow alone must pass the default gate: {}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(
        stderr.contains("unused-allow"),
        "warning should still be printed: {stderr}"
    );

    let strict = run(&root, &["--strict"]);
    assert!(
        !strict.status.success(),
        "--strict must turn the stale allow into a failure"
    );
    assert_eq!(strict.status.code(), Some(1), "lint failures exit 1");
    assert!(
        String::from_utf8_lossy(&strict.stderr).contains("unused-allow"),
        "strict failure names the rule"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn strict_json_output_carries_the_unused_allow_finding() {
    let root = mini_workspace("json");

    let out = run(&root, &["--strict", "--format", "json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"rule\":\"unused-allow\""),
        "json output should carry the finding: {stdout}"
    );
    assert!(
        stdout.contains("\"severity\":\"warning\""),
        "severity stays a warning even when strict fails the run: {stdout}"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn removing_the_stale_marker_passes_strict() {
    let root = mini_workspace("clean");
    let lib = root.join("crates").join("demo").join("src").join("lib.rs");
    let cleaned = fs::read_to_string(&lib)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("allow(no-panic)"))
        .collect::<Vec<_>>()
        .join("\n");
    fs::write(&lib, cleaned + "\n").unwrap();

    let strict = run(&root, &["--strict"]);
    assert!(
        strict.status.success(),
        "clean workspace must pass --strict: {}",
        String::from_utf8_lossy(&strict.stderr)
    );

    fs::remove_dir_all(&root).unwrap();
}
