//! Cross-crate seeds, crate `fix_alpha` — one half of the self-test's
//! two-crate fixture workspace (the other half is `xcrate_beta.rs`,
//! crate `fix_beta`). Every interprocedural rule must fire across the
//! crate boundary at the exact positions pinned in `XCRATE_EXPECTED`,
//! and none of the decoys may fire. The two crates deliberately
//! depend on each other, so the linker's SCC fixpoint is exercised on
//! every self-test run.

use fix_beta::*;

pub struct AlphaShared {
    pub ingest: std::sync::Mutex<u8>,
    pub state: std::sync::Mutex<u8>,
}

// ---- L6: lock-order cycle spanning both crates ----
// This crate contributes the ingest -> catalog edge (catalog is
// acquired inside the call into fix_beta); fix_beta closes the cycle.

pub fn alpha_ingest_then_catalog(s: &AlphaShared) {
    let g = s.ingest.lock();
    fix_beta::catalog_update(s);
    drop(g);
}

pub fn alpha_take_ingest(s: &AlphaShared) {
    let g = s.ingest.lock();
    drop(g);
}

// ---- L7: dispatch reaching raw blocking in the other crate ----

pub fn alpha_dispatch_direct(pool: &AlphaPool) {
    pool.try_run_bounded(2, || {});
    fix_beta::beta_backoff();
}

// The re-export chain: `fix_beta::relay_stall` is a `pub use` of
// `fix_alpha::alpha_stall`, so the blocking site is back in this
// crate even though resolution went through fix_beta.

pub fn alpha_dispatch_reexported(pool: &AlphaPool, rx: &AlphaRx) {
    pool.try_run_bounded(2, || {});
    fix_beta::relay_stall(rx);
}

pub fn alpha_stall(rx: &AlphaRx) {
    let _m = rx.recv();
}

// The glob import: `beta_glob_stall` arrives bare through the
// `use fix_beta::*` at the top of this file.

pub fn alpha_dispatch_glob(pool: &AlphaPool) {
    pool.try_run_bounded(2, || {});
    beta_glob_stall();
}

// ---- L11: guard held across a call that blocks in fix_beta ----

pub fn alpha_hold_guard_across_sync(s: &AlphaShared, f: &BetaFile) {
    let g = s.state.lock();
    fix_beta::beta_sync(f);
    drop(g);
}

// ---- L12: cancellable-dispatched loop, no poll on its path ----

pub fn alpha_cancellable_worker(pool: &AlphaPool, token: &AlphaToken, flag: &AlphaFlag) {
    pool.try_run_stealing_cancellable(|| {}, token);
    while !flag.is_done() {
        fix_beta::beta_churn();
    }
}

// Decoy: the loop polls — but the poll credit arrives through
// fix_beta, which bounces back into this crate (`alpha_poll_gate`),
// completing a crate-dependency cycle the SCC fixpoint must resolve.

pub fn decoy_alpha_worker_polls(pool: &AlphaPool, token: &AlphaToken, flag: &AlphaFlag) {
    pool.try_run_stealing_cancellable(|| {}, token);
    while !flag.is_done() {
        if fix_beta::beta_poll(token) {
            break;
        }
    }
}

pub fn alpha_poll_gate(token: &AlphaToken) -> bool {
    token.is_cancelled()
}

// Decoy: `take` is imported from std, so the workspace fn of the
// same name in fix_beta (which blocks on recv) must NOT resolve —
// std imports are exclusive.

use std::mem::take;

pub fn decoy_alpha_std_import(pool: &AlphaPool, v: &mut Vec<u8>) {
    pool.try_run_bounded(2, || {});
    let _v = take(v);
}
