//! Seeded violations for the teleios-lint self-test. Each rule L1–L5
//! must fire exactly where `FIXTURE_EXPECTED` says — and nowhere
//! else: the decoys below prove the masking, whole-token matching,
//! test-region, and allow-marker logic.

pub enum FixtureError {
    Broken,
}

pub fn l1_thread_spawn() {
    std::thread::spawn(|| {});
}

pub fn l2_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn l2_panic() {
    panic!("boom");
}

pub fn l3_println() {
    println!("tables go through teleios-bench::report");
}

pub fn l5_relaxed(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(std::sync::atomic::Ordering::Relaxed)
}

// ---- decoys: nothing below may produce a finding ----

pub enum CoveredError {
    Known,
}

impl std::fmt::Display for CoveredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "known failure")
    }
}

impl std::error::Error for CoveredError {}

pub fn decoy_masked_text() {
    let _in_string = "thread::spawn(); x.unwrap(); println!(); Ordering::Relaxed";
    let _quote_char = '"';
    let _raw = r#"panic!("raw string")"#;
    // thread::spawn and x.unwrap() in a line comment
    /* println!("block comment") /* nested: panic!() */ */
}

pub fn decoy_whole_tokens(v: Option<u8>) -> u8 {
    v.unwrap_or_else(|| 0)
}

pub fn decoy_allow_marker() {
    // teleios-lint: allow(no-panic) — fixture proves suppression works
    panic!("suppressed by the marker above");
}

pub fn decoy_lifetime<'a>(x: &'a str) -> &'a str {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn decoy_test_code() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        println!("fine inside #[cfg(test)]");
    }
}
