//! Seeded violations for the teleios-lint self-test. Each rule L1–L9
//! must fire exactly where `FIXTURE_EXPECTED` says — line *and*
//! column — and nowhere else: the decoys below prove the masking,
//! whole-token matching, test-region, alias, and allow-marker logic.

pub enum FixtureError {
    Broken,
}

pub fn l1_thread_spawn() {
    std::thread::spawn(|| {});
}

pub fn l2_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn l2_panic() {
    panic!("boom");
}

pub fn l3_println() {
    println!("tables go through teleios-bench::report");
}

pub fn l5_relaxed(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(std::sync::atomic::Ordering::Relaxed)
}

// ---- decoys: nothing below may produce a finding ----

pub enum CoveredError {
    Known,
}

impl std::fmt::Display for CoveredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "known failure")
    }
}

impl std::error::Error for CoveredError {}

pub fn decoy_masked_text() {
    let _in_string = "thread::spawn(); x.unwrap(); println!(); Ordering::Relaxed";
    let _quote_char = '"';
    let _raw = r#"panic!("raw string")"#;
    // thread::spawn and x.unwrap() in a line comment
    /* println!("block comment") /* nested: panic!() */ */
}

pub fn decoy_whole_tokens(v: Option<u8>) -> u8 {
    v.unwrap_or_else(|| 0)
}

pub fn decoy_allow_marker() {
    // teleios-lint: allow(no-panic) — fixture proves suppression works
    panic!("suppressed by the marker above");
}

pub fn decoy_lifetime<'a>(x: &'a str) -> &'a str {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn decoy_test_code() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        println!("fine inside #[cfg(test)]");
    }
}

// ---- L1 through a renamed import: the old line-pattern core ----
// ---- could not see that `fixture_thread` is `std::thread`    ----

use std::thread as fixture_thread;

pub fn l1_aliased_spawn() {
    fixture_thread::spawn(|| {});
}

// ---- L6: two functions acquire the same locks in opposite order ----

pub struct FixtureLocks {
    alpha: std::sync::Mutex<u8>,
    beta: std::sync::Mutex<u8>,
}

impl FixtureLocks {
    pub fn l6_alpha_then_beta(&self) {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        drop(gb);
        drop(ga);
    }

    pub fn l6_beta_then_alpha(&self) {
        let gb = self.beta.lock();
        let ga = self.alpha.lock();
        drop(ga);
        drop(gb);
    }
}

// ---- L7: a pool-dispatched closure blocks without a doorway ----

pub fn l7_blocking_dispatch(pool: &FixturePool) {
    pool.try_run_bounded(2, || {
        std::thread::sleep(std::time::Duration::from_millis(1));
    });
}

// ---- L8: Result<_, FixtureError> silently discarded ----

pub fn fixture_fallible() -> Result<u8, FixtureError> {
    Err(FixtureError::Broken)
}

pub fn l8_swallowed() {
    let _ = fixture_fallible();
}

pub fn l8_ok_discard(store: &FixtureStore) {
    store.refresh().ok();
}

impl FixtureStore {
    fn refresh(&self) -> Result<(), FixtureError> {
        Err(FixtureError::Broken)
    }
}

// ---- unused-allow: a stale waiver that suppresses nothing ----

pub fn unused_allow_marker() {
    // teleios-lint: allow(no-println) — stale: nothing below prints
    let _count = 3;
}

// ---- more decoys: still nothing below may fire ----

pub fn decoy_consistent_locks(locks: &FixtureLocks) {
    let ga = locks.alpha.lock();
    let gb = locks.beta.lock();
    drop(gb);
    drop(ga);
}

pub fn decoy_cancellable_dispatch(pool: &FixturePool, token: &FixtureToken) {
    pool.try_run_bounded(2, || {
        token.sleep_cancellable(std::time::Duration::from_millis(1));
    });
}

pub fn decoy_bound_ok() -> Option<u8> {
    fixture_fallible().ok()
}

pub fn decoy_question_mark() -> Result<u8, FixtureError> {
    let _ = fixture_fallible()?;
    Ok(0)
}

// ---- L7/L5 through the stealing scheduler; plus stealing decoys ----

pub fn l7_blocking_stealing_dispatch(pool: &FixturePool) {
    pool.run_stealing(|| {
        std::thread::sleep(std::time::Duration::from_millis(1));
    });
}

pub fn l5_steal_deque_relaxed(top: &std::sync::atomic::AtomicUsize) -> usize {
    top.load(std::sync::atomic::Ordering::Relaxed)
}

// ---- decoys: stealing-era calls that must stay silent ----

pub fn decoy_cancellable_stealing(pool: &FixturePool, token: &FixtureToken) {
    pool.try_run_stealing_cancellable(
        || {
            token.sleep_cancellable(std::time::Duration::from_millis(1));
        },
        token,
    );
}

pub fn decoy_non_pool_run_with(chain: &FixtureChain) {
    chain.run_with(|| {
        std::thread::sleep(std::time::Duration::from_millis(1));
    });
}

// ---- L9: direct filesystem mutation outside crates/store ----

pub fn l9_fs_write(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, b"bytes")
}

pub fn l9_file_create(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path)
}

pub fn l9_open_options(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).open(path)
}

// ---- L8 on durability barriers: discarded flush/fsync results ----

pub fn l8_swallowed_sync(file: &std::fs::File) {
    let _ = file.sync_all();
}

pub fn l8_flush_discard(sink: &mut FixtureSink) {
    sink.flush().ok();
}

// ---- decoys: reads stay free; the storage doorway's own writes ----
// ---- are policy-exempt; a justified export carries its marker  ----

pub fn decoy_fs_read(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

pub fn decoy_marked_export(path: &std::path::Path) -> std::io::Result<()> {
    // teleios-lint: allow(no-direct-fs) — legacy portal JSON export
    std::fs::write(path, b"{}")
}

pub fn decoy_handled_sync(file: &std::fs::File) -> std::io::Result<()> {
    file.sync_all()
}

pub fn decoy_bound_flush(sink: &mut FixtureSink) -> Option<()> {
    sink.flush().ok()
}

// ---- L10: a transaction opened but not closed on every path ----

pub struct FixtureBackend;

impl FixtureBackend {
    pub fn begin(&self) {}
    pub fn commit(&self) {}
    pub fn rollback(&self) {}
}

pub fn l10_txn_leak_plain(store: &FixtureBackend) {
    store.begin();
    let _work = 1;
}

pub fn l10_txn_leak_question(store: &FixtureBackend) -> Result<(), FixtureError> {
    store.begin();
    fixture_fallible()?;
    store.commit();
    Ok(())
}

// ---- L10 decoys: every path commits or rolls back ----

pub fn decoy_txn_commit(store: &FixtureBackend) {
    store.begin();
    store.commit();
}

pub fn decoy_txn_branch_rollback(store: &FixtureBackend, ok: bool) {
    store.begin();
    if ok {
        store.commit();
    } else {
        store.rollback();
    }
}

pub fn decoy_txn_begin_question(store: &FixtureBackend) -> Result<(), FixtureError> {
    store.begin()?;
    store.commit();
    Ok(())
}

pub fn decoy_txn_question_handled(store: &FixtureBackend) -> Result<(), FixtureError> {
    store.begin();
    if fixture_fallible().is_err() {
        store.rollback();
        return Ok(());
    }
    store.commit();
    Ok(())
}

// ---- L11: an exclusive guard held across a blocking call ----

pub struct FixtureShared {
    state: std::sync::Mutex<u8>,
    table: std::sync::RwLock<u8>,
}

pub fn l11_guard_across_dispatch(shared: &FixtureShared, pool: &FixturePool) {
    let held = shared.state.lock();
    pool.try_run_bounded(2, || {});
    drop(held);
}

pub fn l11_guard_across_aliased_sleep(shared: &FixtureShared) {
    let held = shared.state.lock();
    fixture_thread::sleep(std::time::Duration::from_millis(1));
    drop(held);
}

// ---- L11 decoys: dropped, scoped, or shared guards stay silent ----

pub fn decoy_guard_dropped_before_block(shared: &FixtureShared, pool: &FixturePool) {
    let held = shared.state.lock();
    drop(held);
    pool.try_run_bounded(2, || {});
}

pub fn decoy_guard_scoped(shared: &FixtureShared, pool: &FixturePool) {
    {
        let _held = shared.state.lock();
    }
    pool.try_run_bounded(2, || {});
}

pub fn decoy_read_guard_across(shared: &FixtureShared, pool: &FixturePool) {
    let snap = shared.table.read();
    pool.try_run_bounded(2, || {});
    drop(snap);
}

// ---- L12: a pool-dispatched path spins without polling ----

pub fn l12_dispatch_then_spin(pool: &FixturePool, token: &FixtureToken) {
    pool.try_run_stealing_cancellable(|| {}, token);
    let mut n = 0;
    while n < 1000 {
        n += 1;
    }
}

fn spin_wait(flag: &std::sync::atomic::AtomicBool) {
    while !flag.load(std::sync::atomic::Ordering::SeqCst) {
        std::hint::spin_loop();
    }
}

pub fn l12_dispatch_into_callee(pool: &FixturePool, flag: &std::sync::atomic::AtomicBool) {
    pool.try_run_bounded_cancellable(2, |_c| {});
    spin_wait(flag);
}

// ---- L12 decoys: polling loops, `for` loops, undispatched spins ----

pub fn decoy_loop_polls(pool: &FixturePool, token: &FixtureToken) {
    pool.try_run_bounded_cancellable(2, |_c| {});
    while !token.is_cancelled() {
        std::hint::spin_loop();
    }
}

pub fn decoy_for_loop(pool: &FixturePool) {
    pool.try_run_bounded_cancellable(2, |_c| {});
    for _ in 0..3 {
        std::hint::spin_loop();
    }
}

pub fn decoy_undispatched_spin(flag: &std::sync::atomic::AtomicBool) {
    while !flag.load(std::sync::atomic::Ordering::SeqCst) {
        std::hint::spin_loop();
    }
}
