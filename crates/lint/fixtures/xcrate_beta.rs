//! Cross-crate seeds, crate `fix_beta` — the other half of the
//! self-test's two-crate fixture workspace (see `xcrate_alpha.rs`).
//! Hosts the callee ends of the seeded violations plus the `pub use`
//! re-export chain back into fix_alpha.

pub use fix_alpha::alpha_stall as relay_stall;

// ---- L6: closes the cross-crate lock cycle ----
// catalog -> ingest (ingest is acquired inside the call back into
// fix_alpha); fix_alpha contributes ingest -> catalog.

pub fn catalog_update(s: &fix_alpha::AlphaShared) {
    let g = s.catalog.lock();
    drop(g);
}

pub fn beta_catalog_then_ingest(s: &fix_alpha::AlphaShared) {
    let g = s.catalog.lock();
    fix_alpha::alpha_take_ingest(s);
    drop(g);
}

// ---- L7 callee ends ----

pub fn beta_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn beta_glob_stall(rx: &BetaRx) {
    let _m = rx.recv_timeout(std::time::Duration::from_millis(1));
}

// ---- L11 callee end: blocks on the fsync barrier ----

pub fn beta_sync(f: &BetaFile) -> std::io::Result<()> {
    f.handle.sync_all()
}

// ---- L12 helpers ----

pub fn beta_churn() {
    std::hint::spin_loop();
}

pub fn beta_poll(token: &fix_alpha::AlphaToken) -> bool {
    fix_alpha::alpha_poll_gate(token)
}

// Decoy bait for the std-import exclusivity check in fix_alpha: a
// workspace `take` that blocks. It must stay unreachable from
// `decoy_alpha_std_import`, whose `take` is `std::mem::take`.

pub fn take(rx: &BetaRx) {
    let _m = rx.recv();
}
