//! Table output for the experiment harness binaries.
//!
//! Every `exp_*` binary prints the same shape of report — an
//! `EXPERIMENTS.md` title, a fixed-width column header, data rows, a
//! trailing note — and each used to carry its own copy of the column
//! widths in parallel `println!` format strings, one for the header
//! and one per row kind. A [`Table`] holds the column spec (name,
//! width, alignment) exactly once, so the header and the rows it
//! prints cannot disagree.
//!
//! Cells arrive pre-formatted (`fmt_duration`, `format!("{:.3}", x)`)
//! because precision is per-experiment; only widths and alignment
//! live here.

/// Cell alignment within a fixed-width column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels, names).
    Left,
    /// Pad on the left (numbers, durations).
    Right,
}

/// A fixed-width text table bound to stdout.
#[derive(Debug, Clone)]
pub struct Table {
    cols: Vec<(String, usize, Align)>,
    indent: usize,
}

impl Table {
    /// A table from `(name, width, alignment)` column specs.
    pub fn new(cols: &[(&str, usize, Align)]) -> Table {
        Table::indented(0, cols)
    }

    /// A table whose every line is indented by `indent` spaces (for
    /// per-section sub-tables, as in E2).
    pub fn indented(indent: usize, cols: &[(&str, usize, Align)]) -> Table {
        Table {
            cols: cols.iter().map(|(n, w, a)| (n.to_string(), *w, *a)).collect(),
            indent,
        }
    }

    /// Print the header row (the column names, in the column widths).
    pub fn header(&self) {
        let names: Vec<&str> = self.cols.iter().map(|(n, _, _)| n.as_str()).collect();
        // teleios-lint: allow(no-println) — this module IS the sanctioned stdout channel
        println!("{}", self.line(&names));
    }

    /// Print one data row of pre-formatted cells. Missing trailing
    /// cells print empty; extra cells are ignored.
    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        // teleios-lint: allow(no-println) — this module IS the sanctioned stdout channel
        println!("{}", self.line(cells));
    }

    /// Render one line: each cell padded to its column width, columns
    /// separated by one space, trailing whitespace trimmed.
    fn line<S: AsRef<str>>(&self, cells: &[S]) -> String {
        let mut out = " ".repeat(self.indent);
        for (i, (_, width, align)) in self.cols.iter().enumerate() {
            let cell = cells.get(i).map(|c| c.as_ref()).unwrap_or("");
            if i > 0 {
                out.push(' ');
            }
            match align {
                Align::Left => out.push_str(&format!("{cell:<width$}")),
                Align::Right => out.push_str(&format!("{cell:>width$}")),
            }
        }
        out.truncate(out.trim_end().len());
        out
    }
}

/// Print the experiment headline (followed by a blank line).
pub fn title(text: &str) {
    // teleios-lint: allow(no-println) — this module IS the sanctioned stdout channel
    println!("{text}\n");
}

/// Print a free-form report line (section labels, footnotes).
pub fn note(text: &str) {
    // teleios-lint: allow(no-println) — this module IS the sanctioned stdout channel
    println!("{text}");
}

/// Print a blank separator line.
pub fn blank() {
    // teleios-lint: allow(no-println) — this module IS the sanctioned stdout channel
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Table {
        Table::new(&[("kernel", 8, Align::Left), ("rows", 6, Align::Right), ("t", 9, Align::Right)])
    }

    #[test]
    fn header_and_rows_share_widths() {
        let t = spec();
        assert_eq!(t.line(&["kernel", "rows", "t"]), "kernel     rows         t");
        assert_eq!(t.line(&["select", "1024", "1.20 ms"]), "select     1024   1.20 ms");
        // Same physical column boundaries in both lines.
        assert_eq!(
            t.line(&["kernel", "rows", "t"]).len(),
            t.line(&["select", "1024", "1.20 ms"]).len()
        );
    }

    #[test]
    fn missing_cells_render_empty_and_trim() {
        let t = spec();
        assert_eq!(t.line(&["only"]), "only");
        let none: [&str; 0] = [];
        assert_eq!(t.line(&none), "");
    }

    #[test]
    fn indent_prefixes_every_line() {
        let t = Table::indented(2, &[("a", 3, Align::Right)]);
        assert_eq!(t.line(&["x"]), "    x");
    }

    #[test]
    fn overwide_cells_are_not_truncated() {
        let t = Table::new(&[("n", 3, Align::Right)]);
        assert_eq!(t.line(&["123456"]), "123456");
    }
}
