//! E3 — flagship spatial-query latency vs archive size, with and
//! without the R-tree spatial sidecar.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{build_archive, fmt_duration, spatial_region_query, time_avg};
use teleios_strabon::StrabonConfig;

fn main() {
    report::title("E3: spatial query latency vs archive size (indexed vs scan)");
    let table = Table::new(&[
        ("products", 9, Align::Right),
        ("rows", 7, Align::Right),
        ("indexed", 12, Align::Right),
        ("scan", 12, Align::Right),
        ("speedup", 9, Align::Right),
    ]);
    table.header();
    let query = spatial_region_query();
    for n in [1_000usize, 5_000, 20_000, 50_000] {
        let mut indexed = build_archive(n, 8, StrabonConfig::default());
        let mut scan = build_archive(
            n,
            8,
            StrabonConfig { rdfs_inference: false, optimize_bgp: true, use_spatial_index: false, ..StrabonConfig::default() },
        );
        let rows = indexed.query(&query).expect("warm").len();
        assert_eq!(rows, scan.query(&query).expect("warm").len(), "results must agree");
        let reps = if n <= 5_000 { 5 } else { 2 };
        let t_idx = time_avg(reps, || {
            indexed.query(&query).expect("query");
        });
        let t_scan = time_avg(reps, || {
            scan.query(&query).expect("query");
        });
        table.row(&[
            n.to_string(),
            rows.to_string(),
            fmt_duration(t_idx),
            fmt_duration(t_scan),
            format!("{:.1}x", t_scan.as_secs_f64() / t_idx.as_secs_f64()),
        ]);
    }
}
