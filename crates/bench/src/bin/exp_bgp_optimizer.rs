//! E4 — BGP join-order optimizer ablation: selectivity-ordered vs
//! syntactic pattern order.

use teleios_bench::{bgp_query, build_archive, fmt_duration, time_avg};
use teleios_strabon::StrabonConfig;

fn main() {
    println!("E4: BGP evaluation with and without join-order optimization\n");
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>9}",
        "products", "rows", "optimized", "syntactic", "speedup"
    );
    let query = bgp_query();
    for n in [1_000usize, 5_000, 20_000] {
        let mut optimized = build_archive(n, 0, StrabonConfig::default());
        let mut naive = build_archive(
            n,
            0,
            StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: true },
        );
        let rows = optimized.query(&query).expect("warm").len();
        assert_eq!(rows, naive.query(&query).expect("warm").len(), "results must agree");
        let reps = if n <= 5_000 { 5 } else { 2 };
        let t_opt = time_avg(reps, || {
            optimized.query(&query).expect("query");
        });
        let t_naive = time_avg(reps, || {
            naive.query(&query).expect("query");
        });
        println!(
            "{:>9} {:>7} {:>12} {:>12} {:>8.1}x",
            n,
            rows,
            fmt_duration(t_opt),
            fmt_duration(t_naive),
            t_naive.as_secs_f64() / t_opt.as_secs_f64(),
        );
    }
}
