//! E4 — BGP join-order optimizer ablation: selectivity-ordered vs
//! syntactic pattern order.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{bgp_query, build_archive, fmt_duration, time_avg};
use teleios_strabon::StrabonConfig;

fn main() {
    report::title("E4: BGP evaluation with and without join-order optimization");
    let table = Table::new(&[
        ("products", 9, Align::Right),
        ("rows", 7, Align::Right),
        ("optimized", 12, Align::Right),
        ("syntactic", 12, Align::Right),
        ("speedup", 9, Align::Right),
    ]);
    table.header();
    let query = bgp_query();
    for n in [1_000usize, 5_000, 20_000] {
        let mut optimized = build_archive(n, 0, StrabonConfig::default());
        let mut naive = build_archive(
            n,
            0,
            StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: true, ..StrabonConfig::default() },
        );
        let rows = optimized.query(&query).expect("warm").len();
        assert_eq!(rows, naive.query(&query).expect("warm").len(), "results must agree");
        let reps = if n <= 5_000 { 5 } else { 2 };
        let t_opt = time_avg(reps, || {
            optimized.query(&query).expect("query");
        });
        let t_naive = time_avg(reps, || {
            naive.query(&query).expect("query");
        });
        table.row(&[
            n.to_string(),
            rows.to_string(),
            fmt_duration(t_opt),
            fmt_duration(t_naive),
            format!("{:.1}x", t_naive.as_secs_f64() / t_opt.as_secs_f64()),
        ]);
    }
}
