//! E13b — work-stealing vs static dispatch on skewed morsel costs.
//!
//! E13 shows the pool scaling on *uniform* workloads, where any
//! dispatch policy balances. This harness builds the workload static
//! dispatch is worst at: a quadratic cost ramp over the task index,
//! so contiguous morsel ranges give one worker almost all the work.
//! Three schedules run over the same tasks:
//!
//! * `static-coarse` — one composite task per worker over contiguous
//!   morsels (`WorkerPool::run`), the seed partitioning: the worker
//!   owning the heavy tail becomes the straggler,
//! * `static-fine`   — every fine task through the shared channel
//!   (`WorkerPool::run`): fair, but pays per-task channel traffic,
//! * `stealing`      — fine tasks preloaded into per-worker deques
//!   (`WorkerPool::try_run_stealing`): idle workers steal the heavy
//!   range, and the run's [`PoolStats`] report how many tasks moved.
//!
//! A strabon section runs the E3 spatial query under
//! `Dispatch::Static` and `Dispatch::Stealing` to show the same knob
//! end-to-end (per-binding spatial predicates are mildly skewed, so
//! the gap is smaller than the synthetic ramp's).
//!
//! The deque itself is loom-checked (`crates/exec/tests/loom.rs`:
//! owner/thief last-element race, two-thief race, cancellable steal
//! loop). `--smoke` (or `TELEIOS_SMOKE=1`) runs a seconds-scale
//! variant for `scripts/check.sh`.

use std::hint::black_box;
use teleios_bench::report::{self, Align, Table};
use teleios_bench::{build_archive, fmt_duration, spatial_region_query, time_avg};
use teleios_exec::{morsels, Dispatch, PoolStats, WorkerPool};
use teleios_strabon::StrabonConfig;

/// Spin for `units` of deterministic floating-point work.
fn burn(units: u64) -> f64 {
    let mut acc = 1.0f64;
    for k in 0..units {
        acc += (black_box(acc) * 1.000_000_1 + k as f64).sqrt().fract();
    }
    acc
}

/// Quadratic cost ramp: task `i` of `n` costs `~(i/n)^2 * peak` units,
/// so the last morsel holds the bulk of the work.
fn ramp_weights(n: usize, peak: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let x = (i + 1) as f64 / n as f64;
            (x * x * peak as f64) as u64 + 1
        })
        .collect()
}

fn static_coarse(pool: &WorkerPool, weights: &[u64]) -> f64 {
    let tasks: Vec<_> = morsels(weights.len(), pool.threads())
        .into_iter()
        .map(|r| {
            let w = &weights[r];
            move || w.iter().map(|&u| burn(u)).sum::<f64>()
        })
        .collect();
    pool.run(tasks).into_iter().sum()
}

fn static_fine(pool: &WorkerPool, weights: &[u64]) -> f64 {
    let tasks: Vec<_> = weights.iter().map(|&u| move || burn(u)).collect();
    pool.run(tasks).into_iter().sum()
}

fn stealing(pool: &WorkerPool, weights: &[u64]) -> (f64, PoolStats) {
    let tasks: Vec<_> = weights.iter().map(|&u| move || burn(u)).collect();
    let (results, stats) = pool.try_run_stealing(tasks);
    let sum = results
        .into_iter()
        .map(|r| {
            r.expect("bench task panicked")
        })
        .sum();
    (sum, stats)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("TELEIOS_SMOKE").is_ok_and(|v| v == "1");
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    report::title(&format!(
        "E13b: work-stealing vs static dispatch on a skewed cost ramp{}",
        if smoke { " (smoke)" } else { "" }
    ));
    report::note(&format!(
        "machine parallelism: {machine} (a 1-core host shows ~1.0x everywhere)\n"
    ));

    let (ntasks, peak, reps) = if smoke { (96usize, 60_000u64, 2usize) } else { (256, 400_000, 3) };
    let weights = ramp_weights(ntasks, peak);

    report::note(&format!(
        "synthetic ramp: {ntasks} tasks, cost(i) ~ (i/n)^2, peak {peak} units"
    ));
    let table = Table::new(&[
        ("threads", 7, Align::Right),
        ("static-coarse", 13, Align::Right),
        ("static-fine", 12, Align::Right),
        ("stealing", 12, Align::Right),
        ("steal%", 7, Align::Right),
        ("coarse/steal", 12, Align::Right),
    ]);
    table.header();

    let mut best_gain = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::with_threads(threads);
        let t_coarse = time_avg(reps, || {
            black_box(static_coarse(&pool, &weights));
        });
        let t_fine = time_avg(reps, || {
            black_box(static_fine(&pool, &weights));
        });
        let mut stats = PoolStats::default();
        let t_steal = time_avg(reps, || {
            let (sum, s) = stealing(&pool, &weights);
            black_box(sum);
            stats = s;
        });
        let gain = t_coarse.as_secs_f64() / t_steal.as_secs_f64().max(f64::EPSILON);
        if threads > 1 {
            best_gain = best_gain.max(gain);
        }
        table.row(&[
            threads.to_string(),
            fmt_duration(t_coarse),
            fmt_duration(t_fine),
            fmt_duration(t_steal),
            format!("{:.0}%", stats.steal_ratio() * 100.0),
            format!("{gain:.2}x"),
        ]);
    }

    report::blank();
    report::note(&format!(
        "best stealing gain over the coarse static split: {best_gain:.2}x \
         (acceptance: >1x on any multi-core host; ~1x on 1 core)"
    ));

    // --- strabon end-to-end: dispatch knob on the E3 spatial query ----
    report::blank();
    let (products, sites) = if smoke { (400usize, 20usize) } else { (2000, 50) };
    report::note(&format!(
        "strabon E3 spatial query, {products} products (one hotspot binding per \
         product, crossing the parallel threshold of {}):",
        teleios_strabon::eval::PAR_BINDING_THRESHOLD
    ));
    let q = spatial_region_query();
    let table = Table::new(&[
        ("dispatch", 10, Align::Left),
        ("time", 12, Align::Right),
        ("rows", 8, Align::Right),
    ]);
    table.header();
    let mut counts = Vec::new();
    for (label, dispatch) in [("static", Dispatch::Static), ("stealing", Dispatch::Stealing)] {
        let mut db = build_archive(
            products,
            sites,
            StrabonConfig { dispatch, ..StrabonConfig::default() },
        );
        // Warm the sidecar so the timed loop measures query evaluation.
        let n = db.query(&q).expect("fixture query").len();
        counts.push(n);
        let t = time_avg(if smoke { 2 } else { 5 }, || {
            let got = db.query(&q).expect("fixture query");
            assert_eq!(got.len(), n);
        });
        table.row(&[label.to_string(), fmt_duration(t), n.to_string()]);
    }
    assert_eq!(counts[0], counts[1], "dispatch policy changed query results");

    report::blank();
    report::note(
        "Both dispatch policies return identical rows (asserted above; \
         property-tested in crates/strabon/tests/parallel_equivalence.rs).",
    );
}
