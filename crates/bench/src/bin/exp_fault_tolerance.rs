//! E12 — fault-tolerant batch execution under injected faults.
//!
//! A 50-scene `run_chain_batch` under seeded fault plans at increasing
//! fault rates, against the all-or-nothing `run_many` baseline. The
//! supervised batch should deliver every recoverable scene (transient
//! faults retried, classifier/georef faults degraded) and lose only the
//! genuinely unrecoverable ones (worker panics, corrupted archives),
//! while the baseline loses the entire batch as soon as one fault
//! lands. Prints the table recorded in EXPERIMENTS.md.

use teleios_bench::report::{self, Align, Table};
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::raster::GeoTransform;
use teleios_ingest::seviri::FireEvent;
use teleios_noa::{accuracy, HotspotClassifier, ProcessingChain};
use teleios_resilience::{FaultPlan, RetryPolicy, Supervisor};

const SCENES: usize = 50;
const SEED: u64 = 4242;

fn acquire_scenes(obs: &mut Observatory, n: usize) -> Vec<String> {
    let center = obs.region().center();
    (0..n)
        .map(|i| {
            let spec = AcquisitionSpec {
                seed: 5000 + i as u64,
                rows: 32,
                cols: 32,
                acquisition: format!("2007-08-25T{:02}:{:02}:00Z", i / 4, (i % 4) * 15),
                satellite: "MSG2".into(),
                fires: vec![FireEvent {
                    center: Coord::new(center.x - 0.3, center.y + 0.2),
                    radius: 0.08,
                    intensity: 0.9,
                }],
                cloud_cover: 0.0,
                glint_rate: 0.0,
            };
            obs.acquire_scene(&spec).expect("acquisition")
        })
        .collect()
}

fn supervised_chain(obs: &Observatory, plan: &FaultPlan) -> ProcessingChain {
    ProcessingChain {
        classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
        target_grid: Some((GeoTransform::fit(&obs.region(), 32, 32), 32, 32)),
        ..ProcessingChain::operational()
    }
    .with_stage_hook(plan.chain_hook())
}

fn main() {
    report::title("E12: supervised 50-scene batch vs all-or-nothing, under seeded fault plans");
    let table = Table::new(&[
        ("rate", 5, Align::Right),
        ("faulted", 7, Align::Right),
        ("ok", 4, Align::Right),
        ("retried", 7, Align::Right),
        ("degraded", 8, Align::Right),
        ("failed", 6, Align::Right),
        ("healthy_lost", 12, Align::Right),
        ("recall", 7, Align::Right),
        ("batch", 9, Align::Right),
        ("baseline", 14, Align::Right),
    ]);
    table.header();
    for rate in [0.0, 0.1, 0.2, 0.3] {
        // A fresh observatory per rate: fault plans corrupt the archive.
        let mut obs = Observatory::with_defaults(99);
        let ids = acquire_scenes(&mut obs, SCENES);
        let plan = FaultPlan::seeded(SEED, &ids, rate);
        plan.apply_to_repository(obs.vault.repository_mut());

        let chain = supervised_chain(&obs, &plan);
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(2));
        let report = obs.run_chain_batch(&ids, &chain, &supervisor).expect("batch");

        let healthy_lost = report
            .scenes
            .iter()
            .filter(|s| plan.fault_for(&s.product_id).is_none() && !s.outcome.succeeded())
            .count();

        // Mean recall of the delivered products against ground truth —
        // degraded products count, so this shows what graceful
        // degradation costs in accuracy.
        let mut recalls = Vec::new();
        for scene in &report.scenes {
            if let Some(output) = &scene.output {
                let truth = obs.truth_for(&scene.product_id).expect("truth");
                if let Ok(acc) = accuracy::score(&output.mask, &truth) {
                    recalls.push(acc.recall());
                }
            }
        }
        let mean_recall = if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        };

        // Baseline: the pre-supervision all-or-nothing path over the
        // loadable scenes, with a fresh hook (fresh transient
        // counters). One fault anywhere loses the whole batch.
        let mut base_obs = Observatory::with_defaults(99);
        let base_ids = acquire_scenes(&mut base_obs, SCENES);
        let base_plan = FaultPlan::seeded(SEED, &base_ids, rate);
        base_plan.apply_to_repository(base_obs.vault.repository_mut());
        let base_chain = supervised_chain(&base_obs, &base_plan);
        let mut loaded = Vec::new();
        for id in &base_ids {
            if let Ok(raster) = base_obs.raster_for(id) {
                loaded.push((id.clone(), raster));
            }
        }
        let baseline = match base_chain.run_many(&base_obs.db, &loaded) {
            Ok(outputs) if loaded.len() == SCENES => format!("{} products", outputs.len()),
            Ok(outputs) => format!("{} products*", outputs.len()),
            Err(_) => "batch lost".to_string(),
        };

        table.row(&[
            format!("{:.0}%", rate * 100.0),
            plan.len().to_string(),
            report.ok_count().to_string(),
            report.retried_count().to_string(),
            report.degraded_count().to_string(),
            report.failed_count().to_string(),
            healthy_lost.to_string(),
            format!("{mean_recall:.3}"),
            teleios_bench::fmt_duration(report.wall_clock),
            baseline,
        ]);
    }
    report::note("\n(*: corrupted scenes already lost at vault load, before the baseline ran)");
}
