//! E6 — declarative SciQL image operations vs hand-coded array loops,
//! quantifying the overhead of running the NOA chain inside the query
//! language (paper §1 claims the chain can live in SciQL; this measures
//! what that costs).

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fmt_duration, time_avg};
use teleios_monet::array::NdArray;
use teleios_monet::Catalog;
use teleios_sciql::{execute, ops};

fn image(size: usize) -> NdArray {
    NdArray::matrix(size, size, (0..size * size).map(|v| 290.0 + (v % 64) as f64).collect())
        .expect("image")
}

fn main() {
    report::title("E6: SciQL statement vs native array code (same result checked)");
    let table = Table::new(&[
        ("size", 6, Align::Right),
        ("operation", 26, Align::Left),
        ("sciql", 12, Align::Right),
        ("native", 12, Align::Right),
        ("overhead", 9, Align::Right),
    ]);
    table.header();
    for size in [128usize, 256, 512, 1024] {
        let img = image(size);
        let cat = Catalog::new();
        cat.put_array("img", img.clone());
        let reps = if size <= 256 { 10 } else { 3 };

        // Classification.
        let sciql_q = "SELECT CASE WHEN v > 318 THEN 1 ELSE 0 END FROM img";
        let via_sciql = execute(&cat, sciql_q).expect("sciql").array().expect("array");
        let via_native = ops::classify_threshold(&img, 318.0);
        assert_eq!(via_sciql, via_native, "results must agree");
        let t_s = time_avg(reps, || {
            execute(&cat, sciql_q).expect("sciql");
        });
        let t_n = time_avg(reps, || {
            ops::classify_threshold(&img, 318.0);
        });
        table.row(&[
            format!("{size}²"),
            "threshold classify".to_string(),
            fmt_duration(t_s),
            fmt_duration(t_n),
            format!("{:.1}x", t_s.as_secs_f64() / t_n.as_secs_f64()),
        ]);

        // Tiled aggregation (patch means).
        let tile_q = "SELECT AVG(v) FROM img GROUP BY TILES [16, 16]";
        let via_sciql = execute(&cat, tile_q).expect("sciql").array().expect("array");
        let via_native = ops::tile_mean(&img, 16).expect("tile mean");
        assert_eq!(via_sciql, via_native, "results must agree");
        let t_s = time_avg(reps, || {
            execute(&cat, tile_q).expect("sciql");
        });
        let t_n = time_avg(reps, || {
            ops::tile_mean(&img, 16).expect("tile mean");
        });
        table.row(&[
            "".to_string(),
            "16x16 tile mean".to_string(),
            fmt_duration(t_s),
            fmt_duration(t_n),
            format!("{:.1}x", t_s.as_secs_f64() / t_n.as_secs_f64()),
        ]);

        // Calibration (scale + offset).
        let cal_q = "SELECT v * 1.02 + 1.5 FROM img";
        let t_s = time_avg(reps, || {
            execute(&cat, cal_q).expect("sciql");
        });
        let t_n = time_avg(reps, || {
            ops::calibrate(&img, 1.02, 1.5);
        });
        table.row(&[
            "".to_string(),
            "radiometric calibrate".to_string(),
            fmt_duration(t_s),
            fmt_duration(t_n),
            format!("{:.1}x", t_s.as_secs_f64() / t_n.as_secs_f64()),
        ]);
    }
}
