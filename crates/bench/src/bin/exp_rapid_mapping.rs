//! E10 — fire-map generation latency vs region size and linked-data
//! volume (the rapid-mapping service of demo scenario 2).

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fmt_duration, time_avg};
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::{Coord, Envelope};
use teleios_ingest::seviri::FireEvent;
use teleios_linked::world::WorldSpec;
use teleios_noa::ProcessingChain;

fn main() {
    report::title("E10: rapid-mapping fire-map generation latency");
    let table = Table::new(&[
        ("places", 8, Align::Right),
        ("region", 12, Align::Right),
        ("features", 10, Align::Right),
        ("latency", 12, Align::Right),
        ("layers", 10, Align::Right),
    ]);
    table.header();
    for n_places in [25usize, 100, 400] {
        let mut obs = Observatory::new(WorldSpec {
            seed: 42,
            num_places: n_places,
            num_roads: n_places / 2,
            ..WorldSpec::default()
        });
        let center = obs.region().center();
        let spec = AcquisitionSpec {
            seed: 3,
            rows: 96,
            cols: 96,
            acquisition: "2007-08-25T12:00:00Z".into(),
            satellite: "MSG2".into(),
            fires: vec![FireEvent { center, radius: 0.09, intensity: 0.9 }],
            cloud_cover: 0.0,
            glint_rate: 0.01,
        };
        let id = obs.acquire_scene(&spec).expect("acquire");
        obs.run_chain(&id, &ProcessingChain::operational()).expect("chain");
        obs.refine_products().expect("refine");

        for half in [0.25f64, 0.75, 1.5] {
            let region = Envelope::new(
                Coord::new(center.x - half, center.y - half),
                Coord::new(center.x + half, center.y + half),
            );
            let map = obs.fire_map(&region).expect("map");
            let t = time_avg(3, || {
                obs.fire_map(&region).expect("map");
            });
            table.row(&[
                n_places.to_string(),
                format!("{:.2}°", half * 2.0),
                map.num_features().to_string(),
                fmt_duration(t),
                map.layers.len().to_string(),
            ]);
        }
    }
}
