//! E14 — deadline budgets against hung stages.
//!
//! A batch of scenes where a seeded fraction hangs at the classify
//! stage, swept over per-attempt deadline budgets. Without a budget a
//! single wedged stage holds its worker for the full hang; with one,
//! the watchdog cancels the attempt at the stage boundary, the retry
//! and degraded ladder take over, and the per-variant circuit breaker
//! stops the batch from burning budget on a variant that keeps timing
//! out. The table shows the trade: a loose budget recovers hung scenes
//! by out-waiting them, a tight budget bounds batch wall-clock and
//! loses only the hung scenes — never a healthy one.
//!
//! `--smoke` (or `TELEIOS_SMOKE=1`) runs a seconds-scale variant used
//! by `scripts/check.sh` as a hang-regression gate.

use std::time::Duration;
use teleios_bench::report::{self, Align, Table};
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::raster::GeoTransform;
use teleios_ingest::seviri::FireEvent;
use teleios_noa::chain::ChainStage;
use teleios_noa::{HotspotClassifier, ProcessingChain};
use teleios_resilience::{Fault, FaultPlan, RetryPolicy, StageBudget, Supervisor};

const SEED: u64 = 1414;

fn acquire_scenes(obs: &mut Observatory, n: usize) -> Vec<String> {
    let center = obs.region().center();
    (0..n)
        .map(|i| {
            let spec = AcquisitionSpec {
                seed: 7000 + i as u64,
                rows: 32,
                cols: 32,
                acquisition: format!("2007-08-25T{:02}:{:02}:00Z", i / 4, (i % 4) * 15),
                satellite: "MSG2".into(),
                fires: vec![FireEvent {
                    center: Coord::new(center.x - 0.3, center.y + 0.2),
                    radius: 0.08,
                    intensity: 0.9,
                }],
                cloud_cover: 0.0,
                glint_rate: 0.0,
            };
            obs.acquire_scene(&spec).expect("acquisition")
        })
        .collect()
}

fn chain_under_test(obs: &Observatory, plan: &FaultPlan) -> ProcessingChain {
    ProcessingChain {
        classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
        target_grid: Some((GeoTransform::fit(&obs.region(), 32, 32), 32, 32)),
        ..ProcessingChain::operational()
    }
    .with_stage_hook(plan.chain_hook())
}

fn budget_label(budget: &StageBudget) -> String {
    if budget.is_unlimited() {
        "unlimited".to_string()
    } else {
        teleios_bench::fmt_duration(budget.hard_scene)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("TELEIOS_SMOKE").is_ok_and(|v| v == "1");

    let (scenes, hang, budgets, rates): (usize, Duration, Vec<StageBudget>, Vec<f64>) = if smoke {
        (
            6,
            Duration::from_millis(200),
            vec![
                StageBudget::hard(Duration::from_millis(600)),
                StageBudget::hard(Duration::from_millis(80)),
            ],
            vec![0.0, 0.3],
        )
    } else {
        (
            18,
            Duration::from_millis(400),
            vec![
                StageBudget::unlimited(),
                StageBudget::hard(Duration::from_millis(1200)),
                StageBudget::hard(Duration::from_millis(100)),
            ],
            vec![0.0, 0.2, 0.4],
        )
    };

    report::title(&format!(
        "E14: {scenes}-scene batch, classify-stage hangs of {}, per-attempt deadline sweep{}",
        teleios_bench::fmt_duration(hang),
        if smoke { " (smoke)" } else { "" },
    ));
    let table = Table::new(&[
        ("budget", 9, Align::Right),
        ("rate", 5, Align::Right),
        ("faulted", 7, Align::Right),
        ("ok", 4, Align::Right),
        ("retried", 7, Align::Right),
        ("degraded", 8, Align::Right),
        ("timeout", 7, Align::Right),
        ("failed", 6, Align::Right),
        ("healthy_lost", 12, Align::Right),
        ("batch", 9, Align::Right),
    ]);
    table.header();

    for budget in &budgets {
        for &rate in &rates {
            // Fresh observatory per cell: products republish into the
            // vault and plans mutate the archive.
            let mut obs = Observatory::with_defaults(99);
            let ids = acquire_scenes(&mut obs, scenes);
            let palette = [Fault::Hang { stage: ChainStage::Classify, duration: hang }];
            let plan = FaultPlan::seeded_with(SEED, &ids, rate, &palette);
            plan.apply_to_repository(obs.vault.repository_mut());

            let chain = chain_under_test(&obs, &plan);
            let supervisor = Supervisor::new(RetryPolicy::no_backoff(1)).with_budget(*budget);
            let report = obs.run_chain_batch(&ids, &chain, &supervisor).expect("batch");

            let healthy_lost = report
                .scenes
                .iter()
                .filter(|s| plan.fault_for(&s.product_id).is_none() && !s.outcome.succeeded())
                .count();

            table.row(&[
                budget_label(budget),
                format!("{:.0}%", rate * 100.0),
                plan.len().to_string(),
                report.ok_count().to_string(),
                report.retried_count().to_string(),
                report.degraded_count().to_string(),
                report.timeout_count().to_string(),
                report.failed_count().to_string(),
                healthy_lost.to_string(),
                teleios_bench::fmt_duration(report.wall_clock),
            ]);

            assert_eq!(
                healthy_lost, 0,
                "deadline supervision lost a healthy scene (budget {}, rate {rate})",
                budget_label(budget)
            );
        }
    }
    report::note(
        "\n(a loose budget out-waits hung stages; a tight one bounds batch wall-clock and\n\
         converts each hung scene into a recorded Timeout instead of a wedged worker)",
    );
}
