//! E16 — durable storage engine: ingest → crash → recover loops.
//!
//! Three sections against `teleios-store`'s `DurableBackend` over the
//! fault-injectable in-memory medium:
//!
//! 1. **Recovery scaling** — N single-scene commits, then a power
//!    cycle; recovery time and replayed-record counts with pure WAL
//!    replay (`snapshot_every: None`) vs the default periodic
//!    snapshots. Every run asserts the recovered keyspace state is
//!    bit-identical to the pre-crash committed state.
//! 2. **Durability fault kinds** — each `DURABILITY_KINDS` palette
//!    entry (torn write, short fsync, crash point) armed through
//!    `Fault::write_fault` on the commit of transaction N+1; recovery
//!    must land exactly on transaction N's state.
//! 3. **Domain round-trip** — an RDF triple store, the vault catalog
//!    + quarantine, and a MonetDB-style table catalog persisted
//!    through the same backend, crashed, recovered, and compared for
//!    exact equality via their canonical re-encodings.
//!
//! `--smoke` (or `TELEIOS_SMOKE=1`) runs a seconds-scale variant used
//! by `scripts/check.sh`.

use std::collections::BTreeSet;
use std::time::Instant;

use teleios_bench::report::{self, Align, Table};
use teleios_monet::table::ColumnDef;
use teleios_monet::{Catalog, DataType, Value};
use teleios_rdf::store::TripleStore;
use teleios_rdf::term::Term;
use teleios_resilience::DURABILITY_KINDS;
use teleios_store::{
    full_state, DurableBackend, DurableConfig, MemMedium, MemoryBackend, StorageBackend,
};
use teleios_vault::catalog::{FileRecord, VaultCatalog};

/// One synthetic ingest transaction: a catalog record plus a triple
/// page, keyed by scene index — the shape a vault registration
/// produces.
fn ingest_txn(backend: &mut dyn StorageBackend, i: u64) {
    backend.begin().expect("begin");
    let key = format!("scene-{i:06}");
    let meta = format!("MSG2/2007-08-25T{:02}:{:02}:00Z sev1 32x32", i / 60 % 24, i % 60);
    backend.put("vault/catalog", key.as_bytes(), meta.as_bytes()).expect("put");
    backend
        .put("rdf/spo", &i.to_be_bytes(), format!("hotspot-{i}").as_bytes())
        .expect("put");
    backend.commit().expect("commit");
}

/// Run `txns` ingest commits, power-cycle the medium, reopen, and
/// report `(recovery, wal_bytes, exact)` — `exact` is the
/// bit-identical state comparison.
fn crash_recover(
    txns: u64,
    config: DurableConfig,
) -> (teleios_store::RecoveryReport, usize, std::time::Duration, bool) {
    let mut backend = DurableBackend::open(MemMedium::new(), config).expect("open");
    for i in 0..txns {
        ingest_txn(&mut backend, i);
    }
    let committed = full_state(&backend).expect("state");
    let mut medium = backend.into_medium();
    let wal_bytes = medium.durable_len(teleios_store::wal::WAL_FILE);
    medium.crash();
    let t0 = Instant::now();
    let recovered = DurableBackend::open(medium, config).expect("recover");
    let elapsed = t0.elapsed();
    let exact = full_state(&recovered).expect("state") == committed;
    (recovered.recovery().clone(), wal_bytes, elapsed, exact)
}

fn section_scaling(scales: &[u64]) {
    report::note("\nRecovery scaling: N commits, power cycle, reopen.");
    let table = Table::new(&[
        ("commits", 7, Align::Right),
        ("mode", 10, Align::Left),
        ("wal", 9, Align::Right),
        ("snap_seq", 8, Align::Right),
        ("replayed", 8, Align::Right),
        ("records", 8, Align::Right),
        ("recovery", 9, Align::Right),
        ("exact", 5, Align::Right),
    ]);
    table.header();
    for &txns in scales {
        for (mode, config) in [
            ("replay-only", DurableConfig { snapshot_every: None, ..DurableConfig::default() }),
            ("snapshots", DurableConfig::default()),
        ] {
            let (recovery, wal_bytes, elapsed, exact) = crash_recover(txns, config);
            table.row(&[
                txns.to_string(),
                mode.to_string(),
                format!("{} B", wal_bytes),
                recovery.snapshot_seq.to_string(),
                recovery.transactions_replayed.to_string(),
                recovery.records_scanned.to_string(),
                teleios_bench::fmt_duration(elapsed),
                if exact { "yes" } else { "NO" }.to_string(),
            ]);
            assert!(exact, "recovery must reproduce the committed state exactly");
        }
    }
}

fn section_fault_kinds(committed: u64) {
    report::note(
        "\nDurability faults armed on the next commit: recovery lands on the last durable state.",
    );
    let table = Table::new(&[
        ("fault", 12, Align::Left),
        ("commit", 8, Align::Left),
        ("truncated", 9, Align::Right),
        ("replayed", 8, Align::Right),
        ("exact", 5, Align::Right),
    ]);
    table.header();
    for fault in DURABILITY_KINDS {
        let config = DurableConfig { snapshot_every: None, ..DurableConfig::default() };
        let mut backend = DurableBackend::open(MemMedium::new(), config).expect("open");
        for i in 0..committed {
            ingest_txn(&mut backend, i);
        }
        let expected = full_state(&backend).expect("state");
        let write_fault = fault.write_fault().expect("durability kind");
        backend.medium_mut().arm(write_fault);
        backend.begin().expect("begin");
        backend.put("vault/catalog", b"in-flight", b"never-acknowledged").expect("put");
        let commit = backend.commit();
        let mut medium = backend.into_medium();
        medium.crash();
        let recovered = DurableBackend::open(medium, config).expect("recover");
        // The torn-write keep window (12 B) is shorter than any commit
        // frame here, so every kind must recover state N exactly and
        // never resurrect the unacknowledged transaction.
        let exact = full_state(&recovered).expect("state") == expected
            && recovered.get("vault/catalog", b"in-flight").expect("get").is_none();
        table.row(&[
            fault.label().to_string(),
            if commit.is_err() { "rejected" } else { "ok" }.to_string(),
            recovered
                .recovery()
                .wal_truncated
                .map(|b| format!("{b} B"))
                .unwrap_or_else(|| "-".to_string()),
            recovered.recovery().transactions_replayed.to_string(),
            if exact { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(commit.is_err(), "a faulted barrier must not acknowledge the commit");
        assert!(exact, "recovery must land on the last durable state");
    }
}

fn sample_domains(n: u64) -> (TripleStore, VaultCatalog, BTreeSet<String>, Catalog) {
    let mut triples = TripleStore::new();
    for i in 0..n {
        triples.insert_terms(
            &Term::iri(&format!("http://teleios.example/scene/{i}")),
            &Term::iri("http://teleios.example/hasHotspots"),
            &Term::typed_literal(
                &format!("{}", i % 7),
                "http://www.w3.org/2001/XMLSchema#integer",
            ),
        );
    }
    let mut catalog = VaultCatalog::new();
    let mut quarantine = BTreeSet::new();
    for i in 0..n {
        catalog.register(FileRecord {
            name: format!("msg2-{i:06}.sev1"),
            format: "sev1".into(),
            size_bytes: 4096 + i as usize,
            bbox: Some((21.0, 36.0, 24.0, 39.0)),
            acquisition: Some(format!("2007-08-25T{:02}:{:02}:00Z", i / 60 % 24, i % 60)),
            shape: vec![4, 32, 32],
        });
        if i % 17 == 0 {
            quarantine.insert(format!("msg2-{i:06}.sev1"));
        }
    }
    let db = Catalog::new();
    db.create_table(
        "hotspots",
        vec![
            ColumnDef { name: "id".into(), ty: DataType::Int },
            ColumnDef { name: "temp".into(), ty: DataType::Double },
            ColumnDef { name: "sensor".into(), ty: DataType::Str },
        ],
    )
    .expect("create table");
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| {
            vec![
                Value::Int(i),
                if i % 11 == 0 { Value::Null } else { Value::Double(300.0 + i as f64 / 8.0) },
                Value::Str(format!("MSG2-{}", i % 4)),
            ]
        })
        .collect();
    db.insert("hotspots", rows).expect("insert");
    (triples, catalog, quarantine, db)
}

/// Canonical fingerprint of the three domain states: persist them into
/// a fresh in-memory backend and take its full keyspace map.
fn fingerprint(
    triples: &TripleStore,
    catalog: &VaultCatalog,
    quarantine: &BTreeSet<String>,
    db: &Catalog,
) -> teleios_store::KeyspaceState {
    let mut mem = MemoryBackend::new();
    teleios_rdf::persist::save_triple_store(triples, &mut mem).expect("rdf save");
    teleios_vault::persist::save_vault_state(catalog, quarantine, &mut mem).expect("vault save");
    teleios_monet::persist::save_catalog(db, &mut mem).expect("monet save");
    full_state(&mem).expect("state")
}

fn section_domains(n: u64) {
    report::note("\nDomain round-trip: rdf + vault + monet persisted, crashed, recovered.");
    let (triples, catalog, quarantine, db) = sample_domains(n);
    let mut backend =
        DurableBackend::open(MemMedium::new(), DurableConfig::default()).expect("open");
    teleios_rdf::persist::save_triple_store(&triples, &mut backend).expect("rdf save");
    teleios_vault::persist::save_vault_state(&catalog, &quarantine, &mut backend)
        .expect("vault save");
    teleios_monet::persist::save_catalog(&db, &mut backend).expect("monet save");
    let mut medium = backend.into_medium();
    medium.crash();
    let t0 = Instant::now();
    let recovered = DurableBackend::open(medium, DurableConfig::default()).expect("recover");
    let elapsed = t0.elapsed();

    let loaded_triples =
        teleios_rdf::persist::load_triple_store(&recovered).expect("rdf load").expect("present");
    let (loaded_catalog, loaded_quarantine) =
        teleios_vault::persist::load_vault_state(&recovered).expect("vault load").expect("present");
    let loaded_db =
        teleios_monet::persist::load_catalog(&recovered).expect("monet load").expect("present");
    let exact = fingerprint(&triples, &catalog, &quarantine, &db)
        == fingerprint(&loaded_triples, &loaded_catalog, &loaded_quarantine, &loaded_db);

    let table = Table::new(&[
        ("triples", 7, Align::Right),
        ("files", 6, Align::Right),
        ("fenced", 6, Align::Right),
        ("rows", 6, Align::Right),
        ("entries", 7, Align::Right),
        ("recovery", 9, Align::Right),
        ("exact", 5, Align::Right),
    ]);
    table.header();
    table.row(&[
        loaded_triples.len().to_string(),
        loaded_catalog.len().to_string(),
        loaded_quarantine.len().to_string(),
        loaded_db.table("hotspots").expect("table").num_rows().to_string(),
        recovered.recovery().recovered_entries.to_string(),
        teleios_bench::fmt_duration(elapsed),
        if exact { "yes" } else { "NO" }.to_string(),
    ]);
    assert!(exact, "domain states must survive the crash bit-identically");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("TELEIOS_SMOKE").is_ok_and(|v| v == "1");
    report::title(&format!(
        "E16: durable storage engine — ingest, crash, recover{}",
        if smoke { " (smoke)" } else { "" }
    ));
    let scales: &[u64] = if smoke { &[50, 200] } else { &[200, 1_000, 5_000] };
    section_scaling(scales);
    section_fault_kinds(if smoke { 5 } else { 25 });
    section_domains(if smoke { 200 } else { 2_000 });
    report::note("\n(every row asserts exact = yes: recovery reproduced the committed state bit-for-bit)");
}
