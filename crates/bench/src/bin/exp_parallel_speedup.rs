//! E13 — morsel-driven parallel execution: threads × input-size sweep.
//!
//! Measures the worker-pool speedup of the parallel operators over
//! their sequential (one-thread) twins, which are bit-identical by
//! construction (see `crates/monet/tests/parallel_equivalence.rs`):
//!
//! * monet candidate-list selection (`Column::par_select`),
//! * monet group-by aggregation (`exec::aggregate_with`),
//! * monet hash join (`exec::hash_join_with`),
//! * SciQL/NdArray reduce (`NdArray::sum_with`) and map
//!   (`NdArray::map_with`) — the kernels under every per-pixel NOA
//!   chain stage.
//!
//! Speedups only materialize when the host exposes real cores: the
//! harness prints the machine's available parallelism so a ~1.0×
//! result on a single-core container reads as expected, not broken.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fmt_duration, time_avg};
use teleios_exec::WorkerPool;
use teleios_monet::array::NdArray;
use teleios_monet::column::{CmpOp, Column};
use teleios_monet::exec::{aggregate_with, hash_join_with, AggSpec, Chunk};
use teleios_monet::sql::ast::{AggFunc, Expr};
use teleios_monet::value::Value;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic value stream (splitmix64), so every pool size sees
/// the same workload without a rand dependency in the hot loop.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn double(&mut self) -> f64 {
        (self.next() % 2_000_000) as f64 / 1000.0 - 1000.0
    }

    fn int(&mut self, modulus: u64) -> i64 {
        (self.next() % modulus) as i64
    }
}

fn doubles(seed: u64, n: usize) -> Vec<f64> {
    let mut mix = Mix(seed);
    (0..n).map(|_| mix.double()).collect()
}

struct Row {
    kernel: &'static str,
    size: usize,
    times: Vec<std::time::Duration>,
}

impl Row {
    fn print(&self, table: &Table) {
        let t1 = self.times[0].as_secs_f64();
        let mut cells = vec![self.kernel.to_string(), self.size.to_string()];
        cells.extend(self.times.iter().map(|t| fmt_duration(*t)));
        cells.push(format!("{:.2}x", t1 / self.times[2].as_secs_f64()));
        table.row(&cells);
    }
}

fn sweep(kernel: &'static str, size: usize, reps: usize, mut f: impl FnMut(&WorkerPool)) -> Row {
    let times = THREADS
        .iter()
        .map(|&t| {
            let pool = WorkerPool::with_threads(t);
            time_avg(reps, || f(&pool))
        })
        .collect();
    Row { kernel, size, times }
}

fn main() {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    report::title("E13: morsel-driven parallel speedup (threads 1/2/4/8)");
    report::note(&format!(
        "machine parallelism: {machine} (speedups flatten at this bound; \
         a 1-core host shows ~1.0x everywhere)\n"
    ));
    let table = Table::new(&[
        ("kernel", 16, Align::Left),
        ("rows", 9, Align::Right),
        ("t=1", 10, Align::Right),
        ("t=2", 10, Align::Right),
        ("t=4", 10, Align::Right),
        ("t=8", 10, Align::Right),
        ("x@4", 10, Align::Right),
    ]);
    table.header();

    let mut rows: Vec<Row> = Vec::new();

    // --- monet: candidate-list selection -----------------------------
    for n in [262_144usize, 1_048_576, 4_194_304] {
        let column = Column::from_doubles(doubles(1, n));
        let needle = Value::Double(0.0);
        let expect = column.select(CmpOp::Gt, &needle, None).expect("select");
        let reps = if n >= 4_194_304 { 3 } else { 5 };
        rows.push(sweep("select", n, reps, |pool| {
            let got = column.par_select(CmpOp::Gt, &needle, None, pool).expect("par_select");
            assert_eq!(got.len(), expect.len());
        }));
        rows.last().expect("row").print(&table);
    }

    // --- monet: group-by aggregation ---------------------------------
    for n in [262_144usize, 1_048_576, 4_194_304] {
        let mut mix = Mix(2);
        let keys: Vec<i64> = (0..n).map(|_| mix.int(64)).collect();
        let vals: Vec<f64> = (0..n).map(|_| mix.double()).collect();
        let chunk = Chunk::new(
            vec!["t.k".into(), "t.v".into()],
            vec![Column::from_ints(keys), Column::from_doubles(vals)],
        );
        let group_by = [Expr::Column("k".into())];
        let aggs = [
            AggSpec { func: AggFunc::Count, expr: None, name: "n".into() },
            AggSpec { func: AggFunc::Sum, expr: Some(Expr::Column("v".into())), name: "s".into() },
        ];
        let reps = if n >= 4_194_304 { 3 } else { 5 };
        rows.push(sweep("group-by", n, reps, |pool| {
            let out = aggregate_with(pool, &chunk, &group_by, &aggs).expect("aggregate");
            assert_eq!(out.num_rows(), 64);
        }));
        rows.last().expect("row").print(&table);
    }

    // --- monet: hash join --------------------------------------------
    for n in [131_072usize, 524_288] {
        let mut mix = Mix(3);
        let build: Vec<i64> = (0..n).map(|_| mix.int(n as u64 / 4)).collect();
        let probe: Vec<i64> = (0..n).map(|_| mix.int(n as u64 / 4)).collect();
        let left = Chunk::new(vec!["l.k".into()], vec![Column::from_ints(build)]);
        let right = Chunk::new(vec!["r.k".into()], vec![Column::from_ints(probe)]);
        let lk = Expr::Column("l.k".into());
        let rk = Expr::Column("r.k".into());
        rows.push(sweep("hash-join", n, 3, |pool| {
            let out = hash_join_with(pool, &left, &right, &lk, &rk).expect("join");
            assert!(out.num_rows() >= n); // ~4 matches per probe row
        }));
        rows.last().expect("row").print(&table);
    }

    // --- SciQL / NdArray: reduce and map -----------------------------
    for side in [512usize, 1024, 2048] {
        let n = side * side;
        let img = NdArray::matrix(side, side, doubles(4, n)).expect("image");
        let expect = img.sum_with(&WorkerPool::with_threads(1));
        let reps = if side >= 2048 { 3 } else { 5 };
        rows.push(sweep("sciql-reduce", n, reps, |pool| {
            assert_eq!(img.sum_with(pool).to_bits(), expect.to_bits());
        }));
        rows.last().expect("row").print(&table);
        rows.push(sweep("sciql-map", n, reps, |pool| {
            // The NOA calibration kernel: scale + offset per pixel.
            let out = img.map_with(pool, |v| v * 1.02 + 1.5);
            assert_eq!(out.len(), n);
        }));
        rows.last().expect("row").print(&table);
    }

    // --- summary ------------------------------------------------------
    report::blank();
    for kernel in ["select", "group-by", "sciql-reduce"] {
        let best = rows
            .iter()
            .filter(|r| r.kernel == kernel)
            .max_by_key(|r| r.size)
            .expect("kernel rows");
        let speedup4 = best.times[0].as_secs_f64() / best.times[2].as_secs_f64();
        report::note(&format!(
            "largest {kernel} input ({} rows): {:.2}x at 4 threads (acceptance: >=2x on >=4 cores)",
            best.size, speedup4
        ));
    }
    report::note(
        "\nAll parallel operators are bit-identical to their sequential twins \
         (asserted above and property-tested in parallel_equivalence.rs).",
    );
}
