//! E7 — thematic-accuracy improvement from the stSPARQL refinement step
//! (demo scenario 2), across glint rates and coastline complexities.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fmt_duration, time_once};
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::seviri::FireEvent;
use teleios_linked::world::WorldSpec;
use teleios_noa::{accuracy, refine, ProcessingChain};

fn run_case(table: &Table, coast_points: usize, glint: f64) {
    let mut obs = Observatory::new(WorldSpec {
        seed: 42,
        coast_points,
        ..WorldSpec::default()
    });
    let center = obs.region().center();
    let spec = AcquisitionSpec {
        seed: 9,
        rows: 96,
        cols: 96,
        acquisition: "2007-08-25T12:00:00Z".into(),
        satellite: "MSG2".into(),
        fires: vec![FireEvent {
            center: Coord::new(center.x + 0.1, center.y),
            radius: 0.09,
            intensity: 0.9,
        }],
        cloud_cover: 0.0,
        glint_rate: glint,
    };
    let id = obs.acquire_scene(&spec).expect("acquire");
    let report = obs.run_chain(&id, &ProcessingChain::operational()).expect("chain");
    let truth = obs.truth_for(&id).expect("truth");
    let before = accuracy::score(&report.output.mask, &truth).expect("score");

    let (stats, t_refine) = time_once(|| obs.refine_products().expect("refine"));

    let survivors = refine::surviving_hotspot_geometries(&mut obs.strabon, &id).expect("survivors");
    let polys: Vec<&teleios_geo::geometry::Polygon> = survivors.iter().collect();
    let raster = obs.raster_for(&id).expect("raster");
    let refined =
        refine::features_to_mask(&polys, &raster.geo, raster.rows(), raster.cols());
    let after = accuracy::score(&refined, &truth).expect("score");

    table.row(&[
        coast_points.to_string(),
        glint.to_string(),
        stats.before.to_string(),
        stats.refuted.to_string(),
        stats.clipped.to_string(),
        format!("{:.3}", before.precision()),
        format!("{:.3}", after.precision()),
        format!("{:.3}", before.f1()),
        format!("{:.3}", after.f1()),
        fmt_duration(t_refine),
    ]);
}

fn main() {
    report::title("E7: stSPARQL refinement — accuracy before/after (96² scenes)");
    let table = Table::new(&[
        ("coast", 7, Align::Right),
        ("glint", 6, Align::Right),
        ("features", 9, Align::Right),
        ("refuted", 8, Align::Right),
        ("clipped", 8, Align::Right),
        ("prec_before", 11, Align::Right),
        ("prec_after", 10, Align::Right),
        ("f1_bef", 8, Align::Right),
        ("f1_aft", 7, Align::Right),
        ("update_time", 12, Align::Right),
    ]);
    table.header();
    for coast_points in [24usize, 48, 96] {
        for glint in [0.01f64, 0.03, 0.06] {
            run_case(&table, coast_points, glint);
        }
    }
}
