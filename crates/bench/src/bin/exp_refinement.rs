//! E7 — thematic-accuracy improvement from the stSPARQL refinement step
//! (demo scenario 2), across glint rates and coastline complexities.

use teleios_bench::{fmt_duration, time_once};
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::seviri::FireEvent;
use teleios_linked::world::WorldSpec;
use teleios_noa::{accuracy, refine, ProcessingChain};

fn run_case(coast_points: usize, glint: f64) {
    let mut obs = Observatory::new(WorldSpec {
        seed: 42,
        coast_points,
        ..WorldSpec::default()
    });
    let center = obs.region().center();
    let spec = AcquisitionSpec {
        seed: 9,
        rows: 96,
        cols: 96,
        acquisition: "2007-08-25T12:00:00Z".into(),
        satellite: "MSG2".into(),
        fires: vec![FireEvent {
            center: Coord::new(center.x + 0.1, center.y),
            radius: 0.09,
            intensity: 0.9,
        }],
        cloud_cover: 0.0,
        glint_rate: glint,
    };
    let id = obs.acquire_scene(&spec).expect("acquire");
    let report = obs.run_chain(&id, &ProcessingChain::operational()).expect("chain");
    let truth = obs.truth_for(&id).expect("truth");
    let before = accuracy::score(&report.output.mask, &truth).expect("score");

    let (stats, t_refine) = time_once(|| obs.refine_products().expect("refine"));

    let survivors = refine::surviving_hotspot_geometries(&mut obs.strabon, &id).expect("survivors");
    let polys: Vec<&teleios_geo::geometry::Polygon> = survivors.iter().collect();
    let raster = obs.raster_for(&id).expect("raster");
    let refined =
        refine::features_to_mask(&polys, &raster.geo, raster.rows(), raster.cols());
    let after = accuracy::score(&refined, &truth).expect("score");

    println!(
        "{:>7} {:>6} {:>9} {:>8} {:>8} {:>11.3} {:>10.3} {:>8.3} {:>7.3} {:>12}",
        coast_points,
        glint,
        stats.before,
        stats.refuted,
        stats.clipped,
        before.precision(),
        after.precision(),
        before.f1(),
        after.f1(),
        fmt_duration(t_refine),
    );
}

fn main() {
    println!("E7: stSPARQL refinement — accuracy before/after (96² scenes)\n");
    println!(
        "{:>7} {:>6} {:>9} {:>8} {:>8} {:>11} {:>10} {:>8} {:>7} {:>12}",
        "coast", "glint", "features", "refuted", "clipped", "prec_before", "prec_after", "f1_bef",
        "f1_aft", "update_time"
    );
    for coast_points in [24usize, 48, 96] {
        for glint in [0.01f64, 0.03, 0.06] {
            run_case(coast_points, glint);
        }
    }
}
