//! E1 — per-stage latency of the NOA processing chain vs raster size.
//!
//! Prints the table recorded in EXPERIMENTS.md.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fire_scene, fmt_duration};
use teleios_monet::Catalog;
use teleios_noa::ProcessingChain;

fn main() {
    report::title("E1: NOA processing-chain stage latency (operational chain)");
    let table = Table::new(&[
        ("size", 6, Align::Right),
        ("ingest", 12, Align::Right),
        ("crop", 12, Align::Right),
        ("georef", 12, Align::Right),
        ("classify", 12, Align::Right),
        ("shapefile", 12, Align::Right),
        ("total", 12, Align::Right),
        ("hotspots", 9, Align::Right),
    ]);
    table.header();
    for size in [64usize, 128, 256, 512, 1024] {
        let scene = fire_scene(size, 1);
        let cat = Catalog::new();
        let chain = ProcessingChain::operational();
        // Warm once, then average over three runs.
        let mut outputs = Vec::new();
        chain.run(&cat, "warm", &scene.raster).expect("warm run");
        for _ in 0..3 {
            outputs.push(chain.run(&cat, "bench", &scene.raster).expect("chain run"));
        }
        let avg = |f: fn(&teleios_noa::chain::StageTimings) -> std::time::Duration| {
            outputs.iter().map(|o| f(&o.timings)).sum::<std::time::Duration>() / outputs.len() as u32
        };
        let total = outputs
            .iter()
            .map(|o| o.timings.total())
            .sum::<std::time::Duration>()
            / outputs.len() as u32;
        table.row(&[
            format!("{size}²"),
            fmt_duration(avg(|t| t.ingest)),
            fmt_duration(avg(|t| t.crop)),
            fmt_duration(avg(|t| t.georef)),
            fmt_duration(avg(|t| t.classify)),
            fmt_duration(avg(|t| t.shapefile)),
            fmt_duration(total),
            outputs[0].hotspot_pixels().to_string(),
        ]);
    }
}
