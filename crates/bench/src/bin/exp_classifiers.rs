//! E2 — classification-submodule comparison: accuracy and runtime of the
//! three chains of demo scenario 1 against ground truth, across scenes
//! with varying artifact rates.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{bench_bbox, bench_surface, fmt_duration, time_avg};
use teleios_geo::Coord;
use teleios_ingest::seviri::{self, FireEvent, SceneSpec};
use teleios_noa::accuracy;
use teleios_noa::hotspot::HotspotClassifier;

fn main() {
    report::title("E2: classification submodules vs ground truth (avg of 5 scenes, 128²)");
    let table = Table::indented(
        2,
        &[
            ("classifier", 22, Align::Left),
            ("precision", 9, Align::Right),
            ("recall", 9, Align::Right),
            ("F1", 9, Align::Right),
            ("runtime", 12, Align::Right),
        ],
    );
    let classifiers = [
        HotspotClassifier::Threshold { kelvin: 318.0 },
        HotspotClassifier::Threshold { kelvin: 325.0 },
        HotspotClassifier::Adaptive { sigma: 4.0 },
        HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
    ];
    for glint in [0.0f64, 0.01, 0.03] {
        report::note(&format!("glint rate {glint}:"));
        table.header();
        for classifier in &classifiers {
            let mut p = 0.0;
            let mut r = 0.0;
            let mut f1 = 0.0;
            let mut runtime = std::time::Duration::ZERO;
            const SCENES: usize = 5;
            for seed in 0..SCENES as u64 {
                let mut spec = SceneSpec::new(seed, 128, 128, bench_bbox());
                spec.cloud_cover = 0.02;
                spec.glint_rate = glint;
                spec.fires.push(FireEvent {
                    center: Coord::new(21.8, 37.5),
                    radius: 0.09,
                    intensity: 0.9,
                });
                let scene = seviri::generate(&spec, &bench_surface).expect("scene");
                let mask = classifier.classify(&scene.raster).expect("classify");
                let acc = accuracy::score(&mask, &scene.truth).expect("score");
                p += acc.precision();
                r += acc.recall();
                f1 += acc.f1();
                runtime += time_avg(3, || {
                    classifier.classify(&scene.raster).expect("classify");
                });
            }
            let n = SCENES as f64;
            table.row(&[
                classifier.id(),
                format!("{:.3}", p / n),
                format!("{:.3}", r / n),
                format!("{:.3}", f1 / n),
                fmt_duration(runtime / SCENES as u32),
            ]);
        }
        report::blank();
    }
}
