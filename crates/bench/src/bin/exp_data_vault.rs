//! E5 — Data Vault: total cost of lazy vs eager ingestion as a function
//! of the fraction of the archive actually accessed (the paper's "up to
//! 95% of the data … has never been accessed").

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{fmt_duration, time_once};
use teleios_monet::Catalog;
use teleios_vault::format::{encode_sev1, Sev1Header};
use teleios_vault::repository::Repository;
use teleios_vault::{DataVault, IngestionPolicy};

fn archive(n_files: usize, size: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..n_files {
        let header = Sev1Header {
            rows: size as u32,
            cols: size as u32,
            bands: 3,
            acquisition: format!("2007-08-25T{:02}:00:00Z", i % 24),
            bbox: (i as f64, 0.0, i as f64 + 1.0, 1.0),
        };
        let payload = vec![300.0f64; size * size * 3];
        repo.put(format!("scene-{i:04}.sev1"), encode_sev1(&header, &payload).expect("encode"));
    }
    repo
}

fn main() {
    const N_FILES: usize = 500;
    const SIZE: usize = 48;
    report::title(&format!(
        "E5: Data Vault — lazy vs eager over a {N_FILES}-file archive ({SIZE}² x3 bands)"
    ));
    let repo = archive(N_FILES, SIZE);

    // Time-to-first-query: register everything, touch one file.
    for policy in [IngestionPolicy::Lazy, IngestionPolicy::Eager] {
        let (stats, t) = time_once(|| {
            let mut vault = DataVault::new(repo.clone(), Catalog::new(), policy, 0);
            vault.register_all().expect("register");
            vault.array_for("scene-0000.sev1").expect("access");
            vault.stats()
        });
        report::note(&format!(
            "time-to-first-query {:?}: {} ({} payload conversions)",
            policy,
            fmt_duration(t),
            stats.materializations
        ));
    }
    report::blank();

    let table = Table::new(&[
        ("accessed", 10, Align::Right),
        ("lazy", 12, Align::Right),
        ("eager", 12, Align::Right),
        ("lazy convs", 14, Align::Right),
        ("eager convs", 14, Align::Right),
    ]);
    table.header();
    for pct in [1usize, 5, 25, 50, 100] {
        let step = (100 / pct).max(1);
        let run = |policy: IngestionPolicy| {
            time_once(|| {
                let mut vault = DataVault::new(repo.clone(), Catalog::new(), policy, 0);
                vault.register_all().expect("register");
                for i in (0..N_FILES).step_by(step) {
                    vault.array_for(&format!("scene-{i:04}.sev1")).expect("access");
                }
                vault.stats().materializations
            })
        };
        let (lazy_convs, t_lazy) = run(IngestionPolicy::Lazy);
        let (eager_convs, t_eager) = run(IngestionPolicy::Eager);
        table.row(&[
            format!("{pct}%"),
            fmt_duration(t_lazy),
            fmt_duration(t_eager),
            lazy_convs.to_string(),
            eager_convs.to_string(),
        ]);
    }
}
