//! E8 — closing the semantic gap: recall of concept-based (subsumption)
//! search over annotations vs raw metadata keyword search.
//!
//! The paper's motivating claim (§1): "domain-specific concepts such as
//! 'forest fires' are not included in the archive metadata, thus they
//! cannot be used as search criteria". We build an archive where some
//! products burn, annotate them through the mining pipeline, and compare
//! three discovery strategies against ground truth.

use teleios_bench::report::{self, Align, Table};
use teleios_bench::{bench_bbox, bench_surface};
use teleios_geo::Coord;
use teleios_ingest::features::extract_patches;
use teleios_ingest::seviri::{self, FireEvent, SceneSpec};
use teleios_mining::annotate;
use teleios_mining::classify::{Classifier, LabeledExample};
use teleios_mining::ontology::{concept, Ontology};
use teleios_rdf::store::TripleStore;
use teleios_rdf::term::Term;

const PATCH: usize = 8;

fn main() {
    report::title("E8: semantic-annotation search vs raw metadata search");
    const N_SCENES: usize = 40;

    // Half the scenes burn (forest fires), half are quiet.
    let mut store = TripleStore::new();
    let mut burning_truth = Vec::new();
    let mut training = Vec::new();
    let mut scenes = Vec::new();
    for i in 0..N_SCENES {
        let burns = i % 2 == 0;
        let mut spec = SceneSpec::new(i as u64, 64, 64, bench_bbox());
        spec.cloud_cover = 0.02;
        spec.glint_rate = 0.005;
        if burns {
            spec.fires.push(FireEvent {
                center: Coord::new(21.8, 37.5),
                radius: 0.1,
                intensity: 0.9,
            });
        }
        let scene = seviri::generate(&spec, &bench_surface).expect("scene");
        burning_truth.push(burns);
        scenes.push(scene);
    }

    // Train a patch classifier from the first 10 scenes' ground truth.
    for (i, scene) in scenes.iter().take(10).enumerate() {
        let patches = extract_patches(&scene.raster, PATCH).expect("patches");
        for p in &patches {
            let r0 = p.py * PATCH;
            let c0 = p.px * PATCH;
            let burning = (r0..r0 + PATCH).any(|r| {
                (c0..c0 + PATCH).any(|c| scene.truth.get(&[r, c]).unwrap_or(0.0) > 0.0)
            });
            training.push(LabeledExample {
                features: p.features.clone(),
                label: if burning {
                    concept("ForestFire")
                } else {
                    concept("LandCover")
                },
            });
        }
        let _ = i;
    }
    let classifier = Classifier::train_knn(3, training);

    // Annotate every scene; also record plain keyword metadata (level,
    // satellite — what EOWEB-NG offers).
    for (i, scene) in scenes.iter().enumerate() {
        let id = format!("scene_{i:03}");
        let patches = extract_patches(&scene.raster, PATCH).expect("patches");
        annotate::annotate_product(&id, &patches, &classifier, &mut store);
        store.insert_terms(
            &Term::iri(format!("http://teleios.di.uoa.gr/products/{id}")),
            &Term::iri("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasProductLevel"),
            &Term::literal("LEVEL1"),
        );
    }

    let ontology = Ontology::teleios();
    let truth_count = burning_truth.iter().filter(|&&b| b).count();

    // Strategy 1: raw metadata search for "fire" — finds nothing, the
    // archive metadata has no such field.
    let metadata_hits = store
        .match_terms(
            None,
            Some(&Term::iri(
                "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasProductLevel",
            )),
            Some(&Term::literal("fire")),
        )
        .len();

    // Strategy 2: exact-concept annotation search (ForestFire).
    let exact =
        annotate::find_products_by_concept(&concept("ForestFire"), &ontology, &store);

    // Strategy 3: subsumption search for the superclass Fire.
    let subsumed = annotate::find_products_by_concept(&concept("Fire"), &ontology, &store);

    let score = |found: &[Term]| {
        let tp = found
            .iter()
            .filter(|t| {
                t.as_iri().is_some_and(|iri| {
                    iri.rsplit('_')
                        .next()
                        .and_then(|n| n.parse::<usize>().ok())
                        .is_some_and(|i| burning_truth.get(i).copied().unwrap_or(false))
                })
            })
            .count();
        let recall = tp as f64 / truth_count as f64;
        let precision = if found.is_empty() { 1.0 } else { tp as f64 / found.len() as f64 };
        (precision, recall)
    };
    let (pe, re) = score(&exact);
    let (ps, rs) = score(&subsumed);

    let table = Table::new(&[
        ("strategy", 38, Align::Left),
        ("found", 6, Align::Right),
        ("precision", 9, Align::Right),
        ("recall", 9, Align::Right),
    ]);
    table.header();
    table.row(&[
        "metadata keyword ('fire')".to_string(),
        metadata_hits.to_string(),
        "-".to_string(),
        format!("{:.2}", 0.0),
    ]);
    table.row(&[
        "annotation search (noa:ForestFire)".to_string(),
        exact.len().to_string(),
        format!("{pe:.2}"),
        format!("{re:.2}"),
    ]);
    table.row(&[
        "subsumption search (noa:Fire)".to_string(),
        subsumed.len().to_string(),
        format!("{ps:.2}"),
        format!("{rs:.2}"),
    ]);
    report::note(&format!(
        "\nground truth: {truth_count}/{N_SCENES} scenes burn; \
         annotations: {} triples in store",
        store.len()
    ));
}
