#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Shared fixtures for the TELEIOS experiment suite (E1–E11).
//!
//! Every experiment in `EXPERIMENTS.md` builds its workload through the
//! generators here, so Criterion benches (`benches/`) and the
//! table-printing harness binaries (`src/bin/exp_*.rs`) measure exactly
//! the same thing.

pub mod report;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teleios_geo::{Coord, Envelope};
use teleios_ingest::seviri::{self, FireEvent, Scene, SceneSpec, SurfaceKind};
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{noa, rdf, strdf};
use teleios_strabon::{Strabon, StrabonConfig};

/// The benchmark world window (Peloponnese-like).
pub fn bench_bbox() -> Envelope {
    Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
}

/// A simple half-land / half-sea surface for scene generation, avoiding
/// the full world model so scene cost is dominated by the raster size.
pub fn bench_surface(c: Coord) -> SurfaceKind {
    if c.x < 22.8 {
        SurfaceKind::Forest
    } else {
        SurfaceKind::Sea
    }
}

/// A deterministic fire scene at the given raster size.
pub fn fire_scene(size: usize, seed: u64) -> Scene {
    let mut spec = SceneSpec::new(seed, size, size, bench_bbox());
    spec.cloud_cover = 0.02;
    spec.glint_rate = 0.01;
    spec.fires.push(FireEvent {
        center: Coord::new(21.8, 37.5),
        radius: 0.09,
        intensity: 0.9,
    });
    spec.fires.push(FireEvent {
        center: Coord::new(22.2, 38.1),
        radius: 0.06,
        intensity: 0.7,
    });
    // teleios-lint: allow(no-panic) — bench fixture; a malformed spec is a programmer error
    seviri::generate(&spec, &bench_surface).expect("scene generation")
}

/// Build a Strabon archive of `n_products` raw images, each with one
/// hotspot, plus `n_sites` archaeological sites — the E3/E4 workload.
///
/// Products are spread uniformly over the window; every 10th hotspot sits
/// inside the "query region" (the window's central 10%), so the flagship
/// query has stable selectivity across scales.
pub fn build_archive(n_products: usize, n_sites: usize, config: StrabonConfig) -> Strabon {
    let mut db = Strabon::with_config(config);
    let mut rng = StdRng::seed_from_u64(7);
    let bbox = bench_bbox();
    let type_p = Term::iri(rdf::TYPE);
    let geom_p = Term::iri(strdf::HAS_GEOMETRY);
    let time_p = Term::iri(noa::HAS_ACQUISITION_TIME);
    let sat_p = Term::iri(noa::ACQUIRED_BY);
    let derived_p = Term::iri(noa::IS_DERIVED_FROM);
    let conf_p = Term::iri(noa::HAS_CONFIDENCE);
    let sat = Term::iri("http://teleios.di.uoa.gr/satellites/MSG2");
    let center = bbox.center();

    for i in 0..n_products {
        let img = Term::iri(format!("http://teleios.di.uoa.gr/products/scene_{i:06}"));
        db.insert(&img, &type_p, &Term::iri(noa::RAW_IMAGE));
        db.insert(&img, &sat_p, &sat);
        db.insert(
            &img,
            &time_p,
            &Term::date_time(format!(
                "2007-08-{:02}T{:02}:00:00Z",
                1 + (i / 24) % 28,
                i % 24
            )),
        );
        // Footprint: a small box around a pseudo-random position; every
        // 10th product sits at the window centre.
        let (cx, cy) = if i % 10 == 0 {
            (
                center.x + rng.random_range(-0.15..0.15),
                center.y + rng.random_range(-0.15..0.15),
            )
        } else {
            (
                rng.random_range(bbox.min.x..bbox.max.x),
                rng.random_range(bbox.min.y..bbox.max.y),
            )
        };
        let fp = Envelope::new(Coord::new(cx - 0.2, cy - 0.2), Coord::new(cx + 0.2, cy + 0.2));
        db.insert(
            &img,
            &geom_p,
            &geometry_literal_wgs84(&teleios_geo::Geometry::Polygon(
                teleios_geo::geometry::Polygon::from_envelope(&fp),
            )),
        );
        // One hotspot per product: a detailed dissolved polygon (a
        // 32-vertex blob), as the shapefile module produces — the
        // vertex count is what makes exact spatial predicates cost
        // something relative to an envelope pre-filter.
        let h = Term::iri(format!("http://teleios.di.uoa.gr/products/scene_{i:06}/hotspot/0"));
        db.insert(&h, &type_p, &Term::iri(noa::HOTSPOT));
        db.insert(&h, &derived_p, &img);
        db.insert(&h, &conf_p, &Term::double(rng.random_range(0.3..1.0)));
        let blob = blob_polygon(Coord::new(cx, cy), 0.05, 32, &mut rng);
        db.insert(
            &h,
            &geom_p,
            &geometry_literal_wgs84(&teleios_geo::Geometry::Polygon(blob)),
        );
        // Every 100th product carries a rare annotation class — the
        // selective pattern the E4 optimizer experiment pivots on.
        if i % 100 == 0 {
            db.insert(
                &img,
                &type_p,
                &Term::iri(format!("{}AnnotatedImage", noa::NS)),
            );
        }
    }
    for s in 0..n_sites {
        let site = Term::iri(format!("http://dbpedia.org/resource/BenchSite_{s}"));
        db.insert(
            &site,
            &type_p,
            &Term::iri("http://dbpedia.org/ontology/ArchaeologicalSite"),
        );
        let c = Coord::new(
            center.x + rng.random_range(-0.3..0.3),
            center.y + rng.random_range(-0.3..0.3),
        );
        db.insert(
            &site,
            &geom_p,
            &geometry_literal_wgs84(&teleios_geo::Geometry::Point(
                teleios_geo::geometry::Point(c),
            )),
        );
    }
    db
}

/// A star-shaped blob polygon with `n` vertices (stands in for a
/// dissolved hotspot shapefile geometry).
pub fn blob_polygon(
    center: Coord,
    radius: f64,
    n: usize,
    rng: &mut StdRng,
) -> teleios_geo::geometry::Polygon {
    let mut pts: Vec<Coord> = (0..n)
        .map(|i| {
            let theta = (i as f64) * std::f64::consts::TAU / (n as f64);
            let r = radius * rng.random_range(0.6..1.0);
            Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect();
    let first = pts[0];
    pts.push(first);
    let mut poly =
        teleios_geo::geometry::Polygon::new(teleios_geo::geometry::LineString(pts), vec![]);
    poly.normalize();
    poly
}

/// The E3 spatial query: hotspot geometries intersecting the central
/// query region, then joined with their acquiring image. The FILTER is
/// written right after the geometry pattern (filter-early form), so the
/// spatial pre-filter can shrink the join input.
pub fn spatial_region_query() -> String {
    let bbox = bench_bbox();
    let c = bbox.center();
    let region = Envelope::new(
        Coord::new(c.x - 0.25, c.y - 0.25),
        Coord::new(c.x + 0.25, c.y + 0.25),
    );
    let lit = geometry_literal_wgs84(&teleios_geo::Geometry::Polygon(
        teleios_geo::geometry::Polygon::from_envelope(&region),
    ));
    format!(
        "PREFIX noa: <{noa}>\nPREFIX strdf: <{strdf}>\n\
         SELECT ?h ?img WHERE {{\n\
           ?h a noa:Hotspot ; strdf:hasGeometry ?g .\n\
           FILTER(strdf:intersects(?g, {lit}))\n\
           ?h noa:isDerivedFrom ?img .\n\
           ?img noa:isAcquiredBy <http://teleios.di.uoa.gr/satellites/MSG2> .\n\
         }}",
        noa = noa::NS,
        strdf = strdf::NS,
    )
}

/// The E4 non-spatial BGP: five patterns where the *syntactic* order
/// starts from the most unselective pattern (every product has an
/// acquisition time) while a rare class (`noa:AnnotatedImage`, 1% of
/// products) makes one pattern highly selective — the join-order
/// optimizer must find it.
pub fn bgp_query() -> String {
    format!(
        "PREFIX noa: <{noa}>\n\
         SELECT ?h ?img ?t WHERE {{\n\
           ?img noa:hasAcquisitionTime ?t .\n\
           ?img noa:isAcquiredBy <http://teleios.di.uoa.gr/satellites/MSG2> .\n\
           ?h noa:isDerivedFrom ?img .\n\
           ?h noa:hasConfidence ?c .\n\
           ?img a noa:AnnotatedImage .\n\
           FILTER(?c > 0.5)\n\
         }}",
        noa = noa::NS,
    )
}

/// Format a duration in adaptive units for experiment tables.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

/// Time a closure once (helper for harness binaries).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Time a closure averaged over `n` runs.
pub fn time_avg(n: usize, mut f: impl FnMut()) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    for _ in 0..n {
        f();
    }
    t0.elapsed() / n as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_builder_scales() {
        let db = build_archive(50, 5, StrabonConfig::default());
        // 8 triples per product, 2 per site, plus the rare class on
        // every 100th product (here: product 0 only).
        assert_eq!(db.len(), 50 * 8 + 5 * 2 + 1);
    }

    #[test]
    fn spatial_query_selectivity_stable() {
        for n in [100usize, 400] {
            let mut db = build_archive(n, 5, StrabonConfig::default());
            let hits = db.query(&spatial_region_query()).unwrap().len();
            // Every 10th product sits near the centre; the region catches
            // most of them (positions are randomly jittered ±0.15 within
            // a ±0.25 window).
            assert!(
                hits >= n / 20 && hits <= n / 5,
                "unexpected selectivity: {hits}/{n}"
            );
        }
    }

    #[test]
    fn bgp_query_runs_both_configs() {
        let q = bgp_query();
        let mut fast = build_archive(100, 0, StrabonConfig::default());
        let mut slow = build_archive(
            100,
            0,
            StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: false, ..StrabonConfig::default() },
        );
        assert_eq!(fast.query(&q).unwrap().len(), slow.query(&q).unwrap().len());
    }

    #[test]
    fn scene_fixture_has_fires() {
        let s = fire_scene(64, 1);
        assert!(s.truth.sum() > 0.0);
    }

    #[test]
    fn formatting() {
        assert!(fmt_duration(std::time::Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(2)).contains("s"));
    }
}
