//! E1 — NOA processing-chain latency vs raster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_bench::fire_scene;
use teleios_monet::Catalog;
use teleios_noa::ProcessingChain;

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_noa_chain");
    group.sample_size(10);
    for size in [64usize, 128, 256] {
        let scene = fire_scene(size, 1);
        group.bench_with_input(BenchmarkId::new("full_chain", size), &size, |b, _| {
            let cat = Catalog::new();
            let chain = ProcessingChain::operational();
            b.iter(|| chain.run(&cat, "bench", &scene.raster).expect("chain run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
