//! E11 (ablation) — column-at-a-time candidate-list execution vs the
//! row-at-a-time reference evaluator, the design choice MonetDB embodies
//! and the paper's database tier inherits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_monet::exec::{filter, filter_rowwise, Chunk};
use teleios_monet::sql::ast::{BinOp, Expr};
use teleios_monet::table::{ColumnDef, Table};
use teleios_monet::value::{DataType, Value};

fn chunk(n: usize) -> Chunk {
    let mut t = Table::new(
        "m",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("temp", DataType::Double),
            ColumnDef::new("band", DataType::Int),
        ],
    );
    // Deterministic pseudo-random temperatures.
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        290.0 + (state % 400) as f64 / 10.0
    };
    for i in 0..n {
        t.insert_row(vec![
            Value::Int(i as i64),
            Value::Double(next()),
            Value::Int((i % 3) as i64),
        ])
        .expect("insert");
    }
    Chunk::from_table(&t, "m")
}

fn predicate() -> Expr {
    // temp > 318 AND band = 1  — two candidate-narrowing passes.
    Expr::binary(
        BinOp::And,
        Expr::binary(
            BinOp::Gt,
            Expr::Column("temp".into()),
            Expr::Literal(Value::Double(318.0)),
        ),
        Expr::binary(
            BinOp::Eq,
            Expr::Column("band".into()),
            Expr::Literal(Value::Int(1)),
        ),
    )
}

fn bench_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_column_vs_row");
    group.sample_size(10);
    let pred = predicate();
    for n in [100_000usize, 1_000_000] {
        let data = chunk(n);
        // Both paths agree.
        assert_eq!(
            filter(&data, &pred).expect("columnar").num_rows(),
            filter_rowwise(&data, &pred).expect("rowwise").num_rows()
        );
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |b, _| {
            b.iter(|| filter(&data, &pred).expect("filter"));
        });
        group.bench_with_input(BenchmarkId::new("rowwise", n), &n, |b, _| {
            b.iter(|| filter_rowwise(&data, &pred).expect("filter"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
