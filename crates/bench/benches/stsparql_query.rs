//! E3 — flagship spatial query latency: R-tree sidecar vs exact scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_bench::{build_archive, spatial_region_query};
use teleios_strabon::StrabonConfig;

fn bench_spatial_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_stsparql_spatial");
    group.sample_size(10);
    let query = spatial_region_query();
    for n in [1_000usize, 5_000] {
        let mut indexed = build_archive(n, 8, StrabonConfig::default());
        let mut scan = build_archive(
            n,
            8,
            StrabonConfig { rdfs_inference: false, optimize_bgp: true, use_spatial_index: false, ..StrabonConfig::default() },
        );
        // Warm both engines (builds the sidecar once).
        indexed.query(&query).expect("warm");
        scan.query(&query).expect("warm");
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| indexed.query(&query).expect("query"));
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| scan.query(&query).expect("query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spatial_query);
criterion_main!(benches);
