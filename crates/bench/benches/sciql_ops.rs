//! E6 — SciQL declarative image operations vs hand-coded array loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_monet::array::NdArray;
use teleios_monet::Catalog;
use teleios_sciql::{execute, ops};

fn image(size: usize) -> NdArray {
    NdArray::matrix(size, size, (0..size * size).map(|v| 290.0 + (v % 64) as f64).collect())
        .expect("image")
}

fn bench_sciql(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_sciql_vs_native");
    group.sample_size(10);
    for size in [128usize, 512] {
        let img = image(size);
        let cat = Catalog::new();
        cat.put_array("img", img.clone());

        group.bench_with_input(BenchmarkId::new("classify_sciql", size), &size, |b, _| {
            b.iter(|| {
                execute(&cat, "SELECT CASE WHEN v > 318 THEN 1 ELSE 0 END FROM img")
                    .expect("sciql")
            });
        });
        group.bench_with_input(BenchmarkId::new("classify_native", size), &size, |b, _| {
            b.iter(|| ops::classify_threshold(&img, 318.0));
        });

        group.bench_with_input(BenchmarkId::new("tile_mean_sciql", size), &size, |b, _| {
            b.iter(|| {
                execute(&cat, "SELECT AVG(v) FROM img GROUP BY TILES [16, 16]").expect("sciql")
            });
        });
        group.bench_with_input(BenchmarkId::new("tile_mean_native", size), &size, |b, _| {
            b.iter(|| ops::tile_mean(&img, 16).expect("tile mean"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sciql);
criterion_main!(benches);
