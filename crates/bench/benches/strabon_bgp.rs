//! E4 — BGP join-order optimizer: selectivity ordering vs syntactic
//! order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_bench::{bgp_query, build_archive};
use teleios_strabon::StrabonConfig;

fn bench_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_bgp_optimizer");
    group.sample_size(10);
    let query = bgp_query();
    for n in [1_000usize, 5_000] {
        let mut optimized = build_archive(n, 0, StrabonConfig::default());
        let mut naive = build_archive(
            n,
            0,
            StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: true, ..StrabonConfig::default() },
        );
        optimized.query(&query).expect("warm");
        naive.query(&query).expect("warm");
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| optimized.query(&query).expect("query"));
        });
        group.bench_with_input(BenchmarkId::new("syntactic", n), &n, |b, _| {
            b.iter(|| naive.query(&query).expect("query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bgp);
criterion_main!(benches);
