//! E5 — Data Vault: lazy (just-in-time) vs eager ingestion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_monet::Catalog;
use teleios_vault::format::{encode_sev1, Sev1Header};
use teleios_vault::repository::Repository;
use teleios_vault::{DataVault, IngestionPolicy};

fn archive(n_files: usize, size: usize) -> Repository {
    let mut repo = Repository::new();
    for i in 0..n_files {
        let header = Sev1Header {
            rows: size as u32,
            cols: size as u32,
            bands: 3,
            acquisition: format!("2007-08-25T{:02}:00:00Z", i % 24),
            bbox: (i as f64, 0.0, i as f64 + 1.0, 1.0),
        };
        let payload = vec![300.0f64; size * size * 3];
        repo.put(format!("scene-{i:04}.sev1"), encode_sev1(&header, &payload).expect("encode"));
    }
    repo
}

/// Register the archive and touch 5% of the files.
fn run(policy: IngestionPolicy, repo: &Repository, n_files: usize) {
    let mut vault = DataVault::new(repo.clone(), Catalog::new(), policy, 0);
    vault.register_all().expect("register");
    for i in (0..n_files).step_by(20) {
        vault.array_for(&format!("scene-{i:04}.sev1")).expect("access");
    }
}

fn bench_vault(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_data_vault");
    group.sample_size(10);
    for n_files in [100usize, 400] {
        let repo = archive(n_files, 32);
        group.bench_with_input(BenchmarkId::new("lazy_5pct", n_files), &n_files, |b, &n| {
            b.iter(|| run(IngestionPolicy::Lazy, &repo, n));
        });
        group.bench_with_input(BenchmarkId::new("eager_5pct", n_files), &n_files, |b, &n| {
            b.iter(|| run(IngestionPolicy::Eager, &repo, n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vault);
criterion_main!(benches);
