//! E9 — R-tree scaling: bulk load, window query, vs linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teleios_geo::index::RTree;
use teleios_geo::{Coord, Envelope};

fn items(n: usize) -> Vec<(Envelope, usize)> {
    // Deterministic pseudo-random unit boxes in a 1000x1000 field.
    let mut state = 42u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 100_000) as f64 / 100.0
    };
    (0..n)
        .map(|i| {
            let x = next();
            let y = next();
            (Envelope::new(Coord::new(x, y), Coord::new(x + 1.0, y + 1.0)), i)
        })
        .collect()
}

fn window() -> Envelope {
    Envelope::new(Coord::new(400.0, 400.0), Coord::new(430.0, 430.0))
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_rtree");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let data = items(n);
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            b.iter(|| RTree::bulk_load(data.clone()));
        });
        let tree = RTree::bulk_load(data.clone());
        let q = window();
        group.bench_with_input(BenchmarkId::new("query_indexed", n), &n, |b, _| {
            b.iter(|| tree.query(&q));
        });
        group.bench_with_input(BenchmarkId::new("query_scan", n), &n, |b, _| {
            b.iter(|| {
                data.iter()
                    .filter(|(e, _)| e.intersects(&q))
                    .map(|(_, i)| *i)
                    .collect::<Vec<_>>()
            });
        });
        group.bench_with_input(BenchmarkId::new("nearest_10", n), &n, |b, _| {
            b.iter(|| tree.nearest(Coord::new(500.0, 500.0), 10));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);
