//! Crash-recovery property suite for the durable backend.
//!
//! The contract under test, everywhere: after any injected failure —
//! a WAL truncated at an arbitrary byte, a torn sync that persisted
//! a prefix, a short fsync that persisted nothing, a crash before an
//! append, a crash inside the snapshot protocol — reopening the
//! store yields **exactly** the state of the last acknowledged
//! commit. No panic, no lost committed write, no resurrected
//! uncommitted write. The one sanctioned exception: a torn sync that
//! happened to persist the *entire* commit frame recovers to the
//! in-flight commit (its commit record is durable — the classic
//! unacknowledged-but-committed window every WAL engine has).

use teleios_store::backend::full_state;
use teleios_store::wal::WAL_FILE;
use teleios_store::{
    DurableBackend, DurableConfig, KeyspaceState, MemMedium, MemoryBackend, StorageBackend,
    StoreError, WriteFault,
};

/// Deterministic xorshift64* so the suite needs no external RNG crate
/// and every run replays the identical script.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const KEYSPACES: [&str; 3] = ["vault/catalog", "rdf/spo", "monet/col"];

/// One scripted transaction: a few puts and deletes over the shared
/// keyspaces. Returns true if the txn carries at least one op.
fn scripted_txn(rng: &mut Rng, backend: &mut dyn StorageBackend) -> bool {
    backend.begin().unwrap();
    let n_ops = 1 + rng.below(4) as usize;
    let mut any = false;
    for _ in 0..n_ops {
        let ks = KEYSPACES[rng.below(3) as usize];
        let key = format!("k{:03}", rng.below(24));
        if rng.below(5) == 0 {
            backend.delete(ks, key.as_bytes()).unwrap();
        } else {
            let len = 1 + rng.below(48) as usize;
            let fill = (rng.next() & 0xff) as u8;
            backend.put(ks, key.as_bytes(), &vec![fill; len]).unwrap();
        }
        any = true;
    }
    any
}

fn open_no_autosnap(medium: MemMedium) -> DurableBackend<MemMedium> {
    DurableBackend::open(medium, DurableConfig { snapshot_every: None, keep_snapshots: 2 })
        .unwrap()
}

/// Run `n_txns` scripted transactions, recording after each
/// acknowledged commit the durable WAL length and the full state.
/// Returns (final medium, checkpoints) where checkpoints[0] is the
/// empty pre-commit state at WAL length 0.
fn run_script(seed: u64, n_txns: usize) -> (MemMedium, Vec<(usize, KeyspaceState)>) {
    let mut rng = Rng::new(seed);
    let mut b = open_no_autosnap(MemMedium::new());
    let mut checkpoints = vec![(0usize, KeyspaceState::new())];
    for _ in 0..n_txns {
        scripted_txn(&mut rng, &mut b);
        b.commit().unwrap();
        let wal_len = b.medium().durable_len(WAL_FILE);
        checkpoints.push((wal_len, full_state(&b).unwrap()));
    }
    (b.into_medium(), checkpoints)
}

/// The state of the last acknowledged commit whose durable WAL
/// prefix fits inside `len` bytes.
fn expected_at<'a>(checkpoints: &'a [(usize, KeyspaceState)], len: usize) -> &'a KeyspaceState {
    checkpoints
        .iter()
        .rev()
        .find(|(wal_len, _)| *wal_len <= len)
        .map(|(_, state)| state)
        .unwrap()
}

fn truncation_sweep(seed: u64, n_txns: usize) {
    let (medium, checkpoints) = run_script(seed, n_txns);
    let wal = medium.durable_bytes(WAL_FILE).unwrap();
    for cut in 0..=wal.len() {
        let mut m = MemMedium::new();
        m.set_file(WAL_FILE, &wal[..cut]);
        let b = open_no_autosnap(m);
        let recovered = full_state(&b).unwrap();
        let expected = expected_at(&checkpoints, cut);
        assert_eq!(
            &recovered, expected,
            "seed {seed}: truncation at byte {cut} of {} must recover the last \
             commit fitting in the prefix",
            wal.len()
        );
        // commit boundaries scan clean; any torn tail is physically gone
        let is_commit_boundary = checkpoints.iter().any(|(l, _)| *l == cut);
        if is_commit_boundary {
            assert!(b.recovery().wal_truncated.is_none(), "clean cut at {cut}");
        }
        assert!(b.medium().durable_len(WAL_FILE) <= cut);
    }
}

#[test]
fn truncation_at_every_byte_recovers_exact_committed_state() {
    truncation_sweep(0x7e1e_0507, 40);
}

#[test]
#[ignore = "exhaustive sweep over a larger log; run via scripts/check.sh --full"]
fn truncation_sweep_large() {
    for seed in [1u64, 42, 0xdead_beef, 0x7e1e_1057] {
        truncation_sweep(seed, 120);
    }
}

#[test]
fn reopening_twice_is_idempotent() {
    let (medium, checkpoints) = run_script(11, 30);
    let final_state = &checkpoints.last().unwrap().1;
    let b1 = open_no_autosnap(medium);
    assert_eq!(&full_state(&b1).unwrap(), final_state);
    let seq1 = b1.last_seq();
    let b2 = open_no_autosnap(b1.into_medium());
    assert_eq!(&full_state(&b2).unwrap(), final_state);
    assert_eq!(b2.last_seq(), seq1);
    let b3 = open_no_autosnap(b2.into_medium());
    assert_eq!(&full_state(&b3).unwrap(), final_state);
}

#[test]
fn wal_concatenated_with_itself_replays_identically() {
    // replaying the same log twice must be a no-op the second time:
    // sequence numbers ≤ the applied high-water mark are skipped
    let (medium, checkpoints) = run_script(23, 25);
    let wal = medium.durable_bytes(WAL_FILE).unwrap();
    let mut doubled = wal.clone();
    doubled.extend_from_slice(&wal);
    let mut m = MemMedium::new();
    m.set_file(WAL_FILE, &doubled);
    let b = open_no_autosnap(m);
    assert_eq!(&full_state(&b).unwrap(), &checkpoints.last().unwrap().1);
    assert_eq!(b.last_seq(), 25);
    assert!(b.recovery().wal_truncated.is_none(), "doubled log scans clean");
    assert_eq!(b.recovery().transactions_replayed, 25, "second copy replays as no-ops");
}

#[test]
fn crash_fault_before_every_commit_recovers_previous_state() {
    let n = 20usize;
    for crash_at in 1..=n {
        let mut rng = Rng::new(77);
        let mut b = open_no_autosnap(MemMedium::new());
        let mut states = vec![KeyspaceState::new()];
        for k in 1..=n {
            scripted_txn(&mut rng, &mut b);
            if k == crash_at {
                b.medium_mut().arm(WriteFault::Crash);
                assert_eq!(b.commit(), Err(StoreError::Crashed));
                assert!(b.is_poisoned());
                break;
            }
            b.commit().unwrap();
            states.push(full_state(&b).unwrap());
        }
        let mut m = b.into_medium();
        m.crash();
        let recovered = open_no_autosnap(m);
        assert_eq!(
            &full_state(&recovered).unwrap(),
            states.last().unwrap(),
            "crash before commit {crash_at}: recovery must yield commit {}",
            crash_at - 1
        );
        assert_eq!(recovered.last_seq(), (crash_at - 1) as u64);
    }
}

#[test]
fn torn_sync_at_every_byte_of_the_commit_frame() {
    // run 5 committed txns, then tear the 6th commit's sync at every
    // possible surviving byte count
    let setup = |keep: Option<usize>| -> (MemMedium, KeyspaceState, KeyspaceState, usize) {
        let mut rng = Rng::new(99);
        let mut b = open_no_autosnap(MemMedium::new());
        for _ in 0..5 {
            scripted_txn(&mut rng, &mut b);
            b.commit().unwrap();
        }
        let committed = full_state(&b).unwrap();
        let wal_before = b.medium().durable_len(WAL_FILE);
        scripted_txn(&mut rng, &mut b);
        if let Some(keep) = keep {
            b.medium_mut().arm(WriteFault::Torn { keep });
            assert_eq!(b.commit(), Err(StoreError::Crashed));
            let mut m = b.into_medium();
            m.crash();
            (m, committed, KeyspaceState::new(), wal_before)
        } else {
            b.commit().unwrap();
            let full = full_state(&b).unwrap();
            (b.into_medium(), committed, full, wal_before)
        }
    };

    // measure the in-flight frame length from a fault-free run
    let (clean_medium, _, state_after_6, wal_before) = setup(None);
    let frame_len = clean_medium.durable_len(WAL_FILE) - wal_before;
    assert!(frame_len > 0);

    for keep in 0..=frame_len {
        let (m, state_5, _, _) = setup(Some(keep));
        let b = open_no_autosnap(m);
        let recovered = full_state(&b).unwrap();
        if keep < frame_len {
            // any strictly partial frame must be discarded
            assert_eq!(
                recovered, state_5,
                "torn sync keeping {keep}/{frame_len} bytes must not resurrect \
                 the in-flight commit"
            );
            assert_eq!(b.last_seq(), 5);
        } else {
            // the whole frame survived: the commit record is durable,
            // so recovery legitimately lands on the in-flight commit
            assert_eq!(recovered, state_after_6);
            assert_eq!(b.last_seq(), 6);
        }
    }
}

#[test]
fn short_fsync_poisons_and_never_resurrects() {
    for fail_at in 1..=12usize {
        let mut rng = Rng::new(123);
        let mut b = open_no_autosnap(MemMedium::new());
        let mut last_acked = KeyspaceState::new();
        for k in 1..=fail_at {
            scripted_txn(&mut rng, &mut b);
            if k == fail_at {
                b.medium_mut().arm(WriteFault::ShortFsync);
                match b.commit() {
                    Err(StoreError::Io(_)) => {}
                    other => panic!("expected Io error, got {other:?}"),
                }
                assert!(b.is_poisoned());
                assert_eq!(b.begin(), Err(StoreError::Poisoned));
            } else {
                b.commit().unwrap();
                last_acked = full_state(&b).unwrap();
            }
        }
        // the unacknowledged commit must not be readable now...
        assert_eq!(full_state(&b).unwrap(), last_acked);
        // ...and must not come back after a power cycle: a short
        // fsync persisted nothing, so the frame dies with the cache
        let mut m = b.into_medium();
        m.crash();
        let recovered = open_no_autosnap(m);
        assert_eq!(
            full_state(&recovered).unwrap(),
            last_acked,
            "short fsync at commit {fail_at} must recover commit {}",
            fail_at - 1
        );
    }
}

#[test]
fn crash_during_snapshot_publish_is_atomic() {
    let mut rng = Rng::new(5);
    let mut b = open_no_autosnap(MemMedium::new());
    for _ in 0..8 {
        scripted_txn(&mut rng, &mut b);
        b.commit().unwrap();
    }
    let committed = full_state(&b).unwrap();
    b.medium_mut().arm(WriteFault::Crash);
    assert_eq!(b.snapshot(), Err(StoreError::Crashed));
    let mut m = b.into_medium();
    m.crash();
    let recovered = open_no_autosnap(m);
    assert_eq!(full_state(&recovered).unwrap(), committed);
    assert_eq!(recovered.recovery().snapshot_seq, 0, "no snapshot was published");
    assert_eq!(recovered.last_seq(), 8);
}

#[test]
fn crash_between_snapshot_publish_and_wal_reset_is_exact() {
    // clone-surgery: fabricate the disk state where the snapshot
    // landed but the WAL reset never happened — the full old WAL is
    // still there alongside the new snapshot
    let mut rng = Rng::new(6);
    let mut b = open_no_autosnap(MemMedium::new());
    for _ in 0..10 {
        scripted_txn(&mut rng, &mut b);
        b.commit().unwrap();
    }
    let committed = full_state(&b).unwrap();
    let before_snapshot = b.medium().clone();
    b.snapshot().unwrap();
    let snap_name = teleios_store::snapshot::snapshot_name(10);
    let snap_bytes = b.medium().durable_bytes(&snap_name).unwrap();

    let mut hybrid = before_snapshot;
    hybrid.set_file(&snap_name, &snap_bytes);
    assert!(hybrid.durable_len(WAL_FILE) > 0, "old WAL still present");

    let recovered = open_no_autosnap(hybrid);
    assert_eq!(
        full_state(&recovered).unwrap(),
        committed,
        "snapshot + stale WAL must replay to the identical state (seq-skip)"
    );
    assert_eq!(recovered.recovery().snapshot_seq, 10);
    assert_eq!(recovered.recovery().transactions_replayed, 0);
    assert_eq!(recovered.last_seq(), 10);
}

#[test]
fn durable_backend_is_equivalent_to_memory_backend() {
    let mut rng_a = Rng::new(314);
    let mut rng_b = Rng::new(314);
    let mut mem = MemoryBackend::new();
    let mut dur = open_no_autosnap(MemMedium::new());
    for round in 0..50 {
        scripted_txn(&mut rng_a, &mut mem);
        scripted_txn(&mut rng_b, &mut dur);
        if round % 7 == 3 {
            mem.rollback();
            dur.rollback();
        } else {
            assert_eq!(mem.commit().unwrap(), dur.commit().unwrap());
        }
        assert_eq!(
            full_state(&mem).unwrap(),
            full_state(&dur).unwrap(),
            "round {round}: the two backends diverged"
        );
    }
    assert_eq!(mem.last_seq(), dur.last_seq());
    // and the durable one still matches after a restart
    let final_state = full_state(&mem).unwrap();
    let reopened = open_no_autosnap(dur.into_medium());
    assert_eq!(full_state(&reopened).unwrap(), final_state);
}

#[test]
fn recovery_with_periodic_snapshots_under_truncation() {
    // same sweep idea, but with auto-snapshots every 4 commits: the
    // WAL keeps resetting, so recovery = newest snapshot + short tail
    let config = DurableConfig { snapshot_every: Some(4), keep_snapshots: 2 };
    let mut rng = Rng::new(2718);
    let mut b = DurableBackend::open(MemMedium::new(), config).unwrap();
    let mut acked = Vec::new();
    for _ in 0..17 {
        scripted_txn(&mut rng, &mut b);
        b.commit().unwrap();
        acked.push((b.medium().clone(), full_state(&b).unwrap()));
    }
    // after every commit, a power cycle must recover exactly the
    // acknowledged state
    for (i, (medium, state)) in acked.into_iter().enumerate() {
        let mut m = medium;
        m.crash();
        let recovered = DurableBackend::open(m, config).unwrap();
        assert_eq!(
            full_state(&recovered).unwrap(),
            state,
            "power cycle after commit {} with snapshots enabled",
            i + 1
        );
    }
}

#[test]
fn fs_medium_end_to_end_restart() {
    use teleios_store::FsMedium;
    let root = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/store-scratch/recovery-e2e"
    );
    let _ = std::fs::remove_dir_all(root); // teleios-lint: allow(swallowed-result)
    let config = DurableConfig { snapshot_every: Some(5), keep_snapshots: 2 };
    let mut rng = Rng::new(161803);
    let mut b = DurableBackend::open(FsMedium::open(root).unwrap(), config).unwrap();
    for _ in 0..12 {
        scripted_txn(&mut rng, &mut b);
        b.commit().unwrap();
    }
    let committed = full_state(&b).unwrap();
    drop(b);
    let reopened = DurableBackend::open(FsMedium::open(root).unwrap(), config).unwrap();
    assert_eq!(full_state(&reopened).unwrap(), committed);
    assert_eq!(reopened.last_seq(), 12);
}
