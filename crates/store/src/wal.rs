//! Write-ahead log format and the never-failing scanner.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload: payload_len bytes]
//! ```
//!
//! Payload = `kind: u8` + kind-specific fields:
//!
//! | kind | record  | fields                                   |
//! |------|---------|------------------------------------------|
//! | 1    | Begin   | `seq` varint                             |
//! | 2    | Put     | `keyspace` str, `key` bytes, `value` bytes |
//! | 3    | Delete  | `keyspace` str, `key` bytes              |
//! | 4    | Commit  | `seq` varint                             |
//!
//! [`scan`] is total: it never returns an error. It walks frames
//! until the bytes stop verifying (short header, bad CRC, garbage
//! payload, or a length beyond the buffer) and reports the prefix
//! length that did verify — recovery then *truncates* the log there
//! instead of failing, which is the whole crash-tolerance story.

use crate::codec::{crc32, put_bytes, put_str, put_varint, Reader};
use crate::{Result, StoreError};

/// File name of the write-ahead log inside a medium.
pub const WAL_FILE: &str = "wal.tlw";

/// Upper bound on a single record payload (1 GiB). A corrupt length
/// prefix beyond this is treated as a torn tail, not an allocation
/// request.
pub const MAX_RECORD: u32 = 1 << 30;

const FRAME_HEADER: usize = 8;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Open transaction `seq`. Any pending un-committed ops are
    /// discarded on replay.
    Begin { seq: u64 },
    /// Write `key` = `value` in `keyspace` within the open txn.
    Put { keyspace: String, key: Vec<u8>, value: Vec<u8> },
    /// Delete `key` from `keyspace` within the open txn.
    Delete { keyspace: String, key: Vec<u8> },
    /// Commit transaction `seq`: replay applies the pending ops iff
    /// the seq matches the open Begin.
    Commit { seq: u64 },
}

const KIND_BEGIN: u8 = 1;
const KIND_PUT: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// Encode one record as a framed WAL entry, appending to `out`.
pub fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = Vec::new();
    match record {
        WalRecord::Begin { seq } => {
            payload.push(KIND_BEGIN);
            put_varint(&mut payload, *seq);
        }
        WalRecord::Put { keyspace, key, value } => {
            payload.push(KIND_PUT);
            put_str(&mut payload, keyspace);
            put_bytes(&mut payload, key);
            put_bytes(&mut payload, value);
        }
        WalRecord::Delete { keyspace, key } => {
            payload.push(KIND_DELETE);
            put_str(&mut payload, keyspace);
            put_bytes(&mut payload, key);
        }
        WalRecord::Commit { seq } => {
            payload.push(KIND_COMMIT);
            put_varint(&mut payload, *seq);
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let record = match kind {
        KIND_BEGIN => WalRecord::Begin { seq: r.varint()? },
        KIND_PUT => WalRecord::Put {
            keyspace: r.string()?,
            key: r.bytes()?.to_vec(),
            value: r.bytes()?.to_vec(),
        },
        KIND_DELETE => WalRecord::Delete { keyspace: r.string()?, key: r.bytes()?.to_vec() },
        KIND_COMMIT => WalRecord::Commit { seq: r.varint()? },
        other => {
            return Err(StoreError::Codec(format!("unknown wal record kind {other}")));
        }
    };
    if !r.is_empty() {
        return Err(StoreError::Codec(format!(
            "{} trailing bytes after wal record",
            r.remaining()
        )));
    }
    Ok(record)
}

/// Result of scanning a WAL byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every record that verified, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the verified prefix. Appending after this
    /// offset (having truncated the rest) keeps the log well-formed.
    pub valid_len: usize,
    /// True if bytes after `valid_len` failed verification (torn or
    /// corrupt tail).
    pub truncated: bool,
}

/// Scan a WAL buffer. Total: stops at the first frame that fails
/// verification and reports how far it got — never errors, never
/// panics, never allocates from an attacker-controlled length.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < FRAME_HEADER {
            return WalScan { records, valid_len: pos, truncated: pos < bytes.len() };
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[pos..pos + 4]);
        let payload_len = u32::from_le_bytes(len4);
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&bytes[pos + 4..pos + 8]);
        let expect_crc = u32::from_le_bytes(crc4);
        if payload_len > MAX_RECORD {
            return WalScan { records, valid_len: pos, truncated: true };
        }
        let payload_len = payload_len as usize;
        if bytes.len() - pos - FRAME_HEADER < payload_len {
            return WalScan { records, valid_len: pos, truncated: true };
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + payload_len];
        if crc32(payload) != expect_crc {
            return WalScan { records, valid_len: pos, truncated: true };
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                // checksum passed but the structure is nonsense —
                // treat as torn, same as any other tail damage
                return WalScan { records, valid_len: pos, truncated: true };
            }
        }
        pos += FRAME_HEADER + payload_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { seq: 1 },
            WalRecord::Put {
                keyspace: "rdf/spo".into(),
                key: b"triples".to_vec(),
                value: vec![1, 2, 3],
            },
            WalRecord::Delete { keyspace: "vault/quarantine".into(), key: b"scene-9".to_vec() },
            WalRecord::Commit { seq: 1 },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            encode_record(&mut out, r);
        }
        out
    }

    #[test]
    fn round_trip() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let scan = scan(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, bytes.len());
        assert!(!scan.truncated);
    }

    #[test]
    fn empty_log_scans_clean() {
        let s = scan(&[]);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(!s.truncated);
    }

    #[test]
    fn every_truncation_offset_scans_without_panic() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // frame boundaries (prefix sums) where the scan should be clean
        let mut boundaries = vec![0usize];
        {
            let mut acc = Vec::new();
            for r in &records {
                encode_record(&mut acc, r);
                boundaries.push(acc.len());
            }
        }
        for cut in 0..=bytes.len() {
            let s = scan(&bytes[..cut]);
            assert_eq!(s.truncated, !boundaries.contains(&cut), "offset {cut}");
            assert!(boundaries.contains(&s.valid_len), "valid_len lands on a boundary");
            assert!(s.valid_len <= cut);
        }
    }

    #[test]
    fn corrupt_payload_byte_truncates_at_that_frame() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        // flip a byte inside the second frame's payload
        let first_len = {
            let mut one = Vec::new();
            encode_record(&mut one, &records[0]);
            one.len()
        };
        bytes[first_len + FRAME_HEADER + 2] ^= 0xff;
        let s = scan(&bytes);
        assert_eq!(s.records, records[..1].to_vec());
        assert_eq!(s.valid_len, first_len);
        assert!(s.truncated);
    }

    #[test]
    fn absurd_length_prefix_is_torn_not_an_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        bytes.extend_from_slice(&[0u8; 64]);
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(s.truncated);
    }

    #[test]
    fn unknown_kind_is_torn() {
        let payload = [99u8, 0, 0];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert!(s.truncated);
    }
}
