//! Compact binary primitives shared by the WAL, snapshots, and the
//! domain encodings (triple deltas, column pages, catalog records):
//! LEB128 varints, zigzag signed integers, length-prefixed bytes and
//! strings, raw-bit `f64`s (NaN-preserving), and a table-driven
//! IEEE CRC-32.

use crate::{Result, StoreError};

/// Append an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encode a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v >> 63) ^ (v << 1)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(raw: u64) -> i64 {
    ((raw >> 1) as i64) ^ -((raw & 1) as i64)
}

/// Append a zigzag-varint signed integer.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Append an `f64` as its raw little-endian bit pattern (exact for
/// every value including NaNs and signed zeros).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// IEEE CRC-32 of `bytes` (the checksum guarding every WAL frame and
/// snapshot payload).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Bounds-checked cursor over an encoded buffer. Every read returns
/// `Err(StoreError::Codec)` instead of panicking on truncation, which
/// is what lets recovery treat arbitrary prefixes of the WAL as
/// "scan until the bytes stop making sense".
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn short(&self, what: &str) -> StoreError {
        StoreError::Codec(format!("truncated {what} at offset {}", self.pos))
    }

    pub fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.short("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(StoreError::Codec(format!(
                    "varint overflow at offset {}",
                    self.pos
                )));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn zigzag(&mut self) -> Result<i64> {
        Ok(unzigzag(self.varint()?))
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short("bytes"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(self.short("length-prefixed bytes"));
        }
        self.take(len as usize)
    }

    pub fn string(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Codec("invalid utf-8 in string field".into()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        let raw = self.take(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trip_edges() {
        let cases = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        for &v in &cases {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag round trip for {v}");
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Reader::new(&buf).zigzag().unwrap(), v);
        }
        // small magnitudes stay small on the wire
        let mut buf = Vec::new();
        put_zigzag(&mut buf, -2);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_overflow_is_an_error_not_a_panic() {
        // eleven continuation bytes can never be a valid u64
        let buf = [0xffu8; 11];
        assert!(Reader::new(&buf).varint().is_err());
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hot-spot");
        put_bytes(&mut buf, &[0, 255, 7]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.string().unwrap(), "hot-spot");
        assert_eq!(r.bytes().unwrap(), &[0, 255, 7]);
    }

    #[test]
    fn truncated_bytes_error() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[1, 2, 3, 4]);
        buf.truncate(3);
        assert!(Reader::new(&buf).bytes().is_err());
    }

    #[test]
    fn bogus_length_does_not_allocate_or_panic() {
        // declared length far beyond the buffer
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert!(Reader::new(&buf).bytes().is_err());
    }

    #[test]
    fn f64_preserves_nan_bits_and_negative_zero() {
        let weird_nan = f64::from_bits(0x7ff8_dead_beef_0001);
        for v in [0.0f64, -0.0, f64::INFINITY, weird_nan, 1.25e-300] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let back = Reader::new(&buf).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
