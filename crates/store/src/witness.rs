//! Runtime cross-check of the static `txn-leak` lint.
//!
//! teleios-lint's L10 rule proves, per function, that every
//! `begin()` reaches a `commit()` or `rollback()` on every path out.
//! That proof is intraprocedural — a transaction handed across
//! function boundaries, or opened behind a trait object the lint
//! cannot see through, escapes it. [`TxnWitness`] closes the gap at
//! runtime, the same division of labor as the lock-order lint and
//! `teleios-exec`'s `LockWitness`: every backend notes `begin`/
//! `commit`/`rollback` against a shared witness, and dropping a
//! backend with a transaction still open panics in debug builds
//! (where the process-wide [`TxnWitness::global`] records) with a
//! message pointing back at the lint rule.
//!
//! Tests that want the check in release builds too construct an
//! always-on witness with [`TxnWitness::new`] and inject it via
//! `MemoryBackend::with_witness`, keeping runs isolated from each
//! other and from the global recorder.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

/// Distinguishes backend *instances* sharing one witness; a clone of
/// a backend is a new instance with its own transaction state.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// A fresh instance id for a backend that reports to a witness.
pub(crate) fn next_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::SeqCst)
}

#[derive(Debug, Default)]
struct WitnessState {
    /// Instance id → backend label, for every currently open
    /// transaction.
    open: BTreeMap<u64, &'static str>,
    /// Transactions opened since the witness was created.
    begun: u64,
    /// Transactions closed (committed or rolled back).
    closed: u64,
}

/// The transaction-lifecycle recorder shared by a set of storage
/// backends. Cloning the `Arc` shares the recorder.
pub struct TxnWitness {
    enabled: bool,
    state: StdMutex<WitnessState>,
}

impl fmt::Debug for TxnWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnWitness")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl TxnWitness {
    /// A fresh, always-recording witness — what tests inject via
    /// `MemoryBackend::with_witness` so leak panics fire in release
    /// builds too and runs stay isolated from each other.
    pub fn new() -> Arc<TxnWitness> {
        Arc::new(TxnWitness { enabled: true, state: StdMutex::new(WitnessState::default()) })
    }

    /// A witness that records nothing — the release-build behavior of
    /// the global witness, constructible explicitly for tests.
    pub fn disabled() -> Arc<TxnWitness> {
        Arc::new(TxnWitness { enabled: false, state: StdMutex::new(WitnessState::default()) })
    }

    /// The process-wide witness behind the default constructors:
    /// recording in debug builds, a no-op in release builds.
    pub fn global() -> &'static Arc<TxnWitness> {
        static GLOBAL: OnceLock<Arc<TxnWitness>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Arc::new(TxnWitness {
                enabled: cfg!(debug_assertions),
                state: StdMutex::new(WitnessState::default()),
            })
        })
    }

    /// Poison-tolerant: a panic mid-note must not cascade.
    fn state(&self) -> std::sync::MutexGuard<'_, WitnessState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record a successful `begin()` on `instance`.
    pub(crate) fn note_begin(&self, instance: u64, label: &'static str) {
        if !self.enabled {
            return;
        }
        let mut st = self.state();
        st.begun += 1;
        st.open.insert(instance, label);
    }

    /// Record a `commit()`/`rollback()` (or an `into_medium`
    /// teardown) closing `instance`'s transaction, if one was open.
    pub(crate) fn note_end(&self, instance: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.state();
        if st.open.remove(&instance).is_some() {
            st.closed += 1;
        }
    }

    /// Called from a backend's `Drop`: panics if `instance` still has
    /// an open transaction — unless the thread is already panicking
    /// (the drop is then part of unwinding from the real failure).
    pub(crate) fn note_drop(&self, instance: u64) {
        if !self.enabled {
            return;
        }
        let leaked = self.state().open.remove(&instance);
        if let Some(label) = leaked {
            assert!(
                std::thread::panicking(),
                "transaction leak: {label} dropped with a transaction still open — \
                 commit or roll back on every path out (teleios-lint's txn-leak rule \
                 proves this statically for straight-line code)"
            );
        }
    }

    /// Transactions currently open across all instances reporting to
    /// this witness.
    pub fn open_count(&self) -> usize {
        self.state().open.len()
    }

    /// `(begun, closed)` since the witness was created.
    pub fn counts(&self) -> (u64, u64) {
        let st = self.state();
        (st.begun, st.closed)
    }

    /// Test hook: fail loudly if any transaction is still open.
    pub fn assert_none_open(&self) {
        let st = self.state();
        assert!(
            st.open.is_empty(),
            "transactions still open: {:?} (begun {}, closed {})",
            st.open,
            st.begun,
            st.closed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_begin_end_leaves_nothing_open() {
        let w = TxnWitness::new();
        let a = next_instance();
        let b = next_instance();
        w.note_begin(a, "A");
        w.note_begin(b, "B");
        assert_eq!(w.open_count(), 2);
        w.note_end(a);
        w.note_end(b);
        assert_eq!(w.open_count(), 0);
        assert_eq!(w.counts(), (2, 2));
        w.assert_none_open();
        w.note_drop(a); // closed instance: no panic
    }

    #[test]
    fn disabled_witness_records_nothing() {
        let w = TxnWitness::disabled();
        let i = next_instance();
        w.note_begin(i, "A");
        assert_eq!(w.open_count(), 0);
        w.note_drop(i); // would panic if it had recorded
    }

    #[test]
    #[should_panic(expected = "transaction leak")]
    fn dropping_an_open_transaction_panics() {
        let w = TxnWitness::new();
        let i = next_instance();
        w.note_begin(i, "MemoryBackend");
        w.note_drop(i);
    }

    #[test]
    fn note_end_without_begin_is_harmless() {
        let w = TxnWitness::new();
        let i = next_instance();
        w.note_end(i);
        assert_eq!(w.counts(), (0, 0));
    }
}
