//! The byte-device abstraction under the durable backend.
//!
//! A [`Medium`] is a tiny flat namespace of files with exactly the
//! operations the WAL needs: `append` (buffered — NOT durable),
//! `sync` (the fsync barrier that makes appended bytes durable),
//! `publish` (atomic whole-file replace, used for snapshots and WAL
//! truncation), `read`, `remove`, `list`.
//!
//! [`MemMedium`] simulates a disk honestly enough for crash testing:
//! each file carries a *durable* byte prefix and a *volatile* tail
//! (the page cache). `read` sees both — exactly like a process
//! reading back its own un-synced writes — but [`MemMedium::crash`]
//! discards the volatile tail, which is what power loss does.
//! Injected [`WriteFault`]s fire on the next matching operation.
//!
//! [`FsMedium`] is the real-filesystem implementation and the single
//! sanctioned `std::fs` write site in the workspace (see the
//! `no-direct-fs` lint rule).

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

use crate::fault::WriteFault;
use crate::{Result, StoreError};

/// Byte-device operations required by the durable backend.
pub trait Medium {
    /// Buffer `bytes` at the end of `name`. The bytes are visible to
    /// `read` but NOT durable until the next successful [`sync`].
    ///
    /// [`sync`]: Medium::sync
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Durability barrier: flush all buffered appends of `name` to
    /// stable storage. On `Err` the durable prefix is unspecified —
    /// the caller must treat the write as unacknowledged.
    fn sync(&mut self, name: &str) -> Result<()>;

    /// Read the full current contents of `name` (durable + buffered),
    /// or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Atomically replace the contents of `name` with `bytes` and
    /// make the replacement durable (write-temp + fsync + rename on a
    /// real filesystem). Readers see either the old or the new
    /// content, never a mix.
    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Delete `name` if present.
    fn remove(&mut self, name: &str) -> Result<()>;

    /// Sorted list of existing file names.
    fn list(&self) -> Result<Vec<String>>;
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

impl MemFile {
    fn view(&self) -> Vec<u8> {
        let mut all = self.durable.clone();
        all.extend_from_slice(&self.volatile);
        all
    }
}

/// In-memory simulated disk with a durable/volatile split and
/// write-fault injection. `Clone` is intentional: tests clone the
/// medium mid-protocol to freeze a crash window, then recover from
/// the clone.
#[derive(Debug, Clone, Default)]
pub struct MemMedium {
    files: BTreeMap<String, MemFile>,
    armed: VecDeque<WriteFault>,
    crashed: bool,
}

impl MemMedium {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a fault; faults fire in FIFO order, one per matching
    /// operation.
    pub fn arm(&mut self, fault: WriteFault) {
        self.armed.push_back(fault);
    }

    /// Number of armed faults that have not fired yet.
    pub fn armed_len(&self) -> usize {
        self.armed.len()
    }

    /// True once an injected fault has crashed the device. All
    /// operations fail with [`StoreError::Crashed`] until
    /// [`crash`](Self::crash) "reboots" it.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Power-cycle: drop every volatile (un-synced) byte, disarm any
    /// remaining faults, and clear the crashed flag. This is the
    /// moment recovery code gets to run.
    pub fn crash(&mut self) {
        for file in self.files.values_mut() {
            file.volatile.clear();
        }
        self.armed.clear();
        self.crashed = false;
    }

    /// Overwrite a file's durable content directly (no fault checks) —
    /// the tool truncation sweeps use to fabricate arbitrary
    /// post-crash disk states.
    pub fn set_file(&mut self, name: &str, bytes: &[u8]) {
        if bytes.is_empty() {
            // keep the file existing but empty, matching publish("")
            self.files.insert(
                name.to_string(),
                MemFile { durable: Vec::new(), volatile: Vec::new() },
            );
        } else {
            self.files.insert(
                name.to_string(),
                MemFile { durable: bytes.to_vec(), volatile: Vec::new() },
            );
        }
    }

    /// The durable prefix of `name` (what survives a crash), if the
    /// file exists.
    pub fn durable_bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.files.get(name).map(|f| f.durable.clone())
    }

    /// Length of the durable prefix of `name` (0 if absent).
    pub fn durable_len(&self, name: &str) -> usize {
        self.files.get(name).map(|f| f.durable.len()).unwrap_or(0)
    }

    fn check_crashed(&self) -> Result<()> {
        if self.crashed {
            Err(StoreError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl Medium for MemMedium {
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.check_crashed()?;
        if matches!(self.armed.front(), Some(WriteFault::Crash)) {
            self.armed.pop_front();
            self.crashed = true;
            return Err(StoreError::Crashed);
        }
        self.files.entry(name.to_string()).or_default().volatile.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        self.check_crashed()?;
        match self.armed.front().copied() {
            Some(WriteFault::Torn { keep }) => {
                self.armed.pop_front();
                let file = self.files.entry(name.to_string()).or_default();
                let keep = keep.min(file.volatile.len());
                file.durable.extend_from_slice(&file.volatile[..keep]);
                file.volatile.clear();
                self.crashed = true;
                Err(StoreError::Crashed)
            }
            Some(WriteFault::ShortFsync) => {
                // fsyncgate: nothing new persisted, error reported,
                // device still alive. The volatile tail is now in an
                // indeterminate state from the caller's perspective.
                self.armed.pop_front();
                Err(StoreError::Io("short fsync: flush failed before reaching stable storage".into()))
            }
            _ => {
                let file = self.files.entry(name.to_string()).or_default();
                let tail = std::mem::take(&mut file.volatile);
                file.durable.extend_from_slice(&tail);
                Ok(())
            }
        }
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        self.check_crashed()?;
        Ok(self.files.get(name).map(MemFile::view))
    }

    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.check_crashed()?;
        match self.armed.front().copied() {
            Some(WriteFault::Torn { .. }) | Some(WriteFault::Crash) => {
                // rename is atomic: a crash during publish leaves the
                // OLD content fully intact.
                self.armed.pop_front();
                self.crashed = true;
                Err(StoreError::Crashed)
            }
            Some(WriteFault::ShortFsync) => {
                self.armed.pop_front();
                Err(StoreError::Io("short fsync during publish".into()))
            }
            None => {
                self.files.insert(
                    name.to_string(),
                    MemFile { durable: bytes.to_vec(), volatile: Vec::new() },
                );
                Ok(())
            }
        }
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.check_crashed()?;
        self.files.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        self.check_crashed()?;
        Ok(self.files.keys().cloned().collect())
    }
}

/// Real-filesystem medium rooted at a directory. Opens files
/// per-operation (no cached handles), publishes via
/// write-temp + fsync + rename + directory fsync.
///
/// This is the workspace's single sanctioned `std::fs` write site;
/// the `no-direct-fs` lint rule points every other crate here.
#[derive(Debug, Clone)]
pub struct FsMedium {
    root: PathBuf,
}

fn io_err(what: &str, err: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{what}: {err}"))
}

impl FsMedium {
    /// Open (creating if needed) a medium rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create medium root", &e))?;
        Ok(FsMedium { root })
    }

    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) -> Result<()> {
        // Durability of renames/creates requires fsyncing the parent
        // directory; on platforms where directories cannot be synced
        // this degrades gracefully.
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all(); // teleios-lint: allow(swallowed-result)
        }
        Ok(())
    }
}

impl Medium for FsMedium {
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for append", &e))?;
        file.write_all(bytes).map_err(|e| io_err("append", &e))?;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<()> {
        match std::fs::File::open(self.path(name)) {
            Ok(file) => file.sync_all().map_err(|e| io_err("fsync", &e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("open for fsync", &e)),
        }
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &e)),
        }
    }

    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        use std::io::Write as _;
        let tmp = self.path(&format!("{name}.tmp"));
        let dst = self.path(name);
        {
            let mut file =
                std::fs::File::create(&tmp).map_err(|e| io_err("create temp", &e))?;
            file.write_all(bytes).map_err(|e| io_err("write temp", &e))?;
            file.sync_all().map_err(|e| io_err("fsync temp", &e))?;
        }
        std::fs::rename(&tmp, &dst).map_err(|e| io_err("rename into place", &e))?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| io_err("list medium root", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir entry", &e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    if !name.ends_with(".tmp") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_visible_but_not_durable_until_sync() {
        let mut m = MemMedium::new();
        m.append("wal", b"hello").unwrap();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"hello");
        assert_eq!(m.durable_len("wal"), 0);
        m.sync("wal").unwrap();
        assert_eq!(m.durable_bytes("wal").unwrap(), b"hello");
    }

    #[test]
    fn crash_discards_volatile_bytes() {
        let mut m = MemMedium::new();
        m.append("wal", b"durable").unwrap();
        m.sync("wal").unwrap();
        m.append("wal", b"+volatile").unwrap();
        m.crash();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"durable");
    }

    #[test]
    fn torn_sync_keeps_a_prefix_and_crashes() {
        let mut m = MemMedium::new();
        m.append("wal", b"0123456789").unwrap();
        m.arm(WriteFault::Torn { keep: 4 });
        assert_eq!(m.sync("wal"), Err(StoreError::Crashed));
        assert!(m.is_crashed());
        assert_eq!(m.read("wal"), Err(StoreError::Crashed));
        m.crash();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"0123");
    }

    #[test]
    fn short_fsync_persists_nothing_and_does_not_crash() {
        let mut m = MemMedium::new();
        m.append("wal", b"committed").unwrap();
        m.sync("wal").unwrap();
        m.append("wal", b"+lost").unwrap();
        m.arm(WriteFault::ShortFsync);
        assert!(matches!(m.sync("wal"), Err(StoreError::Io(_))));
        assert!(!m.is_crashed());
        assert_eq!(m.durable_bytes("wal").unwrap(), b"committed");
        // the un-synced tail dies at the next power cycle
        m.crash();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"committed");
    }

    #[test]
    fn crash_fault_fires_on_append_before_buffering() {
        let mut m = MemMedium::new();
        m.append("wal", b"first").unwrap();
        m.sync("wal").unwrap();
        m.arm(WriteFault::Crash);
        assert_eq!(m.append("wal", b"never"), Err(StoreError::Crashed));
        m.crash();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"first");
    }

    #[test]
    fn publish_is_atomic_under_crash() {
        let mut m = MemMedium::new();
        m.publish("snap", b"old").unwrap();
        m.arm(WriteFault::Crash);
        assert_eq!(m.publish("snap", b"new"), Err(StoreError::Crashed));
        m.crash();
        assert_eq!(m.read("snap").unwrap().unwrap(), b"old");
    }

    #[test]
    fn faults_fire_in_fifo_order() {
        let mut m = MemMedium::new();
        m.arm(WriteFault::ShortFsync);
        m.append("wal", b"x").unwrap();
        assert!(matches!(m.sync("wal"), Err(StoreError::Io(_))));
        assert_eq!(m.armed_len(), 0);
        m.sync("wal").unwrap(); // no fault left
        assert_eq!(m.durable_bytes("wal").unwrap(), b"x");
    }

    #[test]
    fn list_and_remove() {
        let mut m = MemMedium::new();
        m.publish("b", b"2").unwrap();
        m.publish("a", b"1").unwrap();
        assert_eq!(m.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        m.remove("a").unwrap();
        assert_eq!(m.list().unwrap(), vec!["b".to_string()]);
    }

    fn fs_scratch(name: &str) -> PathBuf {
        let mut p = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/store-scratch"));
        p.push(name);
        let _ = std::fs::remove_dir_all(&p); // teleios-lint: allow(swallowed-result)
        p
    }

    #[test]
    fn fs_medium_round_trip() {
        let mut m = FsMedium::open(fs_scratch("roundtrip")).unwrap();
        assert_eq!(m.read("wal").unwrap(), None);
        m.append("wal", b"abc").unwrap();
        m.append("wal", b"def").unwrap();
        m.sync("wal").unwrap();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"abcdef");
        m.publish("snap-01", b"state").unwrap();
        assert_eq!(
            m.list().unwrap(),
            vec!["snap-01".to_string(), "wal".to_string()]
        );
        m.publish("wal", b"").unwrap();
        assert_eq!(m.read("wal").unwrap().unwrap(), b"");
        m.remove("snap-01").unwrap();
        assert_eq!(m.list().unwrap(), vec!["wal".to_string()]);
    }
}
