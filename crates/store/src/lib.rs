#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-store — the durability doorway
//!
//! Every persistent store in TELEIOS (the vault catalog, the rdf
//! triple store, monet tables) is memory-resident; this crate makes
//! the observatory restartable. It is the *only* crate allowed to
//! touch `std::fs` for writes (enforced by teleios-lint's
//! `no-direct-fs` rule) and exposes one transactional key-value
//! surface behind which the rest of the workspace persists itself:
//!
//! * [`StorageBackend`] — the pluggable trait: `begin`/`put`/
//!   `delete`/`commit` transactions over named keyspaces, plus
//!   `scan`/`get` reads of the committed state and an explicit
//!   `snapshot` checkpoint.
//! * [`MemoryBackend`] — the current in-memory behavior behind the
//!   trait (and the oracle the durable backend is property-tested
//!   against).
//! * [`DurableBackend`] — an append-only, length-prefixed,
//!   CRC-checksummed write-ahead log with fsync-barriered commits and
//!   periodic snapshots; crash recovery loads the latest valid
//!   snapshot and replays the WAL, *truncating* at the first
//!   torn/corrupt record instead of failing.
//! * [`Medium`] — the byte-device abstraction underneath:
//!   [`FsMedium`] is real files, [`MemMedium`] is a simulated disk
//!   that models the durable-vs-volatile split (`sync` makes bytes
//!   durable, [`MemMedium::crash`] discards everything volatile) and
//!   accepts injected [`WriteFault`]s — torn appends, short fsyncs,
//!   crash points — so property tests can kill the engine at every
//!   WAL offset and assert recovery is exact.
//!
//! The recovery contract, tested exhaustively in
//! `tests/recovery_properties.rs`: for every crash point and every
//! WAL byte-truncation offset, reopening yields exactly the last
//! acknowledged committed state — no panic, no lost committed write,
//! no resurrected uncommitted write.
//!
//! Transaction discipline is double-checked: statically by
//! teleios-lint's path-sensitive `txn-leak` rule (every `begin()`
//! reaches `commit()`/`rollback()` on every path out of a function),
//! and at runtime by [`TxnWitness`] — in debug builds, dropping a
//! backend with a transaction still open panics with a pointer back
//! at the rule.

pub mod backend;
pub mod codec;
pub mod durable;
pub mod fault;
pub mod medium;
pub mod snapshot;
pub mod wal;
pub mod witness;

pub use backend::{full_state, KeyspaceState, MemoryBackend, StorageBackend, StoreStats, TxOp};
pub use durable::{DurableBackend, DurableConfig, RecoveryReport};
pub use fault::WriteFault;
pub use medium::{FsMedium, MemMedium, Medium};
pub use witness::TxnWitness;

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure reported by the medium (includes a failed fsync
    /// barrier — the commit that hit it is unacknowledged).
    Io(String),
    /// The device has crashed (fault injection): every operation fails
    /// until the medium is reopened via recovery.
    Crashed,
    /// A commit barrier failed earlier; the engine refuses further
    /// writes because the WAL tail's durability is indeterminate.
    /// Reopen (crash recovery) to resume from the last known-good
    /// state.
    Poisoned,
    /// A checksum or structural decode failure in data that callers
    /// asked for directly (recovery itself never fails on torn WAL
    /// tails — it truncates).
    Corrupt(String),
    /// A write or commit was attempted outside `begin`/`commit`.
    NoTransaction,
    /// `begin` was called while a transaction was already open.
    NestedTransaction,
    /// Malformed bytes while decoding a record, snapshot, or a
    /// domain-level encoding built on [`codec`].
    Codec(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StoreError::Crashed => write!(f, "storage device crashed (injected fault)"),
            StoreError::Poisoned => {
                write!(f, "storage engine poisoned by a failed commit barrier; reopen to recover")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt storage data: {msg}"),
            StoreError::NoTransaction => write!(f, "no open transaction"),
            StoreError::NestedTransaction => write!(f, "transaction already open"),
            StoreError::Codec(msg) => write!(f, "storage decode error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::Io("disk full".into()), "disk full"),
            (StoreError::Crashed, "crashed"),
            (StoreError::Poisoned, "poisoned"),
            (StoreError::Corrupt("bad crc".into()), "bad crc"),
            (StoreError::NoTransaction, "no open transaction"),
            (StoreError::NestedTransaction, "already open"),
            (StoreError::Codec("short read".into()), "short read"),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered} should contain {needle}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&StoreError::Crashed);
    }
}
