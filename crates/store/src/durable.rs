//! [`DurableBackend`]: write-ahead logging with fsync-barriered
//! commits, periodic snapshots, and exact crash recovery.
//!
//! ## Commit protocol
//!
//! A transaction's `Begin` + ops + `Commit` records are encoded into
//! one buffer, appended to the WAL, and made durable with a single
//! `sync` barrier. Only after the barrier returns `Ok` is the commit
//! acknowledged and applied in memory. If the barrier fails, the
//! engine **poisons** itself: the WAL tail's durability is
//! indeterminate (the fsyncgate lesson — a failed fsync may not be
//! retryable), so every later write returns [`StoreError::Poisoned`]
//! until the store is reopened through recovery.
//!
//! ## Snapshot protocol
//!
//! Every `snapshot_every` commits (or on an explicit
//! [`StorageBackend::snapshot`] call) the full state is published
//! atomically as `snap-<seq>.tls`, then the WAL is atomically reset
//! to empty, then old snapshots beyond `keep_snapshots` are pruned.
//! Each step is individually crash-safe: a crash between the
//! snapshot publish and the WAL reset just leaves a WAL whose
//! records replay as no-ops (sequence numbers ≤ the snapshot's are
//! skipped).
//!
//! ## Recovery
//!
//! [`DurableBackend::open`] loads the newest snapshot that passes
//! its checksum (falling back to older ones), scans the WAL with the
//! total [`wal::scan`] — truncating the file at the first
//! torn/corrupt record — and replays committed transactions whose
//! sequence exceeds the snapshot's. Transactions with a `Begin` but
//! no matching `Commit` on disk are discarded: an unacknowledged
//! write is never resurrected.

use std::collections::BTreeMap;

use crate::backend::{apply_op, KeyspaceState, StorageBackend, StoreStats, TxOp};
use crate::medium::Medium;
use crate::snapshot;
use crate::wal::{self, WalRecord, WAL_FILE};
use std::sync::Arc;

use crate::witness::{next_instance, TxnWitness};
use crate::{Result, StoreError};

/// Tuning knobs for [`DurableBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Write an automatic snapshot after this many commits
    /// (`None` disables auto-snapshotting; explicit calls still work).
    pub snapshot_every: Option<u64>,
    /// How many snapshot generations to keep on disk (older ones are
    /// pruned after each new snapshot). The extras are the fallback
    /// chain if the newest snapshot is damaged.
    pub keep_snapshots: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { snapshot_every: Some(64), keep_snapshots: 2 }
    }
}

/// What recovery found and did, exposed via
/// [`DurableBackend::recovery`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot the state was loaded from
    /// (0 = no snapshot, started empty).
    pub snapshot_seq: u64,
    /// True if the newest snapshot was damaged and an older one was
    /// used instead.
    pub snapshot_fallback: bool,
    /// WAL records that scanned successfully.
    pub records_scanned: usize,
    /// Committed transactions actually replayed on top of the
    /// snapshot (sequence-skipped ones don't count).
    pub transactions_replayed: u64,
    /// If the WAL had a torn/corrupt tail: how many bytes were
    /// discarded by the physical truncation.
    pub wal_truncated: Option<usize>,
    /// Keyspaces in the recovered state.
    pub recovered_keyspaces: usize,
    /// Total entries in the recovered state.
    pub recovered_entries: usize,
}

/// WAL + snapshot storage over any [`Medium`].
#[derive(Debug)]
pub struct DurableBackend<M: Medium> {
    medium: M,
    config: DurableConfig,
    state: KeyspaceState,
    tx: Option<Vec<TxOp>>,
    seq: u64,
    wal_len: usize,
    commits_since_snapshot: u64,
    poisoned: bool,
    snapshot_error: Option<StoreError>,
    stats: StoreStats,
    recovery: RecoveryReport,
    instance: u64,
    witness: Arc<TxnWitness>,
}

impl<M: Medium> DurableBackend<M> {
    /// Open a store on `medium`, running crash recovery: load the
    /// newest valid snapshot, truncate any torn WAL tail, replay
    /// committed transactions.
    pub fn open(medium: M, config: DurableConfig) -> Result<Self> {
        let mut medium = medium;
        let mut report = RecoveryReport::default();

        // 1. newest valid snapshot, falling back through generations
        let mut snap_names: Vec<(u64, String)> = medium
            .list()?
            .into_iter()
            .filter_map(|n| snapshot::parse_snapshot_name(&n).map(|seq| (seq, n)))
            .collect();
        snap_names.sort();
        let mut state = KeyspaceState::new();
        let mut snapshot_seq = 0u64;
        for (idx, (_, name)) in snap_names.iter().enumerate().rev() {
            match medium.read(name)? {
                Some(bytes) => match snapshot::decode(&bytes) {
                    Ok((seq, loaded)) => {
                        state = loaded;
                        snapshot_seq = seq;
                        report.snapshot_fallback = idx + 1 < snap_names.len();
                        break;
                    }
                    Err(_) => continue,
                },
                None => continue,
            }
        }
        report.snapshot_seq = snapshot_seq;

        // 2. scan the WAL, physically truncating a torn tail so
        // future appends land on a well-formed log
        let wal_bytes = medium.read(WAL_FILE)?.unwrap_or_default();
        let scan = wal::scan(&wal_bytes);
        if scan.truncated {
            medium.publish(WAL_FILE, &wal_bytes[..scan.valid_len])?;
            report.wal_truncated = Some(wal_bytes.len() - scan.valid_len);
        }
        report.records_scanned = scan.records.len();

        // 3. replay committed transactions past the snapshot
        let mut pending: Option<(u64, Vec<TxOp>)> = None;
        let mut applied_seq = snapshot_seq;
        for record in scan.records {
            match record {
                WalRecord::Begin { seq } => {
                    pending = Some((seq, Vec::new()));
                }
                WalRecord::Put { keyspace, key, value } => {
                    if let Some((_, ops)) = &mut pending {
                        ops.push(TxOp::Put { keyspace, key, value });
                    }
                }
                WalRecord::Delete { keyspace, key } => {
                    if let Some((_, ops)) = &mut pending {
                        ops.push(TxOp::Delete { keyspace, key });
                    }
                }
                WalRecord::Commit { seq } => {
                    if let Some((begin_seq, ops)) = pending.take() {
                        if begin_seq == seq && seq > applied_seq {
                            for op in &ops {
                                apply_op(&mut state, op);
                            }
                            applied_seq = seq;
                            report.transactions_replayed += 1;
                        }
                    }
                }
            }
        }
        report.recovered_keyspaces = state.len();
        report.recovered_entries = state.values().map(|ks| ks.len()).sum();

        let wal_len = scan.valid_len;
        Ok(DurableBackend {
            medium,
            config,
            state,
            tx: None,
            seq: applied_seq,
            wal_len,
            commits_since_snapshot: 0,
            poisoned: false,
            snapshot_error: None,
            stats: StoreStats { wal_bytes: wal_len, ..StoreStats::default() },
            recovery: report,
            instance: next_instance(),
            witness: Arc::clone(TxnWitness::global()),
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    pub fn config(&self) -> DurableConfig {
        self.config
    }

    /// True once a failed commit barrier has halted the engine.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Error from the most recent failed automatic snapshot, if any
    /// (the commit that triggered it was still durable and
    /// acknowledged; the checkpoint will be retried).
    pub fn last_snapshot_error(&self) -> Option<&StoreError> {
        self.snapshot_error.as_ref()
    }

    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Mutable access to the medium — how tests arm write faults.
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// Tear down the engine and hand back the medium (tests reopen
    /// it through [`DurableBackend::open`] to model a restart).
    pub fn into_medium(self) -> M {
        // The engine is being torn down deliberately (crash-recovery
        // tests reopen the medium); an in-flight transaction dies
        // with it, so close the witness's book on this instance.
        self.witness.note_end(self.instance);
        self.medium
    }

    fn check_writable(&self) -> Result<()> {
        if self.poisoned {
            Err(StoreError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn tx_mut(&mut self) -> Result<&mut Vec<TxOp>> {
        self.tx.as_mut().ok_or(StoreError::NoTransaction)
    }

    fn write_snapshot(&mut self) -> Result<()> {
        let bytes = snapshot::encode(self.seq, &self.state);
        let name = snapshot::snapshot_name(self.seq);
        self.medium.publish(&name, &bytes)?;
        self.medium.publish(WAL_FILE, &[])?;
        self.wal_len = 0;
        self.commits_since_snapshot = 0;
        self.stats.snapshots_written += 1;
        // prune old generations, keeping the newest `keep_snapshots`
        let mut snaps: Vec<(u64, String)> = self
            .medium
            .list()?
            .into_iter()
            .filter_map(|n| snapshot::parse_snapshot_name(&n).map(|seq| (seq, n)))
            .collect();
        snaps.sort();
        let keep = self.config.keep_snapshots.max(1);
        if snaps.len() > keep {
            let drop_n = snaps.len() - keep;
            for (_, name) in snaps.into_iter().take(drop_n) {
                self.medium.remove(&name)?;
            }
        }
        Ok(())
    }
}

impl<M: Medium> StorageBackend for DurableBackend<M> {
    fn begin(&mut self) -> Result<()> {
        self.check_writable()?;
        if self.tx.is_some() {
            return Err(StoreError::NestedTransaction);
        }
        self.tx = Some(Vec::new());
        self.witness.note_begin(self.instance, "DurableBackend");
        Ok(())
    }

    fn put(&mut self, keyspace: &str, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_writable()?;
        let op = TxOp::Put {
            keyspace: keyspace.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
        };
        self.tx_mut()?.push(op);
        Ok(())
    }

    fn delete(&mut self, keyspace: &str, key: &[u8]) -> Result<()> {
        self.check_writable()?;
        let op = TxOp::Delete { keyspace: keyspace.to_string(), key: key.to_vec() };
        self.tx_mut()?.push(op);
        Ok(())
    }

    fn commit(&mut self) -> Result<u64> {
        self.check_writable()?;
        let ops = self.tx.take().ok_or(StoreError::NoTransaction)?;
        self.witness.note_end(self.instance);
        if ops.is_empty() {
            return Ok(self.seq);
        }
        let seq = self.seq + 1;
        let mut frame = Vec::new();
        wal::encode_record(&mut frame, &WalRecord::Begin { seq });
        for op in &ops {
            let record = match op {
                TxOp::Put { keyspace, key, value } => WalRecord::Put {
                    keyspace: keyspace.clone(),
                    key: key.clone(),
                    value: value.clone(),
                },
                TxOp::Delete { keyspace, key } => {
                    WalRecord::Delete { keyspace: keyspace.clone(), key: key.clone() }
                }
            };
            wal::encode_record(&mut frame, &record);
        }
        wal::encode_record(&mut frame, &WalRecord::Commit { seq });

        // single durability barrier for the whole transaction; a
        // failure anywhere leaves the tail's durability unknown, so
        // the engine halts rather than risk acknowledging a ghost
        if let Err(e) = self.medium.append(WAL_FILE, &frame) {
            self.poisoned = true;
            return Err(e);
        }
        if let Err(e) = self.medium.sync(WAL_FILE) {
            self.poisoned = true;
            return Err(e);
        }

        self.seq = seq;
        self.wal_len += frame.len();
        for op in &ops {
            match op {
                TxOp::Put { .. } => self.stats.puts += 1,
                TxOp::Delete { .. } => self.stats.deletes += 1,
            }
            apply_op(&mut self.state, op);
        }
        self.stats.commits += 1;
        self.commits_since_snapshot += 1;

        if let Some(every) = self.config.snapshot_every {
            if self.commits_since_snapshot >= every {
                // the commit above is already durable and must stay
                // acknowledged; a failed checkpoint is recorded and
                // retried, never turned into a commit error
                if let Err(e) = self.write_snapshot() {
                    self.snapshot_error = Some(e);
                } else {
                    self.snapshot_error = None;
                }
            }
        }
        Ok(seq)
    }

    fn rollback(&mut self) {
        if self.tx.take().is_some() {
            self.witness.note_end(self.instance);
        }
    }

    fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    fn get(&self, keyspace: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.state.get(keyspace).and_then(|ks| ks.get(key).cloned()))
    }

    fn scan(&self, keyspace: &str) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self
            .state
            .get(keyspace)
            .map(|ks| ks.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default())
    }

    fn keyspaces(&self) -> Result<Vec<String>> {
        Ok(self.state.keys().cloned().collect())
    }

    fn last_seq(&self) -> u64 {
        self.seq
    }

    fn snapshot(&mut self) -> Result<()> {
        self.check_writable()?;
        if self.tx.is_some() {
            return Err(StoreError::NestedTransaction);
        }
        self.write_snapshot()
    }

    fn stats(&self) -> StoreStats {
        let mut s = self.stats;
        s.keyspaces = self.state.len();
        s.entries = self.state.values().map(|ks| ks.len()).sum();
        s.wal_bytes = self.wal_len;
        s
    }
}

/// Convenience: a map-keyed view of what's on the medium (snapshot
/// names → sequence numbers), for diagnostics and tests.
pub fn snapshots_on<M: Medium>(medium: &M) -> Result<BTreeMap<String, u64>> {
    Ok(medium
        .list()?
        .into_iter()
        .filter_map(|n| snapshot::parse_snapshot_name(&n).map(|seq| (n, seq)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::full_state;
    use crate::medium::MemMedium;

    fn open_mem() -> DurableBackend<MemMedium> {
        DurableBackend::open(MemMedium::new(), DurableConfig::default()).unwrap()
    }

    #[test]
    fn fresh_store_is_empty() {
        let b = open_mem();
        assert_eq!(b.last_seq(), 0);
        assert!(b.keyspaces().unwrap().is_empty());
        assert_eq!(b.recovery().records_scanned, 0);
    }

    #[test]
    fn commit_survives_reopen() {
        let mut b = open_mem();
        b.begin().unwrap();
        b.put("vault/catalog", b"scene-1", b"record").unwrap();
        b.commit().unwrap();
        let before = full_state(&b).unwrap();

        let b2 = DurableBackend::open(b.into_medium(), DurableConfig::default()).unwrap();
        assert_eq!(full_state(&b2).unwrap(), before);
        assert_eq!(b2.last_seq(), 1);
        assert_eq!(b2.recovery().transactions_replayed, 1);
    }

    #[test]
    fn uncommitted_writes_do_not_survive() {
        let mut b = open_mem();
        b.begin().unwrap();
        b.put("ks", b"committed", b"yes").unwrap();
        b.commit().unwrap();
        b.begin().unwrap();
        b.put("ks", b"uncommitted", b"no").unwrap();
        // power cut with the txn open: only the Begin/Put records may
        // be buffered; nothing was synced
        let mut m = b.into_medium();
        m.crash();
        let b2 = DurableBackend::open(m, DurableConfig::default()).unwrap();
        assert_eq!(b2.get("ks", b"committed").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(b2.get("ks", b"uncommitted").unwrap(), None);
    }

    #[test]
    fn snapshot_resets_wal_and_survives() {
        let mut b = DurableBackend::open(
            MemMedium::new(),
            DurableConfig { snapshot_every: None, keep_snapshots: 2 },
        )
        .unwrap();
        for i in 0..5u8 {
            b.begin().unwrap();
            b.put("ks", &[i], &[i; 8]).unwrap();
            b.commit().unwrap();
        }
        assert!(b.stats().wal_bytes > 0);
        b.snapshot().unwrap();
        assert_eq!(b.stats().wal_bytes, 0);
        let before = full_state(&b).unwrap();

        let b2 = DurableBackend::open(b.into_medium(), DurableConfig::default()).unwrap();
        assert_eq!(full_state(&b2).unwrap(), before);
        assert_eq!(b2.recovery().snapshot_seq, 5);
        assert_eq!(b2.recovery().transactions_replayed, 0);
        assert_eq!(b2.last_seq(), 5);
    }

    #[test]
    fn auto_snapshot_fires_and_prunes() {
        let mut b = DurableBackend::open(
            MemMedium::new(),
            DurableConfig { snapshot_every: Some(2), keep_snapshots: 2 },
        )
        .unwrap();
        for i in 0..10u8 {
            b.begin().unwrap();
            b.put("ks", &[i], &[i]).unwrap();
            b.commit().unwrap();
        }
        assert_eq!(b.stats().snapshots_written, 5);
        let snaps = snapshots_on(b.medium()).unwrap();
        assert_eq!(snaps.len(), 2, "pruned to keep_snapshots: {snaps:?}");
        assert!(snaps.values().any(|&s| s == 10));
    }

    #[test]
    fn failed_barrier_poisons_engine() {
        let mut b = open_mem();
        b.begin().unwrap();
        b.put("ks", b"k", b"v").unwrap();
        b.medium_mut().arm(crate::WriteFault::ShortFsync);
        assert!(matches!(b.commit(), Err(StoreError::Io(_))));
        assert!(b.is_poisoned());
        assert_eq!(b.begin(), Err(StoreError::Poisoned));
        // committed state still readable and the ghost is invisible
        assert_eq!(b.get("ks", b"k").unwrap(), None);
        // reopen after power cycle: exact pre-commit state
        let mut m = b.into_medium();
        m.crash();
        let b2 = DurableBackend::open(m, DurableConfig::default()).unwrap();
        assert_eq!(b2.get("ks", b"k").unwrap(), None);
        assert_eq!(b2.last_seq(), 0);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let mut b = open_mem();
        b.begin().unwrap();
        b.put("ks", b"k", b"v").unwrap();
        b.commit().unwrap();
        let mut m = b.into_medium();
        let mut bytes = m.durable_bytes(WAL_FILE).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        m.set_file(WAL_FILE, &bytes);
        let b2 = DurableBackend::open(m, DurableConfig::default()).unwrap();
        assert_eq!(b2.recovery().wal_truncated, Some(4));
        assert_eq!(b2.get("ks", b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(b2.medium().durable_len(WAL_FILE), full, "tail physically gone");
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let mut b = DurableBackend::open(
            MemMedium::new(),
            DurableConfig { snapshot_every: None, keep_snapshots: 2 },
        )
        .unwrap();
        b.begin().unwrap();
        b.put("ks", b"gen", b"1").unwrap();
        b.commit().unwrap();
        b.snapshot().unwrap();
        b.begin().unwrap();
        b.put("ks", b"gen", b"2").unwrap();
        b.commit().unwrap();
        b.snapshot().unwrap();
        let mut m = b.into_medium();
        // smash the newest snapshot
        let newest = snapshot::snapshot_name(2);
        let mut bytes = m.durable_bytes(&newest).unwrap();
        if let Some(byte) = bytes.last_mut() {
            *byte ^= 0xff;
        }
        m.set_file(&newest, &bytes);
        let b2 = DurableBackend::open(m, DurableConfig::default()).unwrap();
        assert!(b2.recovery().snapshot_fallback);
        assert_eq!(b2.recovery().snapshot_seq, 1);
        // WAL was reset at snapshot 2, so gen=2 is lost to the
        // damaged checkpoint — but gen=1 (the older valid
        // checkpoint) is recovered, not an empty store
        assert_eq!(b2.get("ks", b"gen").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let mut b = open_mem();
        b.begin().unwrap();
        assert_eq!(b.commit().unwrap(), 0);
        assert_eq!(b.stats().commits, 0);
        assert_eq!(b.stats().wal_bytes, 0);
    }
}
