//! Write-layer fault injection. These are the storage-side halves of
//! the durability faults in `teleios-resilience` (`Fault::TornWrite`,
//! `Fault::ShortFsync`, `Fault::CrashPoint`): a [`WriteFault`] is
//! armed on a [`MemMedium`](crate::MemMedium) and fires on the next
//! matching device operation, so tests can kill the engine at an
//! exact WAL offset and then assert recovery is bit-exact.

/// A single injected device-level failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The next `sync` tears: only the first `keep` volatile bytes
    /// reach durable storage before the device crashes. Models a
    /// power cut mid-way through the kernel flushing the page cache.
    Torn { keep: usize },
    /// The next `sync` reports success-path I/O failure *without*
    /// persisting anything new and *without* crashing the device —
    /// the fsyncgate scenario. The engine must treat the commit as
    /// unacknowledged and poison itself.
    ShortFsync,
    /// The next `append` crashes the device before any byte of it is
    /// even buffered.
    Crash,
}

impl WriteFault {
    /// Stable label used in bench tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            WriteFault::Torn { .. } => "torn-write",
            WriteFault::ShortFsync => "short-fsync",
            WriteFault::Crash => "crash-point",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            WriteFault::Torn { keep: 3 }.label(),
            WriteFault::ShortFsync.label(),
            WriteFault::Crash.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
