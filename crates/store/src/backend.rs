//! The pluggable storage surface: [`StorageBackend`] and the
//! in-memory reference implementation [`MemoryBackend`].
//!
//! The trait is object-safe on purpose — the domain adapters (vault
//! catalog, rdf triple store, monet tables) persist themselves
//! through `&mut dyn StorageBackend`, so swapping memory for WAL
//! durability is a constructor choice, not a code change.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::witness::{next_instance, TxnWitness};
use crate::{Result, StoreError};

/// Canonical committed state: keyspace name → sorted key → value.
/// Keyspaces with no keys are absent (not present-but-empty), so
/// `KeyspaceState` equality is state equality.
pub type KeyspaceState = BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>;

/// One buffered transactional operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOp {
    Put { keyspace: String, key: Vec<u8>, value: Vec<u8> },
    Delete { keyspace: String, key: Vec<u8> },
}

/// Apply one op to a state map, removing keyspace entries that
/// become empty so state equality stays canonical.
pub(crate) fn apply_op(state: &mut KeyspaceState, op: &TxOp) {
    match op {
        TxOp::Put { keyspace, key, value } => {
            state.entry(keyspace.clone()).or_default().insert(key.clone(), value.clone());
        }
        TxOp::Delete { keyspace, key } => {
            if let Some(ks) = state.get_mut(keyspace) {
                ks.remove(key);
                if ks.is_empty() {
                    state.remove(keyspace);
                }
            }
        }
    }
}

/// Counters exposed by [`StorageBackend::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successfully committed transactions.
    pub commits: u64,
    /// Put operations inside committed transactions.
    pub puts: u64,
    /// Delete operations inside committed transactions.
    pub deletes: u64,
    /// Keyspaces currently holding at least one key.
    pub keyspaces: usize,
    /// Total key/value entries across all keyspaces.
    pub entries: usize,
    /// Current WAL size in bytes (0 for the memory backend).
    pub wal_bytes: usize,
    /// Snapshots written since open (0 for the memory backend).
    pub snapshots_written: u64,
}

/// Transactional key-value storage over named keyspaces.
///
/// Contract:
/// * Reads (`get`/`scan`/`keyspaces`) observe only **committed**
///   state — never the ops buffered in an open transaction.
/// * `commit` returns the transaction's sequence number; once it
///   returns `Ok`, the transaction is durable to the backend's
///   durability level (fsync-barriered for the WAL backend).
/// * After any `Err` from `commit`, the transaction is NOT applied.
pub trait StorageBackend {
    /// Open a transaction. `Err(NestedTransaction)` if one is open.
    fn begin(&mut self) -> Result<()>;

    /// Buffer a put in the open transaction.
    fn put(&mut self, keyspace: &str, key: &[u8], value: &[u8]) -> Result<()>;

    /// Buffer a delete in the open transaction.
    fn delete(&mut self, keyspace: &str, key: &[u8]) -> Result<()>;

    /// Atomically apply the open transaction; returns its sequence
    /// number. Committing an empty transaction is a no-op that
    /// returns the current sequence.
    fn commit(&mut self) -> Result<u64>;

    /// Discard the open transaction (no-op if none is open).
    fn rollback(&mut self);

    /// True while a transaction is open.
    fn in_transaction(&self) -> bool;

    /// Committed value for `key` in `keyspace`.
    fn get(&self, keyspace: &str, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// All committed `(key, value)` pairs in `keyspace`, key-sorted.
    fn scan(&self, keyspace: &str) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Sorted names of keyspaces holding at least one committed key.
    fn keyspaces(&self) -> Result<Vec<String>>;

    /// Sequence number of the most recently committed transaction
    /// (0 if none).
    fn last_seq(&self) -> u64;

    /// Force a checkpoint now (durable backends write a snapshot and
    /// reset the WAL; the memory backend is a no-op).
    fn snapshot(&mut self) -> Result<()>;

    /// Current counters.
    fn stats(&self) -> StoreStats;
}

/// Full committed state of a backend, for equivalence assertions.
pub fn full_state(backend: &dyn StorageBackend) -> Result<KeyspaceState> {
    let mut state = KeyspaceState::new();
    for ks in backend.keyspaces()? {
        let pairs = backend.scan(&ks)?;
        if !pairs.is_empty() {
            state.insert(ks, pairs.into_iter().collect());
        }
    }
    Ok(state)
}

/// The pre-existing in-memory behavior behind the trait: transactions
/// buffer ops and apply them on commit; nothing survives the process.
/// Doubles as the oracle in `DurableBackend` equivalence tests.
#[derive(Debug)]
pub struct MemoryBackend {
    state: KeyspaceState,
    tx: Option<Vec<TxOp>>,
    seq: u64,
    stats: StoreStats,
    instance: u64,
    witness: Arc<TxnWitness>,
}

impl Default for MemoryBackend {
    fn default() -> Self {
        Self::with_witness(TxnWitness::global())
    }
}

impl Clone for MemoryBackend {
    /// The clone is a new instance to the witness; a transaction open
    /// at clone time is open (and separately tracked) in both.
    fn clone(&self) -> Self {
        let instance = next_instance();
        if self.tx.is_some() {
            self.witness.note_begin(instance, "MemoryBackend");
        }
        MemoryBackend {
            state: self.state.clone(),
            tx: self.tx.clone(),
            seq: self.seq,
            stats: self.stats,
            instance,
            witness: Arc::clone(&self.witness),
        }
    }
}

impl Drop for MemoryBackend {
    /// Debug builds panic here if a transaction is still open — the
    /// runtime counterpart of teleios-lint's `txn-leak` rule for
    /// flows the intraprocedural lint cannot follow.
    fn drop(&mut self) {
        self.witness.note_drop(self.instance);
    }
}

impl MemoryBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend reporting to `witness` instead of the process-wide
    /// one. An always-on [`TxnWitness::new`] witness makes the
    /// drop-leak panic effective in release builds too and keeps test
    /// runs isolated.
    pub fn with_witness(witness: &Arc<TxnWitness>) -> Self {
        MemoryBackend {
            state: KeyspaceState::new(),
            tx: None,
            seq: 0,
            stats: StoreStats::default(),
            instance: next_instance(),
            witness: Arc::clone(witness),
        }
    }

    fn tx_mut(&mut self) -> Result<&mut Vec<TxOp>> {
        self.tx.as_mut().ok_or(StoreError::NoTransaction)
    }
}

impl StorageBackend for MemoryBackend {
    fn begin(&mut self) -> Result<()> {
        if self.tx.is_some() {
            return Err(StoreError::NestedTransaction);
        }
        self.tx = Some(Vec::new());
        self.witness.note_begin(self.instance, "MemoryBackend");
        Ok(())
    }

    fn put(&mut self, keyspace: &str, key: &[u8], value: &[u8]) -> Result<()> {
        let op = TxOp::Put {
            keyspace: keyspace.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
        };
        self.tx_mut()?.push(op);
        Ok(())
    }

    fn delete(&mut self, keyspace: &str, key: &[u8]) -> Result<()> {
        let op = TxOp::Delete { keyspace: keyspace.to_string(), key: key.to_vec() };
        self.tx_mut()?.push(op);
        Ok(())
    }

    fn commit(&mut self) -> Result<u64> {
        let ops = self.tx.take().ok_or(StoreError::NoTransaction)?;
        self.witness.note_end(self.instance);
        if ops.is_empty() {
            return Ok(self.seq);
        }
        self.seq += 1;
        for op in &ops {
            match op {
                TxOp::Put { .. } => self.stats.puts += 1,
                TxOp::Delete { .. } => self.stats.deletes += 1,
            }
            apply_op(&mut self.state, op);
        }
        self.stats.commits += 1;
        Ok(self.seq)
    }

    fn rollback(&mut self) {
        if self.tx.take().is_some() {
            self.witness.note_end(self.instance);
        }
    }

    fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    fn get(&self, keyspace: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.state.get(keyspace).and_then(|ks| ks.get(key).cloned()))
    }

    fn scan(&self, keyspace: &str) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self
            .state
            .get(keyspace)
            .map(|ks| ks.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default())
    }

    fn keyspaces(&self) -> Result<Vec<String>> {
        Ok(self.state.keys().cloned().collect())
    }

    fn last_seq(&self) -> u64 {
        self.seq
    }

    fn snapshot(&mut self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let mut s = self.stats;
        s.keyspaces = self.state.len();
        s.entries = self.state.values().map(|ks| ks.len()).sum();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_applies_rollback_discards() {
        let mut b = MemoryBackend::new();
        b.begin().unwrap();
        b.put("ks", b"k", b"v1").unwrap();
        assert_eq!(b.get("ks", b"k").unwrap(), None, "uncommitted writes invisible");
        let seq = b.commit().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(b.get("ks", b"k").unwrap(), Some(b"v1".to_vec()));

        b.begin().unwrap();
        b.put("ks", b"k", b"v2").unwrap();
        b.rollback();
        assert_eq!(b.get("ks", b"k").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(b.last_seq(), 1);
    }

    #[test]
    fn transaction_discipline() {
        let mut b = MemoryBackend::new();
        assert_eq!(b.put("ks", b"k", b"v"), Err(StoreError::NoTransaction));
        assert_eq!(b.commit(), Err(StoreError::NoTransaction));
        b.begin().unwrap();
        assert_eq!(b.begin(), Err(StoreError::NestedTransaction));
        b.rollback();
        b.begin().unwrap(); // rollback closes the txn
        assert_eq!(b.commit().unwrap(), 0, "empty commit is a no-op at seq 0");
    }

    #[test]
    fn delete_removes_empty_keyspaces() {
        let mut b = MemoryBackend::new();
        b.begin().unwrap();
        b.put("ks", b"k", b"v").unwrap();
        b.commit().unwrap();
        assert_eq!(b.keyspaces().unwrap(), vec!["ks".to_string()]);
        b.begin().unwrap();
        b.delete("ks", b"k").unwrap();
        b.commit().unwrap();
        assert!(b.keyspaces().unwrap().is_empty());
        assert!(full_state(&b).unwrap().is_empty());
    }

    #[test]
    fn scan_is_sorted_and_stats_count() {
        let mut b = MemoryBackend::new();
        b.begin().unwrap();
        b.put("ks", b"b", b"2").unwrap();
        b.put("ks", b"a", b"1").unwrap();
        b.delete("ks", b"missing").unwrap();
        b.commit().unwrap();
        let pairs = b.scan("ks").unwrap();
        assert_eq!(
            pairs,
            vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())]
        );
        let stats = b.stats();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.puts, 2);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn witness_sees_a_clean_lifecycle_through_the_backend() {
        let w = TxnWitness::new();
        {
            let mut b = MemoryBackend::with_witness(&w);
            b.begin().unwrap();
            b.put("ks", b"k", b"v").unwrap();
            b.commit().unwrap();
            b.begin().unwrap();
            b.rollback();
        }
        w.assert_none_open();
        assert_eq!(w.counts(), (2, 2));
    }

    // The explicit witness is always-on, so this panics in release
    // builds too — the seeded-leak cross-check for the static
    // `txn-leak` rule.
    #[test]
    #[should_panic(expected = "transaction leak")]
    fn witness_panics_when_an_open_transaction_is_dropped() {
        let w = TxnWitness::new();
        let mut b = MemoryBackend::with_witness(&w);
        b.begin().unwrap();
        b.put("ks", b"k", b"v").unwrap();
        drop(b);
    }

    #[test]
    fn cloning_an_open_transaction_tracks_both_instances() {
        let w = TxnWitness::new();
        let mut a = MemoryBackend::with_witness(&w);
        a.begin().unwrap();
        let mut b = a.clone();
        assert_eq!(w.open_count(), 2);
        a.rollback();
        b.commit().unwrap();
        w.assert_none_open();
    }
}
