//! Snapshot encoding: a checksummed, shared-prefix-compressed dump
//! of the full committed state at a sequence number.
//!
//! Layout: magic `b"TLSNAP1\n"`, then `len: u32 LE`, `crc32(payload):
//! u32 LE`, then the payload:
//!
//! ```text
//! seq varint
//! n_keyspaces varint
//! per keyspace:
//!   name str
//!   n_entries varint
//!   per entry (keys ascending):
//!     shared varint       # bytes shared with the previous key
//!     suffix bytes        # rest of the key
//!     value bytes
//! ```
//!
//! Keys inside a keyspace are stored sorted, so consecutive keys
//! share long prefixes (dictionary ids, column-page indexes) and the
//! shared-prefix compression does real work on the domain encodings.

use crate::backend::KeyspaceState;
use crate::codec::{crc32, put_bytes, put_str, put_varint, Reader};
use crate::{Result, StoreError};

/// Magic prefix identifying a snapshot file.
pub const MAGIC: &[u8; 8] = b"TLSNAP1\n";

/// File name for the snapshot at sequence `seq` (hex-padded so
/// lexicographic order is sequence order).
pub fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:016x}.tls")
}

/// Parse a snapshot file name back to its sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".tls")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn shared_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Encode the full state at `seq` as a snapshot file body.
pub fn encode(seq: u64, state: &KeyspaceState) -> Vec<u8> {
    let mut payload = Vec::new();
    put_varint(&mut payload, seq);
    put_varint(&mut payload, state.len() as u64);
    for (name, entries) in state {
        put_str(&mut payload, name);
        put_varint(&mut payload, entries.len() as u64);
        let mut prev: &[u8] = &[];
        for (key, value) in entries {
            let shared = shared_prefix_len(prev, key);
            put_varint(&mut payload, shared as u64);
            put_bytes(&mut payload, &key[shared..]);
            put_bytes(&mut payload, value);
            prev = key;
        }
    }
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a snapshot file body back to `(seq, state)`. Any damage —
/// bad magic, bad length, bad CRC, structural nonsense — is
/// `Err(Corrupt)`, which recovery treats as "fall back to the
/// previous snapshot".
pub fn decode(bytes: &[u8]) -> Result<(u64, KeyspaceState)> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(StoreError::Corrupt("snapshot shorter than header".into()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    let len = u32::from_le_bytes(len4) as usize;
    let mut crc4 = [0u8; 4];
    crc4.copy_from_slice(&bytes[MAGIC.len() + 4..MAGIC.len() + 8]);
    let expect_crc = u32::from_le_bytes(crc4);
    let body = &bytes[MAGIC.len() + 8..];
    if body.len() != len {
        return Err(StoreError::Corrupt(format!(
            "snapshot payload length {} != declared {len}",
            body.len()
        )));
    }
    if crc32(body) != expect_crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    let parse = |r: &mut Reader| -> Result<(u64, KeyspaceState)> {
        let seq = r.varint()?;
        let n_keyspaces = r.varint()?;
        let mut state = KeyspaceState::new();
        for _ in 0..n_keyspaces {
            let name = r.string()?;
            let n_entries = r.varint()?;
            let mut entries = std::collections::BTreeMap::new();
            let mut prev: Vec<u8> = Vec::new();
            for _ in 0..n_entries {
                let shared = r.varint()? as usize;
                if shared > prev.len() {
                    return Err(StoreError::Codec("shared prefix beyond previous key".into()));
                }
                let suffix = r.bytes()?.to_vec();
                let value = r.bytes()?.to_vec();
                let mut key = prev[..shared].to_vec();
                key.extend_from_slice(&suffix);
                prev = key.clone();
                entries.insert(key, value);
            }
            if !entries.is_empty() {
                state.insert(name, entries);
            }
        }
        if !r.is_empty() {
            return Err(StoreError::Codec("trailing bytes after snapshot state".into()));
        }
        Ok((seq, state))
    };
    parse(&mut r).map_err(|e| match e {
        StoreError::Codec(msg) => StoreError::Corrupt(format!("snapshot structure: {msg}")),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_state() -> KeyspaceState {
        let mut state = KeyspaceState::new();
        let mut rdf = BTreeMap::new();
        rdf.insert(b"triples".to_vec(), vec![9u8; 40]);
        state.insert("rdf/spo".into(), rdf);
        let mut cols = BTreeMap::new();
        for i in 0u32..8 {
            let mut key = b"hotspots\x00".to_vec();
            key.extend_from_slice(&i.to_be_bytes());
            cols.insert(key, vec![i as u8; 16]);
        }
        state.insert("monet/col".into(), cols);
        state
    }

    #[test]
    fn round_trip() {
        let state = sample_state();
        let bytes = encode(42, &state);
        let (seq, back) = decode(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, state);
    }

    #[test]
    fn empty_state_round_trips() {
        let bytes = encode(0, &KeyspaceState::new());
        let (seq, back) = decode(&bytes).unwrap();
        assert_eq!(seq, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn shared_prefix_compression_beats_naive() {
        let state = sample_state();
        let naive: usize = state
            .values()
            .flat_map(|ks| ks.iter().map(|(k, v)| k.len() + v.len()))
            .sum();
        let encoded = encode(1, &state).len();
        // 8 keys sharing a 9-byte prefix must compress below naive + framing slack
        assert!(encoded < naive + 64, "encoded {encoded} vs naive {naive}");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode(7, &sample_state());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(7, &sample_state());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn names_round_trip_and_sort_by_seq() {
        for seq in [0u64, 1, 64, u64::MAX] {
            assert_eq!(parse_snapshot_name(&snapshot_name(seq)), Some(seq));
        }
        assert!(snapshot_name(9) < snapshot_name(10));
        assert!(snapshot_name(255) < snapshot_name(256));
        assert_eq!(parse_snapshot_name("wal.tlw"), None);
        assert_eq!(parse_snapshot_name("snap-xyz.tls"), None);
    }
}
