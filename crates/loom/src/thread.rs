//! Modeled `thread::spawn` / `JoinHandle` / `yield_now`. Inside a
//! [`crate::model`] run, spawned closures become scheduler-controlled
//! model threads; outside, they are plain `std` threads.

use crate::sched;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type ResultSlot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

pub struct JoinHandle<T> {
    slot: ResultSlot<T>,
    /// Set in fallback (out-of-model) mode only.
    os: Option<std::thread::JoinHandle<()>>,
    /// Set in modeled mode only: the model thread id to join on.
    tid: Option<usize>,
}

pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
    let slot_child = Arc::clone(&slot);
    match sched::current() {
        Some((exec, _me)) => {
            let tid = exec.register_thread();
            let exec_child = Arc::clone(&exec);
            let spawned = std::thread::Builder::new()
                .name(format!("teleios-loom-{tid}"))
                .spawn(move || {
                    sched::set_ctx(&exec_child, tid);
                    exec_child.wait_until_active(tid);
                    let out = catch_unwind(AssertUnwindSafe(f));
                    let msg = out.as_ref().err().map(|p| payload_to_string(p.as_ref()));
                    *slot_child.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                    exec_child.finish(tid, msg);
                });
            match spawned {
                Ok(h) => exec.add_os_handle(h),
                Err(e) => crate::fail(&format!("could not spawn model thread {tid}: {e}")),
            }
            JoinHandle {
                slot,
                os: None,
                tid: Some(tid),
            }
        }
        None => {
            let spawned = std::thread::Builder::new()
                .name("teleios-loom-fallback".to_string())
                .spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(f));
                    *slot_child.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                });
            match spawned {
                Ok(h) => JoinHandle {
                    slot,
                    os: Some(h),
                    tid: None,
                },
                Err(e) => crate::fail(&format!("could not spawn fallback thread: {e}")),
            }
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn join(mut self) -> std::thread::Result<T> {
        match (self.tid, self.os.take()) {
            (Some(tid), _) => match sched::current() {
                Some((exec, me)) => exec.join_thread(me, tid),
                // A modeled handle joined from an unmodeled thread can
                // only happen if the handle escaped the model closure;
                // spin on the slot (the model drains it even on abort).
                None => {
                    while self.slot.lock().unwrap_or_else(|p| p.into_inner()).is_none() {
                        std::thread::yield_now();
                    }
                }
            },
            (None, Some(os)) => {
                let _ = os.join();
            }
            (None, None) => {}
        }
        self.slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_else(|| {
                Err(Box::new(
                    "teleios-loom: joined thread produced no result (aborted execution)".to_string(),
                ))
            })
    }
}

pub fn yield_now() {
    match sched::current() {
        Some((exec, me)) => exec.yield_point(me),
        None => std::thread::yield_now(),
    }
}
