//! Modeled drop-in replacements for the `std::sync` types the
//! exec/cancel layer uses. Each shared-memory operation reaches a
//! scheduler yield point first; outside a [`crate::model`] run they
//! delegate straight to `std`.

use crate::sched;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;

pub use std::sync::Arc;
pub use std::sync::LockResult;

/// Modeled atomics. Ordering arguments are accepted for signature
/// compatibility but modeled as `SeqCst` — see the crate docs.
pub mod atomic {
    use crate::sched;
    use std::sync::atomic::Ordering as StdOrdering;

    pub use std::sync::atomic::Ordering;

    fn yield_point() {
        if let Some((exec, me)) = sched::current() {
            exec.yield_point(me);
        }
    }

    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }

        pub fn load(&self, _order: Ordering) -> bool {
            yield_point();
            self.0.load(StdOrdering::SeqCst)
        }

        pub fn store(&self, v: bool, _order: Ordering) {
            yield_point();
            self.0.store(v, StdOrdering::SeqCst)
        }

        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            yield_point();
            self.0.swap(v, StdOrdering::SeqCst)
        }
    }

    #[derive(Debug, Default)]
    pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

    impl AtomicUsize {
        pub fn new(v: usize) -> AtomicUsize {
            AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
        }

        pub fn load(&self, _order: Ordering) -> usize {
            yield_point();
            self.0.load(StdOrdering::SeqCst)
        }

        pub fn store(&self, v: usize, _order: Ordering) {
            yield_point();
            self.0.store(v, StdOrdering::SeqCst)
        }

        pub fn swap(&self, v: usize, _order: Ordering) -> usize {
            yield_point();
            self.0.swap(v, StdOrdering::SeqCst)
        }

        pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
            yield_point();
            self.0.fetch_add(v, StdOrdering::SeqCst)
        }

        /// Modeled CAS: one yield point, then an atomic
        /// compare-and-swap at `SeqCst` (both orderings are ignored —
        /// the model promotes everything to `SeqCst`). This is the
        /// arbitration primitive of the work-stealing deque: the
        /// owner's pop and a thief's steal race on the last element by
        /// CASing `top`, and exactly one of them wins.
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<usize, usize> {
            yield_point();
            self.0.compare_exchange(
                current,
                new,
                StdOrdering::SeqCst,
                StdOrdering::SeqCst,
            )
        }
    }
}

static NEXT_LOCK_ID: StdAtomicUsize = StdAtomicUsize::new(0);

/// A modeled mutex. Acquisition is a scheduler choice point and
/// contention blocks *in the model* (the scheduler runs someone else);
/// the inner `std` mutex is therefore always uncontended and only
/// provides the actual mutable-aliasing guarantee to the borrow
/// checker. `lock` mirrors `std`'s `LockResult` signature so call
/// sites written against `std::sync::Mutex` compile unchanged.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        // Not derived: a derived impl would default `id` to 0 and make
        // every default-constructed lock alias in the scheduler's
        // registry.
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: NEXT_LOCK_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = sched::current();
        if let Some((exec, me)) = &ctx {
            if !exec.acquire_lock(*me, self.id) {
                // Execution aborted (deadlock / failure elsewhere):
                // unwind instead of touching the OS mutex, whose
                // holder may itself be unwinding and never release.
                crate::fail("execution aborted during lock acquisition");
            }
        }
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        Ok(MutexGuard {
            inner: guard,
            lock_id: self.id,
            ctx,
        })
    }
}

pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    lock_id: usize,
    ctx: Option<(std::sync::Arc<sched::Execution>, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the modeled lock *without yielding*: the inner std
        // guard is still held until field drop completes, so a rival
        // activated here would block on the OS mutex and wedge the
        // token protocol. Rivals become runnable now and get scheduled
        // at this thread's next yield point.
        if let Some((exec, me)) = &self.ctx {
            exec.release_lock(*me, self.lock_id);
        }
    }
}
