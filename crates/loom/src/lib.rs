#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-loom — a vendored, loom-style interleaving model checker
//!
//! The exec/cancel layer's correctness arguments ("first cancel wins",
//! "a fired token drains the bounded queue") are statements about *all*
//! interleavings, but ordinary tests only sample a few schedules. This
//! crate supplies the missing tool: a miniature model checker in the
//! spirit of [`loom`](https://github.com/tokio-rs/loom), vendored
//! because the build is fully offline. It exhaustively enumerates the
//! schedules of a small multi-threaded model by depth-first search over
//! scheduling choices, replaying the model once per schedule.
//!
//! ## How it works
//!
//! [`model`] runs a closure repeatedly. Threads spawned through
//! [`thread::spawn`] and operations on the modeled primitives in
//! [`sync`] are *controlled*: exactly one modeled thread runs at a
//! time, and before every shared-memory operation the running thread
//! reaches a *yield point* where the scheduler picks which thread runs
//! next. The first execution takes the first runnable thread at every
//! choice; each subsequent execution replays a recorded prefix and
//! flips the last choice that still has an untried alternative, until
//! the whole choice tree is exhausted.
//!
//! ## Model and limitations (read before trusting a green run)
//!
//! * **Sequential consistency only.** Modeled atomics honor their call
//!   signatures but execute `SeqCst`; weaker `Ordering` arguments are
//!   accepted and *modeled as `SeqCst`*. This is exact for the
//!   `CancelToken`, which uses `SeqCst` everywhere — and the
//!   `teleios-lint` L5 rule (no `Relaxed` outside `crates/exec`) keeps
//!   that assumption enforceable workspace-wide.
//! * **Mutex release is not a separate choice point.** A modeled
//!   `MutexGuard` drop frees the lock immediately; rivals resume at the
//!   releaser's next yield point. (Yielding inside the guard's `Drop`
//!   would wake rivals while the inner `std` mutex is still held.)
//! * **No partial-order reduction.** State space is the raw choice
//!   tree, so keep models tiny: 2–3 threads, a handful of operations
//!   each. The checker aborts with a diagnostic when an execution
//!   exceeds [`sched::MAX_STEPS`] steps or the search exceeds
//!   [`sched::MAX_EXECUTIONS`] executions.
//! * **Outside [`model`], everything degrades to `std`.** The modeled
//!   primitives detect that no controlled execution is active and
//!   behave exactly like their `std` counterparts, so a crate compiled
//!   with its loom feature enabled still runs its ordinary tests.
//!
//! Failures (assertion panics inside the model, deadlocks, livelocks)
//! abort the search and re-panic on the caller with the schedule that
//! exposed them, so a failing property gives a reproducible trace.

pub mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;

/// Single funnel for the checker's own fatal errors, so the workspace
/// no-panic lint has exactly one documented suppression in this crate.
/// A model-checking harness *reports by panicking*: the panic carries
/// the failing schedule to the test runner.
pub(crate) fn fail(msg: &str) -> ! {
    panic!("teleios-loom: {msg}") // teleios-lint: allow(no-panic) — failure reporting channel of the checker itself
}
