//! The depth-first schedule explorer.
//!
//! One [`Execution`] is one run of the model under one schedule. Every
//! modeled thread is backed by a real OS thread, but a condvar token
//! (`ExecState::active`) ensures only one of them is ever out of
//! `wait`: the scheduler *is* the single token holder. Each shared
//! memory operation calls [`Execution::yield_point`] first, which
//! records a [`Step`] (who was runnable, who was chosen) and hands the
//! token to the chosen thread. After the execution finishes, [`model`]
//! backtracks: it finds the deepest step whose chosen thread was not
//! the last runnable alternative, truncates the trace there, and
//! replays the prefix with the next alternative — classic DFS over the
//! scheduling tree.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Abort an execution whose trace grows past this many scheduling
/// decisions: the model is livelocked (e.g. a spin loop with a yield
/// point inside) or simply too large to enumerate.
pub const MAX_STEPS: usize = 10_000;

/// Abort the search after this many distinct schedules. A model small
/// enough to be exhaustively checked finishes orders of magnitude
/// earlier; hitting the cap means the model must shrink.
pub const MAX_EXECUTIONS: usize = 500_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked,
    Finished,
}

/// One scheduling decision: the set of runnable threads at the choice
/// point and which of them was chosen. Backtracking advances `chosen`
/// through `runnable` left to right.
#[derive(Clone, Debug)]
struct Step {
    runnable: Vec<usize>,
    chosen: usize,
}

#[derive(Default)]
struct LockRec {
    holder: Option<usize>,
    waiters: Vec<usize>,
}

struct ExecState {
    threads: Vec<ThreadState>,
    /// The thread currently holding the run token.
    active: usize,
    /// Scheduling decisions made so far in this execution.
    trace: Vec<Step>,
    /// Prefix of choices to replay (from the previous execution's
    /// backtrack); once exhausted the scheduler picks first-runnable.
    replay: Vec<usize>,
    /// Modeled mutexes by id: who holds them, who waits on them.
    locks: HashMap<usize, LockRec>,
    /// join_waiters[t] = threads blocked joining thread `t`.
    join_waiters: Vec<Vec<usize>>,
    /// First failure observed (model panic, deadlock, livelock).
    failure: Option<String>,
    /// Once set, every scheduler operation becomes a no-op pass-through
    /// so all OS threads can drain and the failure can be reported.
    aborting: bool,
    /// OS handles of spawned modeled threads, joined at execution end.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// A single controlled run of the model.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The controlled execution this OS thread belongs to, if any. `None`
/// means we are outside [`model`] and primitives fall back to `std`.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(exec: &Arc<Execution>, me: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), me)));
}

fn record_failure(st: &mut ExecState, msg: &str) {
    if st.failure.is_none() {
        st.failure = Some(msg.to_string());
    }
    st.aborting = true;
}

impl Execution {
    fn new(replay: Vec<usize>) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState::Runnable],
                active: 0,
                trace: Vec::new(),
                replay,
                locks: HashMap::new(),
                join_waiters: vec![Vec::new()],
                failure: None,
                aborting: false,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        // A poisoned state mutex means a panic inside the scheduler
        // itself (user panics are caught before reaching it); the state
        // is still structurally sound, so continue and let the failure
        // path report.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Pick the next thread to run and store the decision in the
    /// trace. Detects deadlock (live threads, none runnable) and
    /// livelock (trace beyond [`MAX_STEPS`]).
    fn choose_next(&self, st: &mut ExecState) {
        if st.aborting {
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().any(|s| *s != ThreadState::Finished) {
                let blocked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == ThreadState::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                record_failure(st, &format!("deadlock: threads {blocked:?} are blocked and nothing can wake them"));
            }
            return;
        }
        if st.trace.len() >= MAX_STEPS {
            record_failure(st, &format!("livelock: schedule exceeded {MAX_STEPS} steps"));
            return;
        }
        let idx = st.trace.len();
        let chosen = match st.replay.get(idx) {
            Some(tid) if runnable.contains(tid) => *tid,
            Some(tid) => {
                record_failure(
                    st,
                    &format!("non-deterministic model: replayed choice of thread {tid} at step {idx} but runnable set is {runnable:?}"),
                );
                return;
            }
            None => runnable[0],
        };
        st.active = chosen;
        st.trace.push(Step { runnable, chosen });
    }

    /// Scheduling point: give every other thread a chance to run
    /// before the caller's next shared-memory operation.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.aborting {
            return;
        }
        self.choose_next(&mut st);
        self.cv.notify_all();
        while !st.aborting && st.active != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Park until the scheduler hands this thread the token for the
    /// first time (used by freshly spawned threads).
    pub(crate) fn wait_until_active(&self, me: usize) {
        let mut st = self.lock_state();
        while !st.aborting && st.active != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Acquire modeled mutex `lock_id`, blocking in-model if held.
    /// Returns `false` if the execution aborted instead of granting
    /// the lock — the caller must *not* touch the inner OS mutex then
    /// (its holder may never release it during an abort) but unwind.
    pub(crate) fn acquire_lock(&self, me: usize, lock_id: usize) -> bool {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.aborting {
                return false;
            }
            let rec = st.locks.entry(lock_id).or_default();
            if rec.holder.is_none() {
                rec.holder = Some(me);
                return true;
            }
            rec.waiters.push(me);
            st.threads[me] = ThreadState::Blocked;
            self.choose_next(&mut st);
            self.cv.notify_all();
            while !st.aborting && st.active != me {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            // Woken because the holder released; re-contend.
        }
    }

    /// Release modeled mutex `lock_id` and make its waiters runnable.
    /// Deliberately *not* a yield point — see the crate docs: the
    /// inner `std` guard is still held while this runs (guard `Drop`
    /// order), so rivals must not be activated until the releaser's
    /// next yield point.
    pub(crate) fn release_lock(&self, me: usize, lock_id: usize) {
        let mut st = self.lock_state();
        if st.aborting {
            return;
        }
        let state = &mut *st;
        if let Some(rec) = state.locks.get_mut(&lock_id) {
            if rec.holder == Some(me) {
                rec.holder = None;
                for w in rec.waiters.drain(..) {
                    state.threads[w] = ThreadState::Runnable;
                }
            }
        }
    }

    /// Block until modeled thread `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.aborting || st.threads[target] == ThreadState::Finished {
                return;
            }
            st.join_waiters[target].push(me);
            st.threads[me] = ThreadState::Blocked;
            self.choose_next(&mut st);
            self.cv.notify_all();
            while !st.aborting && st.active != me {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// Register a newly spawned modeled thread; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        st.threads.push(ThreadState::Runnable);
        st.join_waiters.push(Vec::new());
        tid
    }

    pub(crate) fn add_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock_state().os_handles.push(handle);
    }

    /// Mark `me` finished, wake its joiners, hand the token onward.
    /// `panic_msg` carries a caught model panic into the failure slot.
    pub(crate) fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        let state = &mut *st;
        state.threads[me] = ThreadState::Finished;
        let waiters: Vec<usize> = state.join_waiters[me].drain(..).collect();
        for w in waiters {
            state.threads[w] = ThreadState::Runnable;
        }
        if let Some(msg) = panic_msg {
            record_failure(state, &format!("model thread {me} panicked: {msg}"));
        }
        self.choose_next(state);
        self.cv.notify_all();
    }
}

/// Exhaustively explore every schedule of `f`.
///
/// Runs `f` once per schedule. Inside `f`, use [`crate::thread::spawn`]
/// and the [`crate::sync`] primitives; plain assertions state the
/// property being checked. Panics (with the failing schedule) if any
/// execution panics, deadlocks, or livelocks, or if the search exceeds
/// [`MAX_EXECUTIONS`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        if executions > MAX_EXECUTIONS {
            crate::fail(&format!("state space too large: more than {MAX_EXECUTIONS} schedules"));
        }
        let exec = Arc::new(Execution::new(std::mem::take(&mut replay)));
        let exec_main = Arc::clone(&exec);
        let f_main = Arc::clone(&f);
        let main_handle = std::thread::Builder::new()
            .name("teleios-loom-0".to_string())
            .spawn(move || {
                set_ctx(&exec_main, 0);
                exec_main.wait_until_active(0);
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f_main()));
                // `p.as_ref()`, not `&p`: `&Box<dyn Any>` unsize-coerces
                // to the Box-as-Any, hiding the actual payload.
                let msg = out.err().map(|p| crate::thread::payload_to_string(p.as_ref()));
                exec_main.finish(0, msg);
            });
        let main_handle = match main_handle {
            Ok(h) => h,
            Err(e) => crate::fail(&format!("could not spawn model thread: {e}")),
        };

        // Wait for every modeled thread to finish (or the execution to
        // abort), then join the OS threads.
        let (failure, trace) = {
            let mut st = exec.lock_state();
            while !st.aborting && st.threads.iter().any(|s| *s != ThreadState::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            // On abort, release every parked thread so the OS threads
            // can drain before we join them.
            exec.cv.notify_all();
            let handles: Vec<std::thread::JoinHandle<()>> = st.os_handles.drain(..).collect();
            let failure = st.failure.clone();
            let trace = std::mem::take(&mut st.trace);
            drop(st);
            for h in handles {
                let _ = h.join();
            }
            (failure, trace)
        };
        let _ = main_handle.join();

        if let Some(msg) = failure {
            let choices: Vec<usize> = trace.iter().map(|s| s.chosen).collect();
            crate::fail(&format!("{msg}\n  after {executions} execution(s); failing schedule (thread ids in choice order): {choices:?}"));
        }

        // Backtrack: find the deepest step with an untried alternative.
        let mut next: Option<Vec<usize>> = None;
        for depth in (0..trace.len()).rev() {
            let step = &trace[depth];
            let pos = step.runnable.iter().position(|t| *t == step.chosen);
            if let Some(pos) = pos {
                if pos + 1 < step.runnable.len() {
                    let mut prefix: Vec<usize> = trace[..depth].iter().map(|s| s.chosen).collect();
                    prefix.push(step.runnable[pos + 1]);
                    next = Some(prefix);
                    break;
                }
            }
        }
        match next {
            Some(prefix) => replay = prefix,
            None => return, // choice tree exhausted: every schedule explored
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use crate::sync::{Arc, Mutex};
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    /// Unsynchronized read-modify-write must expose a lost update in
    /// *some* schedule — proves the explorer actually interleaves.
    #[test]
    fn explorer_finds_lost_update() {
        let finals: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
        let finals2 = Arc::clone(&finals);
        crate::model(move || {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    crate::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            finals2.lock().unwrap().insert(counter.load(Ordering::SeqCst));
        });
        let finals = finals.lock().unwrap();
        assert!(finals.contains(&1), "lost-update interleaving never explored: {finals:?}");
        assert!(finals.contains(&2), "sequential interleaving never explored: {finals:?}");
    }

    /// The same increments behind a modeled mutex never lose updates.
    #[test]
    fn mutex_serializes_increments() {
        crate::model(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    crate::thread::spawn(move || {
                        let mut g = c.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        });
    }

    /// `swap` is a single atomic step: exactly one of two racing
    /// swappers observes `false`, and both orders are explored.
    #[test]
    fn swap_has_exactly_one_winner() {
        let winners: std::sync::Arc<StdMutex<HashSet<usize>>> =
            std::sync::Arc::new(StdMutex::new(HashSet::new()));
        let winners2 = std::sync::Arc::clone(&winners);
        crate::model(move || {
            let flag = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let f = Arc::clone(&flag);
                    crate::thread::spawn(move || (i, !f.swap(true, Ordering::SeqCst)))
                })
                .collect();
            let results: Vec<(usize, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let won: Vec<usize> = results.iter().filter(|(_, w)| *w).map(|(i, _)| *i).collect();
            assert_eq!(won.len(), 1, "exactly one swap must win: {results:?}");
            winners2.lock().unwrap().insert(won[0]);
        });
        let winners = winners.lock().unwrap();
        assert_eq!(winners.len(), 2, "both win orders must be explored: {winners:?}");
    }

    /// ABBA lock ordering deadlocks in some schedule; the checker must
    /// find it and report it rather than hang.
    #[test]
    fn abba_deadlock_is_detected() {
        let result = std::panic::catch_unwind(|| {
            crate::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                }
                let _ = t.join();
            });
        });
        let err = result.expect_err("ABBA model must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        assert!(msg.contains("deadlock"), "expected a deadlock report, got: {msg}");
    }

    /// A model panic aborts the search and surfaces the message plus a
    /// failing schedule.
    #[test]
    fn model_panic_is_reported_with_schedule() {
        let result = std::panic::catch_unwind(|| {
            crate::model(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let f2 = Arc::clone(&flag);
                let t = crate::thread::spawn(move || f2.store(true, Ordering::SeqCst));
                // Fails only in schedules where the child ran first.
                assert!(!flag.load(Ordering::SeqCst), "child ran before parent");
                t.join().unwrap();
            });
        });
        let err = result.expect_err("racy assertion must fail in some schedule");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        assert!(msg.contains("child ran before parent"), "panic message lost: {msg}");
        assert!(msg.contains("failing schedule"), "schedule missing: {msg}");
    }

    /// Outside `model`, the primitives behave like `std`.
    #[test]
    fn fallback_outside_model_works() {
        let flag = AtomicBool::new(false);
        assert!(!flag.swap(true, Ordering::SeqCst));
        assert!(flag.load(Ordering::SeqCst));
        let m = Mutex::new(7);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 8);
        let h = crate::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }
}
