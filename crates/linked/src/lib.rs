#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-linked — synthetic linked open geospatial data
//!
//! TELEIOS joins EO product annotations against auxiliary open
//! geospatial datasets — GeoNames, LinkedGeoData, DBpedia, CORINE land
//! cover, coastline data. Those datasets are external services; this
//! crate generates deterministic, seeded stand-ins with the same *shape*:
//!
//! * a [`world::World`] — a coastline (land polygon), land-cover
//!   polygons, populated places, archaeological sites and a road
//!   network over a configurable geographic window,
//! * per-dataset emitters ([`emit`]) that publish the world as stRDF
//!   triples under GeoNames/LGD/CORINE-like namespaces, ready to load
//!   into Strabon.
//!
//! Everything is reproducible from a `u64` seed.

pub mod emit;
pub mod world;

pub use world::{CoverClass, World, WorldSpec};
