//! Emit the synthetic world as stRDF triples under linked-data
//! namespaces, mirroring how GeoNames / LinkedGeoData / CORINE /
//! coastline datasets appear on the linked data web.

use crate::world::World;
use teleios_geo::Geometry;
use teleios_geo::geometry::Point;
use teleios_rdf::store::TripleStore;
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{linked, rdf, rdfs, strdf};

fn a() -> Term {
    Term::iri(rdf::TYPE)
}

fn geom_prop() -> Term {
    Term::iri(strdf::HAS_GEOMETRY)
}

/// Emit GeoNames-like populated places. Returns triples added.
pub fn emit_geonames(world: &World, store: &mut TripleStore) -> usize {
    let before = store.len();
    let class = Term::iri(format!("{}ontology#PopulatedPlace", linked::GEONAMES));
    let name_p = Term::iri(format!("{}ontology#name", linked::GEONAMES));
    let pop_p = Term::iri(format!("{}ontology#population", linked::GEONAMES));
    for (i, place) in world.places.iter().enumerate() {
        let s = Term::iri(format!("{}place/{i}", linked::GEONAMES));
        store.insert_terms(&s, &a(), &class);
        store.insert_terms(&s, &name_p, &Term::literal(place.name.clone()));
        store.insert_terms(&s, &pop_p, &Term::int(place.population as i64));
        store.insert_terms(
            &s,
            &geom_prop(),
            &geometry_literal_wgs84(&Geometry::Point(Point(place.location))),
        );
    }
    store.len() - before
}

/// Emit DBpedia-like archaeological sites. Returns triples added.
pub fn emit_sites(world: &World, store: &mut TripleStore) -> usize {
    let before = store.len();
    let class = Term::iri("http://dbpedia.org/ontology/ArchaeologicalSite");
    for (i, site) in world.sites.iter().enumerate() {
        let s = Term::iri(format!("http://dbpedia.org/resource/Site_{i}"));
        store.insert_terms(&s, &a(), &class);
        store.insert_terms(&s, &Term::iri(rdfs::LABEL), &Term::literal(site.name.clone()));
        store.insert_terms(
            &s,
            &geom_prop(),
            &geometry_literal_wgs84(&Geometry::Point(Point(site.location))),
        );
    }
    store.len() - before
}

/// Emit CORINE-like land-cover areas. Returns triples added.
pub fn emit_corine(world: &World, store: &mut TripleStore) -> usize {
    let before = store.len();
    let class = Term::iri(format!("{}ontology#Area", linked::CORINE));
    let cover_p = Term::iri(format!("{}ontology#hasLandCover", linked::CORINE));
    for (i, (poly, kind)) in world.landcover.iter().enumerate() {
        let s = Term::iri(format!("{}area/{i}", linked::CORINE));
        store.insert_terms(&s, &a(), &class);
        store.insert_terms(
            &s,
            &cover_p,
            &Term::iri(format!("{}ontology#{}", linked::CORINE, kind.concept())),
        );
        store.insert_terms(
            &s,
            &geom_prop(),
            &geometry_literal_wgs84(&Geometry::Polygon(poly.clone())),
        );
    }
    store.len() - before
}

/// Emit LinkedGeoData-like roads. Returns triples added.
pub fn emit_roads(world: &World, store: &mut TripleStore) -> usize {
    let before = store.len();
    let class = Term::iri(format!("{}Road", linked::LGD));
    for (i, road) in world.roads.iter().enumerate() {
        let s = Term::iri(format!("{}road/{i}", linked::LGD));
        store.insert_terms(&s, &a(), &class);
        store.insert_terms(
            &s,
            &geom_prop(),
            &geometry_literal_wgs84(&Geometry::LineString(road.clone())),
        );
    }
    store.len() - before
}

/// Emit the coastline dataset: the landmass polygon as a single feature.
/// Returns triples added. The refinement step of scenario 2 checks
/// hotspot geometries against this feature.
pub fn emit_coastline(world: &World, store: &mut TripleStore) -> usize {
    let before = store.len();
    let s = Term::iri(format!("{}landmass/0", linked::COASTLINE));
    store.insert_terms(&s, &a(), &Term::iri(format!("{}ontology#LandMass", linked::COASTLINE)));
    store.insert_terms(
        &s,
        &geom_prop(),
        &geometry_literal_wgs84(&Geometry::Polygon(world.land.clone())),
    );
    store.len() - before
}

/// Emit every dataset. Returns total triples added.
pub fn emit_all(world: &World, store: &mut TripleStore) -> usize {
    emit_geonames(world, store)
        + emit_sites(world, store)
        + emit_corine(world, store)
        + emit_roads(world, store)
        + emit_coastline(world, store)
}

/// The landmass geometry as an stRDF WKT literal (for ad-hoc FILTERs).
pub fn landmass_literal(world: &World) -> Term {
    geometry_literal_wgs84(&Geometry::Polygon(world.land.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{CoverClass, WorldSpec};
    use teleios_rdf::strdf::parse_geometry;

    fn world() -> World {
        World::generate(WorldSpec::default())
    }

    #[test]
    fn geonames_triples_count() {
        let w = world();
        let mut st = TripleStore::new();
        let n = emit_geonames(&w, &mut st);
        assert_eq!(n, w.places.len() * 4);
    }

    #[test]
    fn sites_have_geometries() {
        let w = world();
        let mut st = TripleStore::new();
        emit_sites(&w, &mut st);
        let geoms = st.match_terms(None, Some(&geom_prop()), None);
        assert_eq!(geoms.len(), w.sites.len());
        for (_, _, lit) in geoms {
            assert!(parse_geometry(&lit).is_ok());
        }
    }

    #[test]
    fn corine_covers_classes() {
        let w = world();
        let mut st = TripleStore::new();
        emit_corine(&w, &mut st);
        let cover_p = Term::iri(format!("{}ontology#hasLandCover", linked::CORINE));
        let covers = st.match_terms(None, Some(&cover_p), None);
        assert_eq!(covers.len(), w.landcover.len());
    }

    #[test]
    fn coastline_single_feature() {
        let w = world();
        let mut st = TripleStore::new();
        let n = emit_coastline(&w, &mut st);
        assert_eq!(n, 2);
        let lit = landmass_literal(&w);
        let (g, srid) = parse_geometry(&lit).unwrap();
        assert_eq!(srid, 4326);
        assert!(matches!(g, Geometry::Polygon(_)));
    }

    #[test]
    fn emit_all_sums() {
        let w = world();
        let mut st = TripleStore::new();
        let n = emit_all(&w, &mut st);
        assert_eq!(n, st.len());
        assert!(n > 100);
    }

    #[test]
    fn cover_class_concepts() {
        assert_eq!(CoverClass::Forest.concept(), "Forest");
        assert_eq!(CoverClass::Water.concept(), "Water");
    }
}
