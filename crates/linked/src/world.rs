//! The synthetic world model: coastline, land cover, places, sites, roads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teleios_geo::{Coord, Envelope};
use teleios_geo::geometry::{LineString, Polygon};

/// Land-cover classes (CORINE level-1-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverClass {
    /// Forest and semi-natural areas.
    Forest,
    /// Agricultural areas.
    Agriculture,
    /// Artificial (urban) surfaces.
    Urban,
    /// Water bodies (sea).
    Water,
}

impl CoverClass {
    /// CORINE-like concept local name.
    pub fn concept(&self) -> &'static str {
        match self {
            CoverClass::Forest => "Forest",
            CoverClass::Agriculture => "Agriculture",
            CoverClass::Urban => "Urban",
            CoverClass::Water => "Water",
        }
    }
}

/// A populated place (GeoNames-like).
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// Name, e.g. `City-7`.
    pub name: String,
    /// Location.
    pub location: Coord,
    /// Population count.
    pub population: u32,
}

/// An archaeological site (DBpedia-like).
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Name, e.g. `Temple-3`.
    pub name: String,
    /// Location.
    pub location: Coord,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// RNG seed: everything is reproducible from it.
    pub seed: u64,
    /// Geographic window (WGS 84 degrees).
    pub bbox: Envelope,
    /// Coastline vertex count (complexity knob for E7).
    pub coast_points: usize,
    /// Populated places to generate.
    pub num_places: usize,
    /// Archaeological sites to generate.
    pub num_sites: usize,
    /// Road polylines to generate.
    pub num_roads: usize,
    /// Land-cover grid resolution (cells per side).
    pub landcover_grid: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        // A Peloponnese-like window.
        WorldSpec {
            seed: 42,
            bbox: Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0)),
            coast_points: 48,
            num_places: 25,
            num_sites: 8,
            num_roads: 12,
            landcover_grid: 12,
        }
    }
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// The parameters it was generated from.
    pub spec: WorldSpec,
    /// The landmass polygon (star-shaped around the window centre).
    pub land: Polygon,
    /// Star-shape radii table used for O(1) land tests.
    radii: Vec<f64>,
    /// Land-cover polygons with their classes (land cells only).
    pub landcover: Vec<(Polygon, CoverClass)>,
    /// Populated places (all on land).
    pub places: Vec<Place>,
    /// Archaeological sites (all on land).
    pub sites: Vec<Site>,
    /// Road polylines (endpoints at places).
    pub roads: Vec<LineString>,
}

impl World {
    /// Generate a world from a spec.
    pub fn generate(spec: WorldSpec) -> World {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let center = spec.bbox.center();
        let half_w = spec.bbox.width() / 2.0;
        let half_h = spec.bbox.height() / 2.0;

        // Star-shaped landmass: radius fraction per angle, smoothed so
        // neighbouring radii differ gently (a plausible coastline).
        let n = spec.coast_points.max(8);
        let mut radii: Vec<f64> = (0..n).map(|_| rng.random_range(0.45..0.9)).collect();
        for _ in 0..2 {
            let prev = radii.clone();
            for i in 0..n {
                let a = prev[(i + n - 1) % n];
                let b = prev[i];
                let c = prev[(i + 1) % n];
                radii[i] = (a + 2.0 * b + c) / 4.0;
            }
        }
        let mut ring: Vec<Coord> = (0..n)
            .map(|i| {
                let theta = (i as f64) * std::f64::consts::TAU / (n as f64);
                Coord::new(
                    center.x + radii[i] * half_w * theta.cos(),
                    center.y + radii[i] * half_h * theta.sin(),
                )
            })
            .collect();
        let first = ring[0];
        ring.push(first);
        let mut land = Polygon::new(LineString(ring), vec![]);
        land.normalize();

        let mut world = World {
            spec: spec.clone(),
            land,
            radii,
            landcover: Vec::new(),
            places: Vec::new(),
            sites: Vec::new(),
            roads: Vec::new(),
        };

        // Land cover: grid cells whose centre is on land.
        let g = spec.landcover_grid.max(1);
        let cw = spec.bbox.width() / g as f64;
        let ch = spec.bbox.height() / g as f64;
        for gy in 0..g {
            for gx in 0..g {
                let min = Coord::new(
                    spec.bbox.min.x + gx as f64 * cw,
                    spec.bbox.min.y + gy as f64 * ch,
                );
                let cell = Envelope::new(min, Coord::new(min.x + cw, min.y + ch));
                if world.is_land(cell.center()) {
                    let roll: f64 = rng.random();
                    let class = if roll < 0.5 {
                        CoverClass::Forest
                    } else if roll < 0.85 {
                        CoverClass::Agriculture
                    } else {
                        CoverClass::Urban
                    };
                    world.landcover.push((Polygon::from_envelope(&cell), class));
                }
            }
        }

        // Places and sites: rejection-sample points on land.
        let sample_land = |rng: &mut StdRng, world: &World| -> Coord {
            for _ in 0..1000 {
                let c = Coord::new(
                    rng.random_range(spec.bbox.min.x..spec.bbox.max.x),
                    rng.random_range(spec.bbox.min.y..spec.bbox.max.y),
                );
                if world.is_land(c) {
                    return c;
                }
            }
            center
        };
        for i in 0..spec.num_places {
            let location = sample_land(&mut rng, &world);
            world.places.push(Place {
                name: format!("City-{i}"),
                location,
                population: rng.random_range(500..500_000),
            });
        }
        for i in 0..spec.num_sites {
            let location = sample_land(&mut rng, &world);
            world.sites.push(Site { name: format!("Temple-{i}"), location });
        }

        // Roads: jittered polylines between random place pairs.
        if world.places.len() >= 2 {
            for _ in 0..spec.num_roads {
                let a = world.places[rng.random_range(0..world.places.len())].location;
                let b = world.places[rng.random_range(0..world.places.len())].location;
                let mid = a.lerp(&b, 0.5);
                let jitter = Coord::new(
                    mid.x + rng.random_range(-0.1..0.1),
                    mid.y + rng.random_range(-0.1..0.1),
                );
                world.roads.push(LineString(vec![a, jitter, b]));
            }
        }
        world
    }

    /// O(1) land test via the star-shape radius table.
    pub fn is_land(&self, c: Coord) -> bool {
        let center = self.spec.bbox.center();
        let half_w = self.spec.bbox.width() / 2.0;
        let half_h = self.spec.bbox.height() / 2.0;
        if half_w <= 0.0 || half_h <= 0.0 {
            return false;
        }
        // Normalize to the unit aspect so angles match generation.
        let dx = (c.x - center.x) / half_w;
        let dy = (c.y - center.y) / half_h;
        let r = dx.hypot(dy);
        let theta = dy.atan2(dx).rem_euclid(std::f64::consts::TAU);
        let n = self.radii.len() as f64;
        let pos = theta / std::f64::consts::TAU * n;
        let i = pos.floor() as usize % self.radii.len();
        let j = (i + 1) % self.radii.len();
        let t = pos.fract();
        let boundary = self.radii[i] * (1.0 - t) + self.radii[j] * t;
        r <= boundary
    }

    /// Land-cover class at a coordinate (Water when off land).
    pub fn cover_at(&self, c: Coord) -> CoverClass {
        if !self.is_land(c) {
            return CoverClass::Water;
        }
        let spec = &self.spec;
        let g = spec.landcover_grid.max(1);
        let gx = (((c.x - spec.bbox.min.x) / spec.bbox.width()) * g as f64).floor() as i64;
        let gy = (((c.y - spec.bbox.min.y) / spec.bbox.height()) * g as f64).floor() as i64;
        if gx < 0 || gy < 0 || gx >= g as i64 || gy >= g as i64 {
            return CoverClass::Water;
        }
        // Find the cell polygon covering the point (cells are only stored
        // for land cells; coastline cells may be missing — treat those as
        // Forest, the majority class).
        let cw = spec.bbox.width() / g as f64;
        let target_min_x = spec.bbox.min.x + gx as f64 * cw;
        self.landcover
            .iter()
            .find(|(p, _)| {
                let e = p.envelope();
                (e.min.x - target_min_x).abs() < cw * 0.01 && e.contains_coord(c)
            })
            .map(|(_, k)| *k)
            .unwrap_or(CoverClass::Forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::algorithm::predicates::polygon_covers_coord;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldSpec::default());
        let b = World::generate(WorldSpec::default());
        assert_eq!(a.land, b.land);
        assert_eq!(a.places, b.places);
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.landcover.len(), b.landcover.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldSpec::default());
        let b = World::generate(WorldSpec { seed: 7, ..WorldSpec::default() });
        assert_ne!(a.land, b.land);
    }

    #[test]
    fn counts_match_spec() {
        let w = World::generate(WorldSpec::default());
        assert_eq!(w.places.len(), 25);
        assert_eq!(w.sites.len(), 8);
        assert_eq!(w.roads.len(), 12);
        assert!(!w.landcover.is_empty());
    }

    #[test]
    fn land_test_agrees_with_polygon() {
        let w = World::generate(WorldSpec::default());
        // The analytic star test and the polygon test agree away from the
        // boundary (sample interior and exterior representatives).
        let center = w.spec.bbox.center();
        assert!(w.is_land(center));
        assert!(polygon_covers_coord(&w.land, center));
        let corner = w.spec.bbox.min;
        assert!(!w.is_land(corner));
        assert!(!polygon_covers_coord(&w.land, corner));
    }

    #[test]
    fn places_and_sites_are_on_land() {
        let w = World::generate(WorldSpec::default());
        for p in &w.places {
            assert!(w.is_land(p.location), "{} off land", p.name);
        }
        for s in &w.sites {
            assert!(w.is_land(s.location), "{} off land", s.name);
        }
    }

    #[test]
    fn cover_is_water_off_land() {
        let w = World::generate(WorldSpec::default());
        assert_eq!(w.cover_at(w.spec.bbox.min), CoverClass::Water);
        let c = w.spec.bbox.center();
        assert_ne!(w.cover_at(c), CoverClass::Water);
    }

    #[test]
    fn landcover_cells_are_on_land() {
        let w = World::generate(WorldSpec::default());
        for (p, k) in &w.landcover {
            assert_ne!(*k, CoverClass::Water);
            assert!(w.is_land(p.envelope().center()));
        }
    }

    #[test]
    fn land_polygon_is_valid() {
        let w = World::generate(WorldSpec::default());
        assert!(teleios_geo::Geometry::Polygon(w.land.clone()).validate().is_ok());
        assert!(w.land.exterior.is_ccw());
    }

    #[test]
    fn coast_complexity_respected() {
        let w = World::generate(WorldSpec { coast_points: 100, ..WorldSpec::default() });
        assert_eq!(w.land.exterior.len(), 101); // closed ring
    }
}
