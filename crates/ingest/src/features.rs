//! Content extraction: patch cutting and feature vectors.
//!
//! The paper's content-extraction components "create a set of patches by
//! cutting images into square patches" and "compress data into a compact
//! multi-element feature vector representation" (§3). A patch's feature
//! vector holds per-band statistics plus simple texture measures; the
//! knowledge-discovery tier (`teleios-mining`) classifies these vectors
//! into ontology concepts.

use crate::raster::GeoRaster;
use teleios_geo::Envelope;
use teleios_monet::array::NdArray;
use teleios_monet::{DbError, Result};

/// A square image patch with its extracted feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Patch row index (in patch grid coordinates).
    pub py: usize,
    /// Patch column index.
    pub px: usize,
    /// Geographic envelope of the patch.
    pub envelope: Envelope,
    /// The feature vector.
    pub features: Vec<f64>,
}

/// Names of the features extracted per band, in order.
pub const PER_BAND_FEATURES: [&str; 4] = ["mean", "std", "min", "max"];
/// Names of the texture features appended after the band statistics.
pub const TEXTURE_FEATURES: [&str; 2] = ["gradient_energy", "range_ratio"];

/// Length of a feature vector for a raster with `bands` bands.
pub fn feature_len(bands: usize) -> usize {
    bands * PER_BAND_FEATURES.len() + TEXTURE_FEATURES.len()
}

/// Cut the raster into non-overlapping `size`×`size` patches and extract
/// a feature vector per patch. Edge remainders are skipped, matching the
/// SciQL tile semantics used to implement this in the database.
pub fn extract_patches(raster: &GeoRaster, size: usize) -> Result<Vec<Patch>> {
    if size == 0 {
        return Err(DbError::ShapeMismatch("patch size must be positive".into()));
    }
    let bands = raster.bands();
    let py_count = raster.rows() / size;
    let px_count = raster.cols() / size;
    let mut out = Vec::with_capacity(py_count * px_count);

    // Pre-slice each band once.
    let band_arrays: Vec<NdArray> = (0..bands)
        .map(|b| raster.band(b))
        .collect::<Result<_>>()?;

    for py in 0..py_count {
        for px in 0..px_count {
            let r0 = py * size;
            let c0 = px * size;
            let mut features = Vec::with_capacity(feature_len(bands));
            let mut tiles: Vec<NdArray> = Vec::with_capacity(bands);
            for arr in &band_arrays {
                let tile = arr.slice(&[(r0, r0 + size), (c0, c0 + size)])?;
                features.push(tile.mean().unwrap_or(0.0));
                features.push(tile.std_dev().unwrap_or(0.0));
                features.push(tile.min().unwrap_or(0.0));
                features.push(tile.max().unwrap_or(0.0));
                tiles.push(tile);
            }
            // Texture on the thermal-most band (last); rasters always
            // carry at least one band.
            if let Some(t) = tiles.last() {
                features.push(gradient_energy(t));
                features.push(range_ratio(t));
            }

            // Geographic envelope: union of the corner pixel envelopes.
            let env = raster
                .geo
                .pixel_envelope(r0, c0)
                .union(&raster.geo.pixel_envelope(r0 + size - 1, c0 + size - 1));
            out.push(Patch { py, px, envelope: env, features });
        }
    }
    Ok(out)
}

/// Mean squared difference between horizontal/vertical neighbours — a
/// cheap texture-energy proxy.
fn gradient_energy(tile: &NdArray) -> f64 {
    let shape = tile.shape();
    let (rows, cols) = (shape[0], shape[1]);
    if rows < 2 || cols < 2 {
        return 0.0;
    }
    let d = tile.data();
    let mut acc = 0.0;
    let mut n = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            let v = d[r * cols + c];
            if c + 1 < cols {
                let dv = d[r * cols + c + 1] - v;
                acc += dv * dv;
                n += 1;
            }
            if r + 1 < rows {
                let dv = d[(r + 1) * cols + c] - v;
                acc += dv * dv;
                n += 1;
            }
        }
    }
    acc / n as f64
}

/// (max − min) / (|mean| + 1): dynamic range normalized by level.
fn range_ratio(tile: &NdArray) -> f64 {
    let (min, max, mean) = (
        tile.min().unwrap_or(0.0),
        tile.max().unwrap_or(0.0),
        tile.mean().unwrap_or(0.0),
    );
    (max - min) / (mean.abs() + 1.0)
}

/// Euclidean distance between two feature vectors.
pub fn feature_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;
    use teleios_monet::array::Dim;

    fn raster(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> GeoRaster {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        let arr = NdArray::from_vec(
            vec![Dim::new("band", 1), Dim::new("y", rows), Dim::new("x", cols)],
            data,
        )
        .unwrap();
        let geo = GeoTransform { origin_x: 0.0, origin_y: rows as f64, pixel_w: 1.0, pixel_h: 1.0 };
        GeoRaster::new(arr, geo, "t", "s").unwrap()
    }

    #[test]
    fn patch_grid_shape() {
        let r = raster(8, 12, |_, _| 1.0);
        let patches = extract_patches(&r, 4).unwrap();
        assert_eq!(patches.len(), 2 * 3);
        assert_eq!(patches[0].features.len(), feature_len(1));
    }

    #[test]
    fn edge_remainders_skipped() {
        let r = raster(10, 10, |_, _| 1.0);
        assert_eq!(extract_patches(&r, 4).unwrap().len(), 4);
    }

    #[test]
    fn zero_size_rejected() {
        let r = raster(4, 4, |_, _| 1.0);
        assert!(extract_patches(&r, 0).is_err());
    }

    #[test]
    fn constant_patch_statistics() {
        let r = raster(4, 4, |_, _| 5.0);
        let p = &extract_patches(&r, 4).unwrap()[0];
        assert_eq!(p.features[0], 5.0); // mean
        assert_eq!(p.features[1], 0.0); // std
        assert_eq!(p.features[2], 5.0); // min
        assert_eq!(p.features[3], 5.0); // max
        assert_eq!(p.features[4], 0.0); // gradient energy
    }

    #[test]
    fn textured_patch_has_energy() {
        // Checkerboard 0/10.
        let r = raster(4, 4, |r, c| if (r + c) % 2 == 0 { 0.0 } else { 10.0 });
        let p = &extract_patches(&r, 4).unwrap()[0];
        assert!(p.features[4] > 50.0, "gradient energy {}", p.features[4]);
        assert!(p.features[5] > 0.0);
    }

    #[test]
    fn patch_envelopes_tile_the_raster() {
        let r = raster(8, 8, |_, _| 0.0);
        let patches = extract_patches(&r, 4).unwrap();
        let total: f64 = patches.iter().map(|p| p.envelope.area()).sum();
        assert_eq!(total, 64.0);
        // First patch sits at the raster's top-left.
        assert_eq!(patches[0].envelope.min.x, 0.0);
        assert_eq!(patches[0].envelope.max.y, 8.0);
    }

    #[test]
    fn feature_distance_basic() {
        assert_eq!(feature_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(feature_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn multiband_feature_layout() {
        let rows = 4;
        let cols = 4;
        let mut data = Vec::new();
        for b in 0..2 {
            for _ in 0..rows * cols {
                data.push(b as f64 * 100.0);
            }
        }
        let arr = NdArray::from_vec(
            vec![Dim::new("band", 2), Dim::new("y", rows), Dim::new("x", cols)],
            data,
        )
        .unwrap();
        let geo = GeoTransform { origin_x: 0.0, origin_y: 4.0, pixel_w: 1.0, pixel_h: 1.0 };
        let r = GeoRaster::new(arr, geo, "t", "s").unwrap();
        let p = &extract_patches(&r, 4).unwrap()[0];
        assert_eq!(p.features.len(), feature_len(2));
        assert_eq!(p.features[0], 0.0); // band 0 mean
        assert_eq!(p.features[4], 100.0); // band 1 mean
    }
}
