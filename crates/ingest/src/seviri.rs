//! Synthetic MSG/SEVIRI scene generation.
//!
//! The paper's feed — Meteosat Second Generation SEVIRI imagery received
//! by NOA — is proprietary; this generator produces scenes with the
//! properties the fire-monitoring demo depends on:
//!
//! * three spectral bands: `VIS006` reflectance, `IR_039` (3.9 µm, the
//!   fire-sensitive channel) and `IR_108` (10.8 µm) brightness
//!   temperatures in kelvin,
//! * land/sea/land-cover-dependent ambient temperatures,
//! * planted fire events with Gaussian thermal footprints,
//! * sensor noise, cold cloud blobs, and — crucially for demo
//!   scenario 2 — sporadic warm **sun-glint artifacts over the sea**,
//!   which threshold classifiers misdetect as hotspots because of the
//!   sensor's low spatial resolution; the stSPARQL refinement step then
//!   removes them using coastline linked data.
//!
//! Everything is reproducible from the spec's seed.

use crate::raster::{GeoRaster, GeoTransform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teleios_geo::{Coord, Envelope};
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::Result;

/// Index of the visible band in generated scenes.
pub const BAND_VIS006: usize = 0;
/// Index of the 3.9 µm fire-detection band.
pub const BAND_IR039: usize = 1;
/// Index of the 10.8 µm thermal band.
pub const BAND_IR108: usize = 2;

/// What the ground looks like at a coordinate (supplied by the caller;
/// `teleios-noa` adapts the synthetic world model of `teleios-linked`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceKind {
    /// Open sea.
    Sea,
    /// Forest / semi-natural.
    Forest,
    /// Agricultural land.
    Agriculture,
    /// Urban fabric.
    Urban,
}

impl SurfaceKind {
    /// Ambient 3.9 µm brightness temperature (K) for the surface.
    pub fn ambient_k(&self) -> f64 {
        match self {
            SurfaceKind::Sea => 293.0,
            SurfaceKind::Forest => 301.0,
            SurfaceKind::Agriculture => 305.0,
            SurfaceKind::Urban => 308.0,
        }
    }

    /// Typical VIS006 reflectance.
    pub fn reflectance(&self) -> f64 {
        match self {
            SurfaceKind::Sea => 0.05,
            SurfaceKind::Forest => 0.15,
            SurfaceKind::Agriculture => 0.25,
            SurfaceKind::Urban => 0.35,
        }
    }
}

/// A planted fire event (ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct FireEvent {
    /// Fire-front centre (lon/lat degrees).
    pub center: Coord,
    /// Thermal footprint radius in degrees.
    pub radius: f64,
    /// Intensity in `(0, 1]`: peak ΔT = intensity × 90 K on IR_039.
    pub intensity: f64,
}

/// Scene-generation parameters.
#[derive(Debug, Clone)]
pub struct SceneSpec {
    /// RNG seed.
    pub seed: u64,
    /// Raster rows.
    pub rows: usize,
    /// Raster columns.
    pub cols: usize,
    /// Geographic window.
    pub bbox: Envelope,
    /// Acquisition instant (ISO-8601).
    pub acquisition: String,
    /// Satellite identifier, e.g. `MSG2`.
    pub satellite: String,
    /// Planted fires.
    pub fires: Vec<FireEvent>,
    /// Fraction of pixels under cold cloud blobs (0–1).
    pub cloud_cover: f64,
    /// Per-sea-pixel probability of a warm glint artifact.
    pub glint_rate: f64,
}

impl SceneSpec {
    /// A reasonable default over the given window.
    pub fn new(seed: u64, rows: usize, cols: usize, bbox: Envelope) -> SceneSpec {
        SceneSpec {
            seed,
            rows,
            cols,
            bbox,
            acquisition: "2007-08-25T12:00:00Z".into(),
            satellite: "MSG2".into(),
            fires: Vec::new(),
            cloud_cover: 0.05,
            glint_rate: 0.01,
        }
    }
}

/// A generated scene: the raster plus the ground-truth fire mask
/// (1.0 where a pixel genuinely burns), used to score classifiers (E2).
#[derive(Debug, Clone)]
pub struct Scene {
    /// The synthetic SEVIRI raster (3 bands).
    pub raster: GeoRaster,
    /// Ground-truth fire mask, dims (y, x).
    pub truth: NdArray,
}

/// Generate a scene over the given surface model.
pub fn generate(spec: &SceneSpec, surface: &dyn Fn(Coord) -> SurfaceKind) -> Result<Scene> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let geo = GeoTransform::fit(&spec.bbox, spec.rows, spec.cols);
    let (rows, cols) = (spec.rows, spec.cols);

    let mut vis = vec![0.0f64; rows * cols];
    let mut ir039 = vec![0.0f64; rows * cols];
    let mut ir108 = vec![0.0f64; rows * cols];
    let mut truth = vec![0.0f64; rows * cols];

    // Cloud blobs: pick centres until the requested cover is reached.
    let mut cloud = vec![false; rows * cols];
    let target_cloudy = ((rows * cols) as f64 * spec.cloud_cover) as usize;
    let mut cloudy = 0usize;
    while cloudy < target_cloudy {
        let cr = rng.random_range(0..rows) as i64;
        let cc = rng.random_range(0..cols) as i64;
        let radius = rng.random_range(2..(rows.max(cols) / 6).max(3)) as i64;
        for r in (cr - radius).max(0)..(cr + radius).min(rows as i64) {
            for c in (cc - radius).max(0)..(cc + radius).min(cols as i64) {
                let dr = r - cr;
                let dc = c - cc;
                if dr * dr + dc * dc <= radius * radius {
                    let idx = (r * cols as i64 + c) as usize;
                    if !cloud[idx] {
                        cloud[idx] = true;
                        cloudy += 1;
                    }
                }
            }
        }
    }

    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let center = geo.pixel_center(r, c);
            let kind = surface(center);

            // Ambient signal plus sensor noise (~±1 K uniform).
            let noise = |rng: &mut StdRng| rng.random_range(-1.0..1.0);
            let mut t39 = kind.ambient_k() + noise(&mut rng);
            let mut t108 = kind.ambient_k() - 3.0 + noise(&mut rng);
            let mut refl = kind.reflectance() + rng.random_range(-0.02..0.02);

            // Fire contributions (Gaussian falloff; IR_039 dominates).
            for fire in &spec.fires {
                let d = center.distance(&fire.center);
                if d < fire.radius * 3.0 {
                    let fall = (-0.5 * (d / fire.radius).powi(2)).exp();
                    let boost = fire.intensity * 90.0 * fall;
                    // Fires only heat land pixels.
                    if kind != SurfaceKind::Sea {
                        t39 += boost;
                        t108 += boost * 0.25;
                        if boost > 20.0 {
                            truth[idx] = 1.0;
                        }
                    }
                }
            }

            // Sun-glint artifacts: warm anomalies over the sea.
            if kind == SurfaceKind::Sea && rng.random_range(0.0..1.0) < spec.glint_rate {
                t39 += rng.random_range(22.0..45.0);
            }

            // Clouds occlude: cold tops, bright in VIS.
            if cloud[idx] {
                t39 = 265.0 + noise(&mut rng) * 3.0;
                t108 = 260.0 + noise(&mut rng) * 3.0;
                refl = 0.7 + rng.random_range(-0.05..0.05);
                truth[idx] = 0.0; // a cloud-occluded fire is undetectable
            }

            vis[idx] = refl.clamp(0.0, 1.0);
            ir039[idx] = t39;
            ir108[idx] = t108;
        }
    }

    let mut data = Vec::with_capacity(rows * cols * 3);
    data.extend_from_slice(&vis);
    data.extend_from_slice(&ir039);
    data.extend_from_slice(&ir108);
    let array = NdArray::from_vec(
        vec![Dim::new("band", 3), Dim::new("y", rows), Dim::new("x", cols)],
        data,
    )?;
    let raster = GeoRaster::new(array, geo, spec.acquisition.clone(), spec.satellite.clone())?;
    let truth = NdArray::from_vec(vec![Dim::new("y", rows), Dim::new("x", cols)], truth)?;
    Ok(Scene { raster, truth })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Envelope {
        Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
    }

    /// Left half land (forest), right half sea.
    fn surface(c: Coord) -> SurfaceKind {
        if c.x < 22.5 {
            SurfaceKind::Forest
        } else {
            SurfaceKind::Sea
        }
    }

    fn base_spec() -> SceneSpec {
        let mut s = SceneSpec::new(7, 64, 64, bbox());
        s.cloud_cover = 0.0;
        s.glint_rate = 0.0;
        s
    }

    #[test]
    fn deterministic() {
        let spec = base_spec();
        let a = generate(&spec, &surface).unwrap();
        let b = generate(&spec, &surface).unwrap();
        assert_eq!(a.raster.data, b.raster.data);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn shapes_and_metadata() {
        let s = generate(&base_spec(), &surface).unwrap();
        assert_eq!(s.raster.bands(), 3);
        assert_eq!(s.raster.rows(), 64);
        assert_eq!(s.raster.cols(), 64);
        assert_eq!(s.raster.satellite, "MSG2");
        assert_eq!(s.truth.shape(), vec![64, 64]);
    }

    #[test]
    fn ambient_temperatures_differ_by_surface() {
        let s = generate(&base_spec(), &surface).unwrap();
        // Land pixel (left) vs sea pixel (right) on IR_039.
        let land = s.raster.get(BAND_IR039, 32, 5).unwrap();
        let sea = s.raster.get(BAND_IR039, 32, 60).unwrap();
        assert!(land > sea, "land {land} K should exceed sea {sea} K");
        assert!((land - 301.0).abs() < 3.0);
        assert!((sea - 293.0).abs() < 3.0);
    }

    #[test]
    fn fires_heat_pixels_and_set_truth() {
        let mut spec = base_spec();
        spec.fires.push(FireEvent {
            center: Coord::new(21.7, 37.5),
            radius: 0.08,
            intensity: 0.9,
        });
        let s = generate(&spec, &surface).unwrap();
        let (r, c) = s.raster.geo.locate(Coord::new(21.7, 37.5), 64, 64).unwrap();
        let t = s.raster.get(BAND_IR039, r, c).unwrap();
        assert!(t > 350.0, "fire core was only {t} K");
        assert_eq!(s.truth.get(&[r, c]).unwrap(), 1.0);
        assert!(s.truth.sum() > 0.0);
    }

    #[test]
    fn fires_do_not_heat_sea() {
        let mut spec = base_spec();
        spec.fires.push(FireEvent {
            center: Coord::new(23.5, 37.5), // over sea
            radius: 0.08,
            intensity: 0.9,
        });
        let s = generate(&spec, &surface).unwrap();
        assert_eq!(s.truth.sum(), 0.0);
        let (r, c) = s.raster.geo.locate(Coord::new(23.5, 37.5), 64, 64).unwrap();
        assert!(s.raster.get(BAND_IR039, r, c).unwrap() < 300.0);
    }

    #[test]
    fn glint_produces_warm_sea_pixels() {
        let mut spec = base_spec();
        spec.glint_rate = 0.05;
        let s = generate(&spec, &surface).unwrap();
        // Count sea pixels above a fire-detection-style threshold.
        let mut glints = 0;
        for r in 0..64 {
            for c in 40..64 {
                if s.raster.get(BAND_IR039, r, c).unwrap() > 312.0 {
                    glints += 1;
                }
            }
        }
        assert!(glints > 0, "expected some glint artifacts");
        // None of them are true fires.
        assert_eq!(s.truth.sum(), 0.0);
    }

    #[test]
    fn clouds_cool_and_brighten() {
        let mut spec = base_spec();
        spec.cloud_cover = 0.5;
        let s = generate(&spec, &surface).unwrap();
        let b = s.raster.band(BAND_IR039).unwrap();
        let cold = b.data().iter().filter(|&&v| v < 280.0).count();
        assert!(
            cold as f64 > 0.3 * (64.0 * 64.0),
            "expected extensive cloud cooling, got {cold} pixels"
        );
    }

    #[test]
    fn clouds_occlude_fires_in_truth() {
        let mut spec = base_spec();
        spec.cloud_cover = 0.95;
        spec.fires.push(FireEvent {
            center: Coord::new(21.7, 37.5),
            radius: 0.1,
            intensity: 1.0,
        });
        let cloudy = generate(&spec, &surface).unwrap();
        spec.cloud_cover = 0.0;
        let clear = generate(&spec, &surface).unwrap();
        assert!(cloudy.truth.sum() < clear.truth.sum());
    }

    #[test]
    fn surface_constants_sane() {
        assert!(SurfaceKind::Sea.ambient_k() < SurfaceKind::Forest.ambient_k());
        assert!(SurfaceKind::Urban.reflectance() > SurfaceKind::Sea.reflectance());
    }
}
