//! Product metadata as stRDF triples.
//!
//! Every ingested product is described in the NOA ontology: type,
//! acquisition time (with an stRDF valid-time period), acquiring
//! satellite, and geographic footprint as an `strdf:WKT` literal.

use crate::raster::GeoRaster;
use teleios_geo::Geometry;
use teleios_geo::geometry::Polygon;
use teleios_rdf::store::TripleStore;
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{noa, rdf, strdf};

/// Mint the product IRI for a scene identifier.
pub fn product_iri(id: &str) -> Term {
    Term::iri(format!("http://teleios.di.uoa.gr/products/{id}"))
}

/// Describe a raw-image product in the store. Returns triples added.
pub fn describe_raw_image(id: &str, raster: &GeoRaster, store: &mut TripleStore) -> usize {
    let before = store.len();
    let s = product_iri(id);
    store.insert_terms(&s, &Term::iri(rdf::TYPE), &Term::iri(noa::RAW_IMAGE));
    store.insert_terms(
        &s,
        &Term::iri(noa::HAS_ACQUISITION_TIME),
        &Term::date_time(raster.acquisition.clone()),
    );
    store.insert_terms(
        &s,
        &Term::iri(noa::ACQUIRED_BY),
        &Term::iri(format!("http://teleios.di.uoa.gr/satellites/{}", raster.satellite)),
    );
    store.insert_terms(
        &s,
        &Term::iri(strdf::HAS_GEOMETRY),
        &geometry_literal_wgs84(&Geometry::Polygon(Polygon::from_envelope(&raster.envelope()))),
    );
    store.len() - before
}

/// Describe a derived product linked to the raw product it came from.
/// Returns triples added.
pub fn describe_derived(
    id: &str,
    raw_id: &str,
    chain: &str,
    footprint: &Geometry,
    store: &mut TripleStore,
) -> usize {
    let before = store.len();
    let s = product_iri(id);
    store.insert_terms(&s, &Term::iri(rdf::TYPE), &Term::iri(noa::DERIVED_PRODUCT));
    store.insert_terms(&s, &Term::iri(noa::IS_DERIVED_FROM), &product_iri(raw_id));
    store.insert_terms(
        &s,
        &Term::iri(noa::PRODUCED_BY_CHAIN),
        &Term::iri(format!("http://teleios.di.uoa.gr/chains/{chain}")),
    );
    store.insert_terms(
        &s,
        &Term::iri(strdf::HAS_GEOMETRY),
        &geometry_literal_wgs84(footprint),
    );
    store.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;
    use teleios_monet::array::{Dim, NdArray};

    fn raster() -> GeoRaster {
        let data = NdArray::zeros(vec![
            Dim::new("band", 1),
            Dim::new("y", 4),
            Dim::new("x", 4),
        ]);
        let geo = GeoTransform { origin_x: 21.0, origin_y: 39.0, pixel_w: 0.5, pixel_h: 0.5 };
        GeoRaster::new(data, geo, "2007-08-25T12:00:00Z", "MSG2").unwrap()
    }

    #[test]
    fn raw_image_triples() {
        let mut st = TripleStore::new();
        let n = describe_raw_image("scene-1", &raster(), &mut st);
        assert_eq!(n, 4);
        let s = product_iri("scene-1");
        assert_eq!(st.objects(&s, &Term::iri(rdf::TYPE)), vec![Term::iri(noa::RAW_IMAGE)]);
        let geoms = st.objects(&s, &Term::iri(strdf::HAS_GEOMETRY));
        assert_eq!(geoms.len(), 1);
        let (g, _) = teleios_rdf::strdf::parse_geometry(&geoms[0]).unwrap();
        // The footprint covers the raster envelope.
        assert_eq!(g.envelope(), raster().envelope());
    }

    #[test]
    fn derived_product_links_to_raw() {
        let mut st = TripleStore::new();
        describe_raw_image("scene-1", &raster(), &mut st);
        let fp = Geometry::Point(teleios_geo::geometry::Point::new(22.0, 38.0));
        let n = describe_derived("hot-1", "scene-1", "threshold-318", &fp, &mut st);
        assert_eq!(n, 4);
        let derived = st.subjects(
            &Term::iri(noa::IS_DERIVED_FROM),
            &product_iri("scene-1"),
        );
        assert_eq!(derived, vec![product_iri("hot-1")]);
    }

    #[test]
    fn idempotent_description() {
        let mut st = TripleStore::new();
        describe_raw_image("scene-1", &raster(), &mut st);
        let n = describe_raw_image("scene-1", &raster(), &mut st);
        assert_eq!(n, 0);
    }
}
