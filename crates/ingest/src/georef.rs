//! Cropping and georeferencing of rasters (processing-chain modules b/c).

use crate::raster::{GeoRaster, GeoTransform};
use teleios_geo::Envelope;
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::{DbError, Result};

/// Crop a raster to the pixels intersecting `window` (module (b) of the
/// NOA chain). Returns an error when nothing overlaps.
pub fn crop(raster: &GeoRaster, window: &Envelope) -> Result<GeoRaster> {
    let overlap = raster.envelope().intersection(window);
    if overlap.is_empty() {
        return Err(DbError::ShapeMismatch(
            "crop window does not intersect the raster".into(),
        ));
    }
    let geo = &raster.geo;
    // Pixel range covering the overlap (clamped to the raster).
    let col0 = (((overlap.min.x - geo.origin_x) / geo.pixel_w).floor().max(0.0)) as usize;
    let col1 = ((((overlap.max.x - geo.origin_x) / geo.pixel_w).ceil()) as usize).min(raster.cols());
    let row0 = (((geo.origin_y - overlap.max.y) / geo.pixel_h).floor().max(0.0)) as usize;
    let row1 = ((((geo.origin_y - overlap.min.y) / geo.pixel_h).ceil()) as usize).min(raster.rows());
    if col0 >= col1 || row0 >= row1 {
        return Err(DbError::ShapeMismatch("crop window too small".into()));
    }
    let data = raster.data.slice(&[(0, raster.bands()), (row0, row1), (col0, col1)])?;
    let new_geo = GeoTransform {
        origin_x: geo.origin_x + col0 as f64 * geo.pixel_w,
        origin_y: geo.origin_y - row0 as f64 * geo.pixel_h,
        pixel_w: geo.pixel_w,
        pixel_h: geo.pixel_h,
    };
    GeoRaster::new(data, new_geo, raster.acquisition.clone(), raster.satellite.clone())
}

/// Georeference a raster onto a target grid by nearest-neighbour
/// resampling (module (c) of the NOA chain). Target pixels outside the
/// source are filled with `fill`.
pub fn georeference(
    raster: &GeoRaster,
    target: &GeoTransform,
    rows: usize,
    cols: usize,
    fill: f64,
) -> Result<GeoRaster> {
    let bands = raster.bands();
    let mut out = NdArray::filled(
        vec![Dim::new("band", bands), Dim::new("y", rows), Dim::new("x", cols)],
        fill,
    );
    for r in 0..rows {
        for c in 0..cols {
            let center = target.pixel_center(r, c);
            if let Some((sr, sc)) = raster.geo.locate(center, raster.rows(), raster.cols()) {
                for b in 0..bands {
                    let v = raster.data.get(&[b, sr, sc])?;
                    out.set(&[b, r, c], v)?;
                }
            }
        }
    }
    GeoRaster::new(out, *target, raster.acquisition.clone(), raster.satellite.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::Coord;

    fn raster() -> GeoRaster {
        // 1 band, 8x8 ramp over [20..28] x [32..40].
        let data = NdArray::from_vec(
            vec![Dim::new("band", 1), Dim::new("y", 8), Dim::new("x", 8)],
            (0..64).map(|v| v as f64).collect(),
        )
        .unwrap();
        let geo = GeoTransform { origin_x: 20.0, origin_y: 40.0, pixel_w: 1.0, pixel_h: 1.0 };
        GeoRaster::new(data, geo, "2007-08-25T12:00:00Z", "MSG2").unwrap()
    }

    #[test]
    fn crop_extracts_window() {
        let r = raster();
        let window = Envelope::new(Coord::new(22.0, 36.0), Coord::new(25.0, 38.0));
        let c = crop(&r, &window).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        // Top-left of the crop = row 2, col 2 of the source = 18.
        assert_eq!(c.get(0, 0, 0).unwrap(), 18.0);
        assert_eq!(c.geo.origin_x, 22.0);
        assert_eq!(c.geo.origin_y, 38.0);
        // Geographic positions are preserved.
        assert_eq!(c.geo.pixel_center(0, 0), r.geo.pixel_center(2, 2));
    }

    #[test]
    fn crop_partial_overlap_clamps() {
        let r = raster();
        let window = Envelope::new(Coord::new(18.0, 38.0), Coord::new(21.0, 42.0));
        let c = crop(&r, &window).unwrap();
        assert_eq!(c.cols(), 1);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.get(0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn crop_disjoint_errors() {
        let r = raster();
        let window = Envelope::new(Coord::new(100.0, 100.0), Coord::new(101.0, 101.0));
        assert!(crop(&r, &window).is_err());
    }

    #[test]
    fn georeference_identity_grid() {
        let r = raster();
        let g = georeference(&r, &r.geo.clone(), 8, 8, f64::NAN).unwrap();
        assert_eq!(g.data, r.data);
    }

    #[test]
    fn georeference_upsamples_nearest() {
        let r = raster();
        let target = GeoTransform { origin_x: 20.0, origin_y: 40.0, pixel_w: 0.5, pixel_h: 0.5 };
        let g = georeference(&r, &target, 16, 16, 0.0).unwrap();
        // Each source pixel becomes a 2x2 block.
        assert_eq!(g.get(0, 0, 0).unwrap(), 0.0);
        assert_eq!(g.get(0, 0, 1).unwrap(), 0.0);
        assert_eq!(g.get(0, 0, 2).unwrap(), 1.0);
        assert_eq!(g.get(0, 2, 0).unwrap(), 8.0);
    }

    #[test]
    fn georeference_fills_outside() {
        let r = raster();
        // Target extends west of the source.
        let target = GeoTransform { origin_x: 15.0, origin_y: 40.0, pixel_w: 1.0, pixel_h: 1.0 };
        let g = georeference(&r, &target, 8, 8, -1.0).unwrap();
        assert_eq!(g.get(0, 0, 0).unwrap(), -1.0); // outside
        assert_eq!(g.get(0, 0, 5).unwrap(), 0.0); // source col 0
    }
}
