//! Georeferenced multiband rasters.

use teleios_geo::{Coord, Envelope};
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::{DbError, Result};

/// Affine geotransform: maps pixel (row, col) to geographic coordinates.
/// North-up only (no rotation terms), like the vast majority of EO
/// products.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoTransform {
    /// Longitude of the *outer* edge of column 0.
    pub origin_x: f64,
    /// Latitude of the *outer* edge of row 0 (the top).
    pub origin_y: f64,
    /// Pixel width in degrees.
    pub pixel_w: f64,
    /// Pixel height in degrees (positive; rows grow southward).
    pub pixel_h: f64,
}

impl GeoTransform {
    /// Transform covering `bbox` with the given raster shape.
    pub fn fit(bbox: &Envelope, rows: usize, cols: usize) -> GeoTransform {
        GeoTransform {
            origin_x: bbox.min.x,
            origin_y: bbox.max.y,
            pixel_w: bbox.width() / cols.max(1) as f64,
            pixel_h: bbox.height() / rows.max(1) as f64,
        }
    }

    /// Geographic coordinate of a pixel's *centre*.
    pub fn pixel_center(&self, row: usize, col: usize) -> Coord {
        Coord::new(
            self.origin_x + (col as f64 + 0.5) * self.pixel_w,
            self.origin_y - (row as f64 + 0.5) * self.pixel_h,
        )
    }

    /// Geographic envelope of a pixel.
    pub fn pixel_envelope(&self, row: usize, col: usize) -> Envelope {
        let x0 = self.origin_x + col as f64 * self.pixel_w;
        let y1 = self.origin_y - row as f64 * self.pixel_h;
        Envelope::new(Coord::new(x0, y1 - self.pixel_h), Coord::new(x0 + self.pixel_w, y1))
    }

    /// Pixel (row, col) containing a geographic coordinate, if inside
    /// the given raster shape.
    pub fn locate(&self, c: Coord, rows: usize, cols: usize) -> Option<(usize, usize)> {
        let col = ((c.x - self.origin_x) / self.pixel_w).floor();
        let row = ((self.origin_y - c.y) / self.pixel_h).floor();
        if col < 0.0 || row < 0.0 || col >= cols as f64 || row >= rows as f64 {
            return None;
        }
        Some((row as usize, col as usize))
    }

    /// Envelope of the full raster.
    pub fn envelope(&self, rows: usize, cols: usize) -> Envelope {
        Envelope::new(
            Coord::new(self.origin_x, self.origin_y - rows as f64 * self.pixel_h),
            Coord::new(self.origin_x + cols as f64 * self.pixel_w, self.origin_y),
        )
    }
}

/// A georeferenced multiband raster: the in-database image.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoRaster {
    /// The pixel data: dims (band, y, x).
    pub data: NdArray,
    /// Geotransform.
    pub geo: GeoTransform,
    /// Acquisition instant (ISO-8601).
    pub acquisition: String,
    /// Acquiring satellite/sensor identifier.
    pub satellite: String,
}

impl GeoRaster {
    /// New raster; the array must have dims (band, y, x).
    pub fn new(
        data: NdArray,
        geo: GeoTransform,
        acquisition: impl Into<String>,
        satellite: impl Into<String>,
    ) -> Result<GeoRaster> {
        if data.ndim() != 3 {
            return Err(DbError::ShapeMismatch(format!(
                "GeoRaster needs (band, y, x) dims, got rank {}",
                data.ndim()
            )));
        }
        Ok(GeoRaster {
            data,
            geo,
            acquisition: acquisition.into(),
            satellite: satellite.into(),
        })
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.data.shape()[0]
    }

    /// Raster rows.
    pub fn rows(&self) -> usize {
        self.data.shape()[1]
    }

    /// Raster columns.
    pub fn cols(&self) -> usize {
        self.data.shape()[2]
    }

    /// Geographic envelope.
    pub fn envelope(&self) -> Envelope {
        self.geo.envelope(self.rows(), self.cols())
    }

    /// Value of one band at (row, col).
    pub fn get(&self, band: usize, row: usize, col: usize) -> Result<f64> {
        self.data.get(&[band, row, col])
    }

    /// One band as a 2-D array (y, x).
    pub fn band(&self, band: usize) -> Result<NdArray> {
        let s = self.data.slice(&[(band, band + 1), (0, self.rows()), (0, self.cols())])?;
        NdArray::from_vec(
            vec![Dim::new("y", self.rows()), Dim::new("x", self.cols())],
            s.data().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transform() -> GeoTransform {
        GeoTransform { origin_x: 20.0, origin_y: 40.0, pixel_w: 0.5, pixel_h: 0.5 }
    }

    #[test]
    fn fit_covers_bbox() {
        let bbox = Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0));
        let t = GeoTransform::fit(&bbox, 100, 300);
        assert_eq!(t.origin_x, 21.0);
        assert_eq!(t.origin_y, 39.0);
        assert_eq!(t.pixel_w, 0.01);
        assert_eq!(t.pixel_h, 0.03);
        assert_eq!(t.envelope(100, 300), bbox);
    }

    #[test]
    fn pixel_center_and_locate_roundtrip() {
        let t = transform();
        let c = t.pixel_center(2, 3);
        assert_eq!(c, Coord::new(21.75, 38.75));
        assert_eq!(t.locate(c, 10, 10), Some((2, 3)));
    }

    #[test]
    fn locate_outside_is_none() {
        let t = transform();
        assert_eq!(t.locate(Coord::new(19.0, 39.0), 10, 10), None);
        assert_eq!(t.locate(Coord::new(21.0, 41.0), 10, 10), None);
        assert_eq!(t.locate(Coord::new(26.0, 39.0), 10, 10), None);
    }

    #[test]
    fn pixel_envelope_tiles_raster() {
        let t = transform();
        let e = t.pixel_envelope(0, 0);
        assert_eq!(e.min, Coord::new(20.0, 39.5));
        assert_eq!(e.max, Coord::new(20.5, 40.0));
        // Adjacent pixels share an edge.
        let e2 = t.pixel_envelope(0, 1);
        assert_eq!(e.max.x, e2.min.x);
    }

    #[test]
    fn georaster_accessors() {
        let data = NdArray::from_vec(
            vec![Dim::new("band", 2), Dim::new("y", 3), Dim::new("x", 4)],
            (0..24).map(|v| v as f64).collect(),
        )
        .unwrap();
        let r = GeoRaster::new(data, transform(), "2007-08-25T12:00:00Z", "MSG2").unwrap();
        assert_eq!(r.bands(), 2);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.cols(), 4);
        assert_eq!(r.get(1, 2, 3).unwrap(), 23.0);
        let b1 = r.band(1).unwrap();
        assert_eq!(b1.shape(), vec![3, 4]);
        assert_eq!(b1.get(&[2, 3]).unwrap(), 23.0);
    }

    #[test]
    fn georaster_requires_3d() {
        let flat = NdArray::matrix(2, 2, vec![0.0; 4]).unwrap();
        assert!(GeoRaster::new(flat, transform(), "t", "s").is_err());
    }
}
