#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-ingest — the ingestion tier
//!
//! Components that transform original satellite data into database
//! representations (paper §3, tier 1):
//!
//! * [`raster::GeoRaster`] — a georeferenced multiband raster: the
//!   database-side image representation, with pixel ↔ geographic
//!   coordinate mapping,
//! * [`seviri`] — a deterministic synthetic MSG/SEVIRI scene generator
//!   (the paper's proprietary satellite feed is simulated; the generator
//!   reproduces the properties the demo depends on: a thermal band with
//!   fire anomalies, coarse spatial resolution, sensor noise, clouds,
//!   and warm false-positive artifacts near/over the sea),
//! * [`georef`] — cropping to an area of interest and georeferencing to
//!   a target grid,
//! * [`features`] — patch cutting and feature-vector extraction (the
//!   content-extraction components),
//! * [`metadata`] — product metadata as stRDF triples.

pub mod features;
pub mod georef;
pub mod metadata;
pub mod raster;
pub mod seviri;

pub use raster::{GeoRaster, GeoTransform};
pub use seviri::{FireEvent, SceneSpec, SurfaceKind};
