//! Property-based tests for the stSPARQL engine.

use proptest::prelude::*;
use teleios_geo::{Coord, Envelope};
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_strabon::{Strabon, StrabonConfig};

/// Build a store of points at the given coordinates.
fn point_store(points: &[(f64, f64)], config: StrabonConfig) -> Strabon {
    let mut db = Strabon::with_config(config);
    for (i, &(x, y)) in points.iter().enumerate() {
        let s = Term::iri(format!("http://x/f{i}"));
        db.insert(
            &s,
            &Term::iri(teleios_rdf::vocab::rdf::TYPE),
            &Term::iri("http://x/Feature"),
        );
        db.insert(
            &s,
            &Term::iri(teleios_rdf::vocab::strdf::HAS_GEOMETRY),
            &geometry_literal_wgs84(&teleios_geo::Geometry::Point(
                teleios_geo::geometry::Point::new(x, y),
            )),
        );
    }
    db
}

fn window_query(env: &Envelope) -> String {
    let lit = geometry_literal_wgs84(&teleios_geo::Geometry::Polygon(
        teleios_geo::geometry::Polygon::from_envelope(env),
    ));
    format!(
        "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
         SELECT ?f WHERE {{ ?f a <http://x/Feature> ; strdf:hasGeometry ?g .\n\
         FILTER(strdf:intersects(?g, {lit})) }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The spatial index is an optimization, never a semantics change:
    /// indexed and scan evaluation agree on every random workload.
    #[test]
    fn indexed_and_scan_results_agree(
        points in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..60),
        wx in -50.0f64..40.0, wy in -50.0f64..40.0, w in 0.5f64..20.0,
    ) {
        let env = Envelope::new(Coord::new(wx, wy), Coord::new(wx + w, wy + w));
        let q = window_query(&env);
        let mut indexed = point_store(&points, StrabonConfig::default());
        let mut scan = point_store(
            &points,
            StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: false, ..StrabonConfig::default() },
        );
        let a = indexed.query(&q).unwrap();
        let b = scan.query(&q).unwrap();
        let mut ra: Vec<String> = a.rows.iter().map(|r| format!("{:?}", r)).collect();
        let mut rb: Vec<String> = b.rows.iter().map(|r| format!("{:?}", r)).collect();
        ra.sort();
        rb.sort();
        prop_assert_eq!(ra, rb);
        // And both match a direct geometric count.
        let expect = points
            .iter()
            .filter(|&&(x, y)| env.contains_coord(Coord::new(x, y)))
            .count();
        prop_assert_eq!(a.len(), expect);
    }

    /// DELETE DATA after INSERT DATA returns the store to its old size.
    #[test]
    fn insert_delete_roundtrip(n in 1usize..30) {
        let mut db = Strabon::new();
        let before = db.len();
        let mut stmt = String::from("INSERT DATA {\n");
        for i in 0..n {
            stmt.push_str(&format!("<http://x/s{i}> <http://x/p> {i} .\n"));
        }
        stmt.push('}');
        let added = db.update(&stmt).unwrap();
        prop_assert_eq!(added, n);
        let removed = db.update(&stmt.replace("INSERT", "DELETE")).unwrap();
        prop_assert_eq!(removed, n);
        prop_assert_eq!(db.len(), before);
    }

    /// ORDER BY ?v returns numerically sorted literals.
    #[test]
    fn order_by_sorts_numbers(vals in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let mut db = Strabon::new();
        for (i, v) in vals.iter().enumerate() {
            db.insert(
                &Term::iri(format!("http://x/s{i}")),
                &Term::iri("http://x/value"),
                &Term::int(*v),
            );
        }
        let sols = db
            .query("SELECT ?v WHERE { ?s <http://x/value> ?v } ORDER BY ?v")
            .unwrap();
        let got: Vec<i64> = sols
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().as_i64().unwrap())
            .collect();
        let mut expect: Vec<i64> = vals.clone();
        expect.sort_unstable();
        expect.dedup(); // identical literals intern to one triple per subject...
        // Subjects differ, so duplicates survive; only exact (s, p, o)
        // duplicates collapse. Recompute accordingly.
        let mut expect: Vec<i64> = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// LIMIT/OFFSET paginate without loss or duplication.
    #[test]
    fn pagination_partitions_results(n in 1usize..40, page in 1usize..10) {
        let mut db = Strabon::new();
        for i in 0..n {
            db.insert(
                &Term::iri(format!("http://x/s{i:03}")),
                &Term::iri("http://x/p"),
                &Term::int(i as i64),
            );
        }
        let mut collected = Vec::new();
        let mut offset = 0;
        loop {
            let sols = db
                .query(&format!(
                    "SELECT ?s WHERE {{ ?s <http://x/p> ?v }} ORDER BY ?s LIMIT {page} OFFSET {offset}"
                ))
                .unwrap();
            if sols.is_empty() {
                break;
            }
            for r in &sols.rows {
                collected.push(format!("{:?}", r[0]));
            }
            offset += page;
        }
        prop_assert_eq!(collected.len(), n);
        let mut dedup = collected.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), n);
    }

    /// FILTER conjunction equals sequential FILTERs.
    #[test]
    fn filter_conjunction_equivalence(vals in proptest::collection::vec(0i64..100, 1..40), lo in 0i64..50, hi in 50i64..100) {
        let mut db = Strabon::new();
        for (i, v) in vals.iter().enumerate() {
            db.insert(
                &Term::iri(format!("http://x/s{i}")),
                &Term::iri("http://x/value"),
                &Term::int(*v),
            );
        }
        let a = db
            .query(&format!(
                "SELECT ?s WHERE {{ ?s <http://x/value> ?v . FILTER(?v >= {lo} && ?v <= {hi}) }}"
            ))
            .unwrap();
        let b = db
            .query(&format!(
                "SELECT ?s WHERE {{ ?s <http://x/value> ?v . FILTER(?v >= {lo}) FILTER(?v <= {hi}) }}"
            ))
            .unwrap();
        prop_assert_eq!(a.len(), b.len());
        let expect = vals.iter().filter(|&&v| v >= lo && v <= hi).count();
        prop_assert_eq!(a.len(), expect);
    }
}
