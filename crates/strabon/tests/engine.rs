//! End-to-end tests of the Strabon engine: loading, querying, updating.

use teleios_rdf::term::Term;
use teleios_strabon::{Strabon, StrabonConfig};

const PREFIXES: &str = "\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
PREFIX ex: <http://example.org/>\n";

fn fixture() -> Strabon {
    let mut db = Strabon::new();
    db.load_turtle(
        r#"
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:img1 a noa:RawImage ;
    noa:isAcquiredBy ex:Meteosat9 ;
    noa:hasAcquisitionTime "2007-08-25T12:00:00Z"^^xsd:dateTime ;
    strdf:hasGeometry "POLYGON ((21 36, 24 36, 24 39, 21 39, 21 36))"^^strdf:WKT .

ex:img2 a noa:RawImage ;
    noa:isAcquiredBy ex:Meteosat8 ;
    noa:hasAcquisitionTime "2007-08-26T12:00:00Z"^^xsd:dateTime ;
    strdf:hasGeometry "POLYGON ((10 40, 13 40, 13 43, 10 43, 10 40))"^^strdf:WKT .

ex:h1 a noa:Hotspot ;
    noa:isDerivedFrom ex:img1 ;
    noa:hasConfidence 0.9 ;
    strdf:hasGeometry "POINT (22.3 37.5)"^^strdf:WKT .

ex:h2 a noa:Hotspot ;
    noa:isDerivedFrom ex:img1 ;
    noa:hasConfidence 0.4 ;
    strdf:hasGeometry "POINT (23.9 38.9)"^^strdf:WKT .

ex:h3 a noa:Hotspot ;
    noa:isDerivedFrom ex:img2 ;
    noa:hasConfidence 0.7 ;
    strdf:hasGeometry "POINT (11.5 41.5)"^^strdf:WKT .

ex:olympia a ex:ArchaeologicalSite ;
    strdf:hasGeometry "POINT (22.3 37.6)"^^strdf:WKT .
"#,
    )
    .unwrap();
    db
}

#[test]
fn load_counts_triples() {
    let db = fixture();
    assert_eq!(db.len(), 22);
}

#[test]
fn select_by_class() {
    let mut db = fixture();
    let sols = db
        .query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }} ORDER BY ?h"))
        .unwrap();
    assert_eq!(sols.len(), 3);
    assert_eq!(sols.get(0, "h"), Some(&Term::iri("http://example.org/h1")));
}

#[test]
fn join_across_patterns() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?h ?img WHERE {{ \
               ?h a noa:Hotspot ; noa:isDerivedFrom ?img . \
               ?img noa:isAcquiredBy ex:Meteosat9 . }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 2); // h1, h2 from img1
}

#[test]
fn numeric_filter() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?h WHERE {{ \
               ?h a noa:Hotspot ; noa:hasConfidence ?c . FILTER(?c >= 0.7) }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 2);
}

#[test]
fn spatial_intersects_filter() {
    let mut db = fixture();
    // Peloponnese-ish box covers h1 only.
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?h WHERE {{ \
               ?h a noa:Hotspot ; strdf:hasGeometry ?g . \
               FILTER(strdf:intersects(?g, \"POLYGON ((21.5 36.5, 23 36.5, 23 38, 21.5 38, 21.5 36.5))\"^^strdf:WKT)) }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "h"), Some(&Term::iri("http://example.org/h1")));
}

#[test]
fn spatial_distance_filter_flagship_query() {
    // The paper's flagship request: hotspots within distance of an
    // archaeological site, joined with the acquiring image.
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?img ?h WHERE {{ \
               ?img a noa:RawImage ; noa:isAcquiredBy ex:Meteosat9 . \
               ?h a noa:Hotspot ; noa:isDerivedFrom ?img ; strdf:hasGeometry ?hg . \
               ?site a ex:ArchaeologicalSite ; strdf:hasGeometry ?sg . \
               FILTER(strdf:distance(?hg, \"POINT (22.3 37.6)\"^^strdf:WKT) < 0.2) }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "h"), Some(&Term::iri("http://example.org/h1")));
}

#[test]
fn results_identical_with_and_without_optimizations() {
    let query = format!(
        "{PREFIXES} SELECT ?h ?c WHERE {{ \
           ?h a noa:Hotspot ; noa:hasConfidence ?c ; strdf:hasGeometry ?g . \
           FILTER(strdf:intersects(?g, \"POLYGON ((20 35, 25 35, 25 40, 20 40, 20 35))\"^^strdf:WKT)) \
         }} ORDER BY ?h"
    );
    let mut fast = fixture();
    let mut slow = fixture();
    slow.set_config(StrabonConfig { rdfs_inference: false, optimize_bgp: false, use_spatial_index: false, ..StrabonConfig::default() });
    let a = fast.query(&query).unwrap();
    let b = slow.query(&query).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2);
}

#[test]
fn optional_binds_when_present() {
    let mut db = fixture();
    db.load_turtle(
        "@prefix ex: <http://example.org/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         ex:h1 rdfs:label \"big fire\" .",
    )
    .unwrap();
    let sols = db
        .query(&format!(
            "{PREFIXES} PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> \
             SELECT ?h ?l WHERE {{ ?h a noa:Hotspot . OPTIONAL {{ ?h rdfs:label ?l }} }} ORDER BY ?h"
        ))
        .unwrap();
    assert_eq!(sols.len(), 3);
    assert_eq!(sols.get(0, "l"), Some(&Term::literal("big fire")));
    assert_eq!(sols.get(1, "l"), None);
}

#[test]
fn union_combines_branches() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?x WHERE {{ \
               {{ ?x a noa:RawImage }} UNION {{ ?x a ex:ArchaeologicalSite }} }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 3);
}

#[test]
fn minus_removes() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?h WHERE {{ \
               ?h a noa:Hotspot . MINUS {{ ?h noa:isDerivedFrom ex:img2 }} }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 2);
}

#[test]
fn bind_and_projection_expression() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?h (strdf:area(?g) AS ?a) WHERE {{ \
               ?h a noa:RawImage ; strdf:hasGeometry ?g . \
               BIND(1 AS ?one) FILTER(?one = 1) }} ORDER BY ?h"
        ))
        .unwrap();
    assert_eq!(sols.len(), 2);
    assert_eq!(sols.get(0, "a"), Some(&Term::double(9.0)));
}

#[test]
fn distinct_limit_offset() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT DISTINCT ?img WHERE {{ ?h noa:isDerivedFrom ?img }} ORDER BY ?img"
        ))
        .unwrap();
    assert_eq!(sols.len(), 2);
    let limited = db
        .query(&format!(
            "{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }} ORDER BY ?h LIMIT 1 OFFSET 1"
        ))
        .unwrap();
    assert_eq!(limited.len(), 1);
    assert_eq!(limited.get(0, "h"), Some(&Term::iri("http://example.org/h2")));
}

#[test]
fn ask_queries() {
    let mut db = fixture();
    let yes = db.query(&format!("{PREFIXES} ASK {{ ?h a noa:Hotspot }}")).unwrap();
    assert_eq!(yes.rows[0][0], Some(Term::boolean(true)));
    let no = db.query(&format!("{PREFIXES} ASK {{ ?h a ex:Volcano }}")).unwrap();
    assert_eq!(no.rows[0][0], Some(Term::boolean(false)));
}

#[test]
fn insert_data_update() {
    let mut db = fixture();
    let n = db
        .update(&format!(
            "{PREFIXES} INSERT DATA {{ ex:h9 a noa:Hotspot ; noa:hasConfidence 0.5 }}"
        ))
        .unwrap();
    assert_eq!(n, 2);
    let sols = db.query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }}")).unwrap();
    assert_eq!(sols.len(), 4);
}

#[test]
fn delete_data_update() {
    let mut db = fixture();
    let n = db
        .update(&format!("{PREFIXES} DELETE DATA {{ ex:h1 a noa:Hotspot }}"))
        .unwrap();
    assert_eq!(n, 1);
    let sols = db.query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }}")).unwrap();
    assert_eq!(sols.len(), 2);
}

#[test]
fn refinement_style_modify() {
    // Scenario 2: reclassify hotspots that fall outside a land polygon.
    let mut db = fixture();
    let n = db
        .update(&format!(
            "{PREFIXES} \
             DELETE {{ ?h a noa:Hotspot }} \
             INSERT {{ ?h a ex:RefutedHotspot }} \
             WHERE {{ \
               ?h a noa:Hotspot ; strdf:hasGeometry ?g . \
               FILTER(!strdf:within(?g, \"POLYGON ((20 35, 25 35, 25 40, 20 40, 20 35))\"^^strdf:WKT)) }}"
        ))
        .unwrap();
    // h3 is outside the box: one delete plus one insert.
    assert_eq!(n, 2);
    let hot = db.query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }}")).unwrap();
    assert_eq!(hot.len(), 2);
    let ref_ = db
        .query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a ex:RefutedHotspot }}"))
        .unwrap();
    assert_eq!(ref_.len(), 1);
    assert_eq!(ref_.get(0, "h"), Some(&Term::iri("http://example.org/h3")));
}

#[test]
fn delete_where_update() {
    let mut db = fixture();
    let n = db
        .update(&format!("{PREFIXES} DELETE WHERE {{ ?h noa:hasConfidence ?c }}"))
        .unwrap();
    assert_eq!(n, 3);
    let sols = db
        .query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h noa:hasConfidence ?c }}"))
        .unwrap();
    assert!(sols.is_empty());
}

#[test]
fn update_invalidates_spatial_index() {
    let mut db = fixture();
    // Prime the sidecar with a spatial query.
    let q = format!(
        "{PREFIXES} SELECT ?h WHERE {{ ?h strdf:hasGeometry ?g . \
         FILTER(strdf:intersects(?g, \"POLYGON ((22 37, 23 37, 23 38, 22 38, 22 37))\"^^strdf:WKT)) }}"
    );
    // The window intersects h1, olympia, and img1's footprint.
    assert_eq!(db.query(&q).unwrap().len(), 3);
    // Add a new feature inside the window; it must be found.
    db.update(&format!(
        "{PREFIXES} INSERT DATA {{ ex:hNew strdf:hasGeometry \"POINT (22.5 37.5)\"^^strdf:WKT }}"
    ))
    .unwrap();
    assert_eq!(db.query(&q).unwrap().len(), 4);
}

#[test]
fn template_var_not_in_where_is_error() {
    let mut db = fixture();
    let r = db.update(&format!(
        "{PREFIXES} DELETE {{ ?zzz a noa:Hotspot }} WHERE {{ ?h a noa:Hotspot }}"
    ));
    assert!(r.is_err());
}

#[test]
fn str_and_regex_builtins() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?s WHERE {{ ?s noa:isAcquiredBy ?sat . \
               FILTER(REGEX(STR(?sat), \"Meteosat9\")) }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn solutions_text_rendering() {
    let mut db = fixture();
    let sols = db
        .query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }} ORDER BY ?h LIMIT 1"))
        .unwrap();
    let text = sols.to_text();
    assert!(text.contains("?h"));
    assert!(text.contains("http://example.org/h1"));
}

#[test]
fn empty_result_shapes() {
    let mut db = fixture();
    let sols = db
        .query(&format!("{PREFIXES} SELECT ?x WHERE {{ ?x a ex:Nothing }}"))
        .unwrap();
    assert!(sols.is_empty());
    assert_eq!(sols.vars, vec!["x"]);
}

#[test]
fn repeated_variable_in_pattern() {
    let mut db = Strabon::new();
    db.load_turtle(
        "@prefix ex: <http://example.org/> .\n\
         ex:a ex:knows ex:a .\n\
         ex:a ex:knows ex:b .",
    )
    .unwrap();
    let sols = db.query("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:knows ?x }").unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "x"), Some(&Term::iri("http://example.org/a")));
}

#[test]
fn aggregates_count_per_image() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?img (COUNT(?h) AS ?n) WHERE {{ \
               ?h a noa:Hotspot ; noa:isDerivedFrom ?img }} GROUP BY ?img ORDER BY ?img"
        ))
        .unwrap();
    assert_eq!(sols.vars, vec!["img", "n"]);
    assert_eq!(sols.len(), 2);
    assert_eq!(sols.get(0, "n"), Some(&Term::int(2))); // img1: h1, h2
    assert_eq!(sols.get(1, "n"), Some(&Term::int(1))); // img2: h3
}

#[test]
fn aggregates_global_without_group() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT (COUNT(*) AS ?n) (AVG(?c) AS ?avg) (MAX(?c) AS ?hi) \
             WHERE {{ ?h a noa:Hotspot ; noa:hasConfidence ?c }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "n"), Some(&Term::int(3)));
    let avg = sols.get(0, "avg").unwrap().as_f64().unwrap();
    assert!((avg - (0.9 + 0.4 + 0.7) / 3.0).abs() < 1e-12);
    assert_eq!(sols.get(0, "hi").unwrap().as_f64(), Some(0.9));
}

#[test]
fn aggregates_sum_min() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT (SUM(?c) AS ?s) (MIN(?c) AS ?lo) WHERE {{ \
               ?h noa:hasConfidence ?c }}"
        ))
        .unwrap();
    let s = sols.get(0, "s").unwrap().as_f64().unwrap();
    assert!((s - 2.0).abs() < 1e-12);
    assert_eq!(sols.get(0, "lo").unwrap().as_f64(), Some(0.4));
}

#[test]
fn aggregate_over_empty_group_is_one_row() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT (COUNT(*) AS ?n) WHERE {{ ?x a ex:Nothing }}"
        ))
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "n"), Some(&Term::int(0)));
}

#[test]
fn spatial_aggregate_total_area() {
    let mut db = fixture();
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT (SUM(strdf:area(?g)) AS ?total) WHERE {{ \
               ?img a noa:RawImage ; strdf:hasGeometry ?g }}"
        ))
        .unwrap();
    // Two 3x3-degree footprints.
    assert_eq!(sols.get(0, "total").unwrap().as_f64(), Some(18.0));
}

#[test]
fn non_grouped_var_in_aggregate_projection_errors() {
    let mut db = fixture();
    let r = db.query(&format!(
        "{PREFIXES} SELECT ?h (COUNT(?c) AS ?n) WHERE {{ ?h noa:hasConfidence ?c }}"
    ));
    assert!(r.is_err());
}

#[test]
fn rdfs_inference_expands_type_patterns() {
    let mut db = Strabon::new();
    db.load_turtle(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix ex: <http://example.org/> .\n\
         ex:ForestFire rdfs:subClassOf ex:Fire .\n\
         ex:AgriculturalFire rdfs:subClassOf ex:Fire .\n\
         ex:Fire rdfs:subClassOf ex:Event .\n\
         ex:f1 a ex:ForestFire .\n\
         ex:f2 a ex:AgriculturalFire .\n\
         ex:f3 a ex:Fire .\n\
         ex:x1 a ex:Flood .",
    )
    .unwrap();

    // Without inference: only the directly-typed instance.
    let q = "PREFIX ex: <http://example.org/> SELECT ?f WHERE { ?f a ex:Fire }";
    assert_eq!(db.query(q).unwrap().len(), 1);

    // With inference: the subclass instances too, transitively up to Event.
    let mut cfg = db.config();
    cfg.rdfs_inference = true;
    db.set_config(cfg);
    assert_eq!(db.query(q).unwrap().len(), 3);
    let all_events =
        db.query("PREFIX ex: <http://example.org/> SELECT ?f WHERE { ?f a ex:Event }").unwrap();
    assert_eq!(all_events.len(), 3);
    // Unrelated classes are untouched.
    let floods =
        db.query("PREFIX ex: <http://example.org/> SELECT ?f WHERE { ?f a ex:Flood }").unwrap();
    assert_eq!(floods.len(), 1);
}

#[test]
fn rdfs_inference_composes_with_joins() {
    let mut db = fixture();
    // Make Hotspot a subclass of a broader Observation class and add a
    // directly-typed Observation.
    db.load_turtle(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .\n\
         @prefix ex: <http://example.org/> .\n\
         noa:Hotspot rdfs:subClassOf ex:Observation .\n\
         ex:obs1 a ex:Observation .",
    )
    .unwrap();
    let mut cfg = db.config();
    cfg.rdfs_inference = true;
    db.set_config(cfg);
    let sols = db
        .query(&format!(
            "{PREFIXES} SELECT ?o WHERE {{ ?o a ex:Observation }}"
        ))
        .unwrap();
    // 3 hotspots + 1 direct observation.
    assert_eq!(sols.len(), 4);
}

#[test]
fn temporal_period_functions() {
    let mut db = Strabon::new();
    db.load_turtle(
        "@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n\
         @prefix ex: <http://example.org/> .\n\
         ex:fire1 strdf:hasValidTime \"[2007-08-25T10:00:00Z, 2007-08-25T16:00:00Z)\"^^strdf:period .\n\
         ex:fire2 strdf:hasValidTime \"[2007-08-26T09:00:00Z, 2007-08-26T12:00:00Z)\"^^strdf:period .",
    )
    .unwrap();

    // Events overlapping the afternoon of the 25th.
    let sols = db
        .query(
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
             PREFIX ex: <http://example.org/>\n\
             SELECT ?f WHERE { ?f strdf:hasValidTime ?t .\n\
               FILTER(strdf:periodOverlaps(?t, \"[2007-08-25T14:00:00Z, 2007-08-25T20:00:00Z)\"^^strdf:period)) }",
        )
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "f"), Some(&Term::iri("http://example.org/fire1")));

    // Events active at a specific instant.
    let sols = db
        .query(
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
             SELECT ?f WHERE { ?f strdf:hasValidTime ?t .\n\
               FILTER(strdf:during(\"2007-08-26T10:30:00Z\", ?t)) }",
        )
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "f"), Some(&Term::iri("http://example.org/fire2")));

    // Projecting period bounds.
    let sols = db
        .query(
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
             SELECT ?f (strdf:periodStart(?t) AS ?s) WHERE { ?f strdf:hasValidTime ?t } ORDER BY ?s",
        )
        .unwrap();
    assert_eq!(sols.len(), 2);
    assert_eq!(
        sols.get(0, "s"),
        Some(&Term::date_time("2007-08-25T10:00:00Z"))
    );
}

#[test]
fn explain_shows_plan() {
    let mut db = fixture();
    let plan = db
        .query_plan_for_test(&format!(
            "{PREFIXES} SELECT ?h ?img WHERE {{ \
               ?h a noa:Hotspot ; strdf:hasGeometry ?g ; noa:isDerivedFrom ?img . \
               FILTER(strdf:intersects(?g, \"POLYGON ((21 36, 24 36, 24 39, 21 39, 21 36))\"^^strdf:WKT)) }}"
        ));
    assert!(plan.contains("spatial push-down: ?g restricted to"));
    assert!(plan.contains("match"));
    assert!(plan.contains("(est "));
    assert!(plan.contains("filter"));
    // With the optimizer off, patterns keep syntactic order.
    let mut cfg = db.config();
    cfg.optimize_bgp = false;
    cfg.use_spatial_index = false;
    db.set_config(cfg);
    let plan2 = db.query_plan_for_test(&format!(
        "{PREFIXES} SELECT ?h WHERE {{ ?h noa:hasConfidence ?c . ?h a noa:Hotspot }}"
    ));
    assert!(plan2.contains("spatial push-down: (none)"));
    let conf_pos = plan2.find("hasConfidence").unwrap();
    let type_pos = plan2.find("Hotspot").unwrap();
    assert!(conf_pos < type_pos, "syntactic order must be preserved:\n{plan2}");
}

trait ExplainExt {
    fn query_plan_for_test(&mut self, q: &str) -> String;
}

impl ExplainExt for Strabon {
    fn query_plan_for_test(&mut self, q: &str) -> String {
        self.explain(q).unwrap()
    }
}

#[test]
fn filter_exists_and_not_exists() {
    let mut db = fixture();
    // Hotspots whose image also has other hotspots (EXISTS with a
    // correlated pattern).
    let with_siblings = db
        .query(&format!(
            "{PREFIXES} SELECT ?h WHERE {{ \
               ?h a noa:Hotspot ; noa:isDerivedFrom ?img . \
               FILTER EXISTS {{ ?other a noa:Hotspot ; noa:isDerivedFrom ?img . \
                                FILTER(?other != ?h) }} }}"
        ))
        .unwrap();
    // h1 and h2 share img1; h3 is alone on img2.
    assert_eq!(with_siblings.len(), 2);

    // Images with no hotspots at all (NOT EXISTS).
    db.load_turtle(
        "@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .\n\
         @prefix ex: <http://example.org/> .\n\
         ex:img3 a noa:RawImage .",
    )
    .unwrap();
    let quiet = db
        .query(&format!(
            "{PREFIXES} SELECT ?img WHERE {{ \
               ?img a noa:RawImage . \
               FILTER NOT EXISTS {{ ?h noa:isDerivedFrom ?img }} }}"
        ))
        .unwrap();
    assert_eq!(quiet.len(), 1);
    assert_eq!(quiet.get(0, "img"), Some(&Term::iri("http://example.org/img3")));
}

#[test]
fn construct_derives_triples() {
    let mut db = fixture();
    // Derive a flat "dangerousFire" summary graph from high-confidence
    // hotspots and their geometry.
    let derived = db
        .construct(&format!(
            "{PREFIXES} CONSTRUCT {{ \
               ?h a ex:DangerousFire . \
               ?h ex:locatedAt ?g . \
             }} WHERE {{ \
               ?h a noa:Hotspot ; noa:hasConfidence ?c ; strdf:hasGeometry ?g . \
               FILTER(?c >= 0.7) }}"
        ))
        .unwrap();
    // Two hotspots qualify (h1: 0.9, h3: 0.7) x two template triples.
    assert_eq!(derived.len(), 4);
    // Materialize and query the derivation.
    for (s, p, o) in &derived {
        db.insert(s, p, o);
    }
    let sols = db
        .query(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a ex:DangerousFire }}"))
        .unwrap();
    assert_eq!(sols.len(), 2);
}

#[test]
fn construct_deduplicates() {
    let mut db = fixture();
    // Every hotspot maps to the same ground triple: one output.
    let derived = db
        .construct(&format!(
            "{PREFIXES} CONSTRUCT {{ ex:event a ex:FireEvent }} WHERE {{ ?h a noa:Hotspot }}"
        ))
        .unwrap();
    assert_eq!(derived.len(), 1);
}

#[test]
fn construct_rejects_unbound_template_var() {
    let mut db = fixture();
    let r = db.construct(&format!(
        "{PREFIXES} CONSTRUCT {{ ?zzz a ex:X }} WHERE {{ ?h a noa:Hotspot }}"
    ));
    assert!(r.is_err());
    // And SELECT via construct() is an error.
    assert!(db
        .construct(&format!("{PREFIXES} SELECT ?h WHERE {{ ?h a noa:Hotspot }}"))
        .is_err());
}
