//! Parallel ≡ sequential equivalence for the strabon evaluator.
//!
//! `StrabonConfig::threads = 1` runs the exact sequential code path;
//! any other thread count partitions BGP probe loops and FILTER
//! passes into ordered morsels whose outputs concatenate in morsel
//! order — so every configuration must return *bit-identical*
//! `Solutions`, row order included, under both dispatch policies.
//! Fixtures are sized past `PAR_BINDING_THRESHOLD` so the parallel
//! paths genuinely engage.

use teleios_exec::Dispatch;
use teleios_rdf::term::Term;
use teleios_strabon::eval::PAR_BINDING_THRESHOLD;
use teleios_strabon::{Solutions, Strabon, StrabonConfig};

const NOA: &str = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#";
const STRDF: &str = "http://strdf.di.uoa.gr/ontology#";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Deterministic pseudo-random stream (splitmix64), so the fixture
/// needs no RNG dependency and never flakes.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// An archive of `n` products, each with one hotspot carrying a
/// confidence and a point geometry scattered over a 4°×4° window.
/// `n` is chosen by callers to exceed [`PAR_BINDING_THRESHOLD`].
fn archive(n: usize, config: StrabonConfig) -> Strabon {
    let mut db = Strabon::with_config(config);
    let mut mix = Mix(0x7e1e_105);
    let type_p = Term::iri(RDF_TYPE);
    let geom_p = Term::iri(format!("{STRDF}hasGeometry"));
    let conf_p = Term::iri(format!("{NOA}hasConfidence"));
    let derived_p = Term::iri(format!("{NOA}isDerivedFrom"));
    let sat_p = Term::iri(format!("{NOA}isAcquiredBy"));
    let hotspot_c = Term::iri(format!("{NOA}Hotspot"));
    let image_c = Term::iri(format!("{NOA}RawImage"));
    let sat = Term::iri("http://teleios.di.uoa.gr/satellites/MSG2");
    for i in 0..n {
        let img = Term::iri(format!("http://x/img{i:05}"));
        let h = Term::iri(format!("http://x/h{i:05}"));
        db.insert(&img, &type_p, &image_c);
        // Two satellites, so the image join pattern is selective.
        if i % 3 != 0 {
            db.insert(&img, &sat_p, &sat);
        }
        db.insert(&h, &type_p, &hotspot_c);
        db.insert(&h, &derived_p, &img);
        db.insert(&h, &conf_p, &Term::double(mix.unit()));
        let x = 21.0 + mix.unit() * 4.0;
        let y = 36.0 + mix.unit() * 4.0;
        db.insert(
            &h,
            &geom_p,
            &Term::typed_literal(format!("POINT ({x:.6} {y:.6})"), format!("{STRDF}WKT")),
        );
    }
    db
}

/// The three configurations under test: exact sequential, parallel
/// static dispatch, parallel stealing dispatch.
fn configs() -> [(&'static str, StrabonConfig); 3] {
    let base = StrabonConfig::default();
    [
        ("sequential", StrabonConfig { threads: 1, ..base }),
        ("static x4", StrabonConfig { threads: 4, dispatch: Dispatch::Static, ..base }),
        ("stealing x4", StrabonConfig { threads: 4, dispatch: Dispatch::Stealing, ..base }),
    ]
}

fn run_all(n: usize, query: &str) -> Vec<(&'static str, Solutions)> {
    configs()
        .into_iter()
        .map(|(label, config)| {
            let mut db = archive(n, config);
            (label, db.query(query).expect(label))
        })
        .collect()
}

fn assert_all_equal(results: &[(&'static str, Solutions)]) {
    let (base_label, base) = &results[0];
    assert!(!base.is_empty(), "{base_label}: fixture query returned nothing");
    for (label, sols) in &results[1..] {
        assert_eq!(
            base, sols,
            "{label} diverged from {base_label} (row order is part of the contract)"
        );
    }
}

#[test]
fn bgp_join_identical_across_dispatch_policies() {
    let n = 2 * PAR_BINDING_THRESHOLD;
    let query = format!(
        "PREFIX noa: <{NOA}>\n\
         SELECT ?h ?img ?c WHERE {{\n\
           ?h a noa:Hotspot ; noa:isDerivedFrom ?img ; noa:hasConfidence ?c .\n\
           ?img noa:isAcquiredBy <http://teleios.di.uoa.gr/satellites/MSG2> .\n\
         }}"
    );
    let results = run_all(n, &query);
    // Two thirds of the images carry the satellite pattern.
    assert!(results[0].1.len() > n / 2);
    assert_all_equal(&results);
}

#[test]
fn spatial_filter_identical_across_dispatch_policies() {
    let n = 2 * PAR_BINDING_THRESHOLD;
    let query = format!(
        "PREFIX noa: <{NOA}>\nPREFIX strdf: <{STRDF}>\n\
         SELECT ?h WHERE {{\n\
           ?h a noa:Hotspot ; strdf:hasGeometry ?g .\n\
           FILTER(strdf:intersects(?g, \
            \"POLYGON ((22 37, 24 37, 24 39, 22 39, 22 37))\"^^strdf:WKT))\n\
         }}"
    );
    let results = run_all(n, &query);
    // The window covers a quarter of the scatter region.
    assert!(results[0].1.len() > n / 10);
    assert_all_equal(&results);
}

#[test]
fn value_filter_identical_across_dispatch_policies() {
    let n = 2 * PAR_BINDING_THRESHOLD;
    let query = format!(
        "PREFIX noa: <{NOA}>\n\
         SELECT ?h ?c WHERE {{\n\
           ?h a noa:Hotspot ; noa:hasConfidence ?c .\n\
           FILTER(?c > 0.5)\n\
         }}"
    );
    let results = run_all(n, &query);
    assert!(results[0].1.len() > n / 4);
    assert_all_equal(&results);
}

#[test]
fn spatial_filter_matches_with_index_disabled() {
    // The parallel FILTER pass must agree with the sequential exact
    // evaluation both with and without the R-tree pre-filter.
    let n = 2 * PAR_BINDING_THRESHOLD;
    let query = format!(
        "PREFIX noa: <{NOA}>\nPREFIX strdf: <{STRDF}>\n\
         SELECT ?h WHERE {{\n\
           ?h a noa:Hotspot ; strdf:hasGeometry ?g .\n\
           FILTER(strdf:intersects(?g, \
            \"POLYGON ((21.5 36.5, 23.5 36.5, 23.5 38.5, 21.5 38.5, 21.5 36.5))\"^^strdf:WKT))\n\
         }}"
    );
    let mut no_index_seq = archive(
        n,
        StrabonConfig { use_spatial_index: false, threads: 1, ..StrabonConfig::default() },
    );
    let expect = no_index_seq.query(&query).expect("no-index sequential");
    assert!(!expect.is_empty());
    for (label, config) in configs() {
        let mut with_index = archive(n, config);
        assert_eq!(with_index.query(&query).expect(label), expect, "{label} vs no-index");
        let mut without_index = archive(n, StrabonConfig { use_spatial_index: false, ..config });
        assert_eq!(
            without_index.query(&query).expect(label),
            expect,
            "{label} without index vs no-index sequential"
        );
    }
}
