//! stSPARQL algebra evaluation.
//!
//! Basic graph patterns evaluate as index nested-loop joins over the
//! store's SPO/POS/OSP orderings. Two optimizations are toggleable via
//! [`crate::StrabonConfig`]:
//!
//! * **BGP join ordering** — patterns are reordered greedily by
//!   estimated selectivity given the variables already bound (E4);
//! * **spatial pre-filtering** — FILTERs of the shape
//!   `strdf:pred(?g, CONST)` (or `strdf:distance(?g, CONST) < d`) first
//!   probe the R-tree sidecar for envelope candidates and run the exact
//!   geometry predicate only on survivors (E3).

use crate::ast::*;
use crate::expr::{
    eval_expression, eval_filter, order_terms, Binding, Bound, Env, VarTable,
};
use crate::ast::Query;
use crate::{Result, Solutions, Strabon};
use std::collections::{HashMap, HashSet};
use teleios_geo::Envelope;
use teleios_rdf::dictionary::TermId;
use teleios_rdf::strdf;
use teleios_rdf::term::Term;
use teleios_rdf::triple::TriplePattern;
use teleios_rdf::vocab;

/// Evaluate a parsed query against the engine.
pub fn evaluate_query(engine: &mut Strabon, query: &Query) -> Result<Solutions> {
    // Build the sidecar first so the rest can take shared borrows.
    let config = engine.config;
    let pool = engine.pool();
    engine.spatial.ensure_built_with(&engine.store, &pool);
    match query {
        Query::Select(q) => {
            let mut vars = VarTable::default();
            collect_group_vars(&q.where_clause, &mut vars);
            collect_projection_vars(&q.projection, &mut vars);
            for k in &q.order_by {
                collect_expr_vars(&k.expr, &mut vars);
            }
            let (store, spatial) = (&engine.store, &engine.spatial);
            let env = Env {
                store,
                spatial,
                vars: &vars,
                rdfs_inference: config.rdfs_inference,
                pool,
                dispatch: config.dispatch,
            };
            let seeds = vec![vars.empty_binding()];
            let mut rows = eval_group(&env, &q.where_clause, seeds, config.optimize_bgp, config.use_spatial_index);

            // ORDER BY.
            if !q.order_by.is_empty() {
                let keys: Vec<Vec<Option<Term>>> = rows
                    .iter()
                    .map(|b| {
                        q.order_by
                            .iter()
                            .map(|k| eval_expression(&env, b, &k.expr))
                            .collect()
                    })
                    .collect();
                let mut order: Vec<usize> = (0..rows.len()).collect();
                order.sort_by(|&x, &y| {
                    for (i, k) in q.order_by.iter().enumerate() {
                        let ord = order_terms(&keys[x][i], &keys[y][i]);
                        let ord = if k.desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                rows = order.into_iter().map(|i| rows[i].clone()).collect();
            }

            // Aggregation path: GROUP BY or an aggregate in the
            // projection collapses bindings into per-group rows.
            if !q.group_by.is_empty() || projection_has_aggregate(&q.projection) {
                let mut out_rows = eval_aggregation(&env, q, &rows)?;
                let out_vars = match &q.projection {
                    Projection::All => q.group_by.clone(),
                    Projection::Vars(items) => items
                        .iter()
                        .map(|i| match i {
                            ProjectionItem::Var(v) => v.clone(),
                            ProjectionItem::Expr { var, .. } => var.clone(),
                        })
                        .collect(),
                };
                if q.distinct {
                    let mut seen = HashSet::new();
                    out_rows.retain(|r| {
                        let key: Vec<String> = r
                            .iter()
                            .map(|t| t.as_ref().map_or(String::new(), |t| t.to_string()))
                            .collect();
                        seen.insert(key)
                    });
                }
                if q.offset > 0 {
                    out_rows.drain(0..q.offset.min(out_rows.len()));
                }
                if let Some(n) = q.limit {
                    out_rows.truncate(n);
                }
                return Ok(Solutions { vars: out_vars, rows: out_rows });
            }

            // Projection.
            let (out_vars, mut out_rows): (Vec<String>, Vec<Vec<Option<Term>>>) =
                match &q.projection {
                    Projection::All => {
                        let names = vars.names().to_vec();
                        let rows = rows
                            .iter()
                            .map(|b| {
                                b.iter()
                                    .map(|x| x.as_ref().map(|v| v.term(store).clone()))
                                    .collect()
                            })
                            .collect();
                        (names, rows)
                    }
                    Projection::Vars(items) => {
                        let names: Vec<String> = items
                            .iter()
                            .map(|i| match i {
                                ProjectionItem::Var(v) => v.clone(),
                                ProjectionItem::Expr { var, .. } => var.clone(),
                            })
                            .collect();
                        let rows = rows
                            .iter()
                            .map(|b| {
                                items
                                    .iter()
                                    .map(|i| match i {
                                        ProjectionItem::Var(v) => vars
                                            .get(v)
                                            .and_then(|s| b[s].as_ref())
                                            .map(|x| x.term(store).clone()),
                                        ProjectionItem::Expr { expr, .. } => {
                                            eval_expression(&env, b, expr)
                                        }
                                    })
                                    .collect()
                            })
                            .collect();
                        (names, rows)
                    }
                };

            if q.distinct {
                let mut seen = HashSet::new();
                out_rows.retain(|r| {
                    let key: Vec<String> = r
                        .iter()
                        .map(|t| t.as_ref().map_or(String::new(), |t| t.to_string()))
                        .collect();
                    seen.insert(key)
                });
            }
            if q.offset > 0 {
                out_rows.drain(0..q.offset.min(out_rows.len()));
            }
            if let Some(n) = q.limit {
                out_rows.truncate(n);
            }
            Ok(Solutions { vars: out_vars, rows: out_rows })
        }
        Query::Ask(q) => {
            let mut vars = VarTable::default();
            collect_group_vars(&q.where_clause, &mut vars);
            let (store, spatial) = (&engine.store, &engine.spatial);
            let env = Env {
                store,
                spatial,
                vars: &vars,
                rdfs_inference: config.rdfs_inference,
                pool,
                dispatch: config.dispatch,
            };
            let seeds = vec![vars.empty_binding()];
            let rows = eval_group(&env, &q.where_clause, seeds, config.optimize_bgp, config.use_spatial_index);
            Ok(Solutions {
                vars: vec!["ask".into()],
                rows: vec![vec![Some(Term::boolean(!rows.is_empty()))]],
            })
        }
        Query::Construct(_) => Err(crate::StrabonError::Eval(
            "CONSTRUCT queries go through Strabon::construct".into(),
        )),
    }
}

/// Evaluate a CONSTRUCT query: matched solutions instantiate the
/// template; duplicate triples collapse.
pub fn evaluate_construct(
    engine: &mut Strabon,
    q: &crate::ast::ConstructQuery,
) -> Result<Vec<(Term, Term, Term)>> {
    let config = engine.config;
    let pool = engine.pool();
    engine.spatial.ensure_built_with(&engine.store, &pool);
    let mut vars = VarTable::default();
    collect_group_vars(&q.where_clause, &mut vars);
    // Template-only variables would never bind; reject them up front.
    for t in &q.template {
        for v in [&t.s, &t.p, &t.o] {
            if let Some(name) = v.var() {
                if vars.get(name).is_none() {
                    return Err(crate::StrabonError::Eval(format!(
                        "template variable ?{name} is not bound by the WHERE clause"
                    )));
                }
            }
        }
    }
    let env = Env {
        store: &engine.store,
        spatial: &engine.spatial,
        vars: &vars,
        rdfs_inference: config.rdfs_inference,
        pool,
        dispatch: config.dispatch,
    };
    let seeds = vec![vars.empty_binding()];
    let rows = eval_group(&env, &q.where_clause, seeds, config.optimize_bgp, config.use_spatial_index);
    let mut out: Vec<(Term, Term, Term)> = Vec::new();
    for b in &rows {
        crate::update::instantiate(&env, b, &q.template, &mut out);
    }
    // Set semantics: CONSTRUCT produces a graph.
    out.sort();
    out.dedup();
    Ok(out)
}

const AGGREGATE_NAMES: [&str; 6] = ["COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE"];

fn expr_has_aggregate(e: &Expression) -> bool {
    match e {
        Expression::Call { name, args } => {
            AGGREGATE_NAMES.contains(&name.as_str())
                || args.iter().any(expr_has_aggregate)
        }
        Expression::Binary { left, right, .. } => {
            expr_has_aggregate(left) || expr_has_aggregate(right)
        }
        Expression::Not(e) | Expression::Neg(e) => expr_has_aggregate(e),
        _ => false,
    }
}

fn projection_has_aggregate(p: &Projection) -> bool {
    match p {
        Projection::All => false,
        Projection::Vars(items) => items.iter().any(|i| match i {
            ProjectionItem::Var(_) => false,
            ProjectionItem::Expr { expr, .. } => expr_has_aggregate(expr),
        }),
    }
}

/// Evaluate aggregation over solution bindings: group by the GROUP BY
/// variables (one global group when absent), then compute each projected
/// item per group. Non-aggregate projected items must be grouping
/// variables.
fn eval_aggregation(
    env: &Env<'_>,
    q: &SelectQuery,
    rows: &[Binding],
) -> Result<Vec<Vec<Option<Term>>>> {
    use crate::StrabonError;

    let group_slots: Vec<usize> = q
        .group_by
        .iter()
        .map(|v| {
            env.vars
                .get(v)
                .ok_or_else(|| StrabonError::Eval(format!("GROUP BY ?{v} is not bound anywhere")))
        })
        .collect::<Result<_>>()?;

    // Partition bindings by group key (input order preserved).
    let mut order: Vec<Vec<Option<Term>>> = Vec::new();
    let mut groups: Vec<Vec<&Binding>> = Vec::new();
    let mut index: HashMap<Vec<String>, usize> = HashMap::new();
    for b in rows {
        let key_terms: Vec<Option<Term>> = group_slots
            .iter()
            .map(|&s| b[s].as_ref().map(|x| x.term(env.store).clone()))
            .collect();
        let key: Vec<String> = key_terms
            .iter()
            .map(|t| t.as_ref().map_or(String::new(), |t| t.to_string()))
            .collect();
        match index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(b),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                order.push(key_terms);
                groups.push(vec![b]);
            }
        }
    }
    // A global aggregate over zero solutions still yields one row.
    if groups.is_empty() && q.group_by.is_empty() {
        order.push(Vec::new());
        groups.push(Vec::new());
    }

    let items: Vec<ProjectionItem> = match &q.projection {
        Projection::All => q.group_by.iter().map(|v| ProjectionItem::Var(v.clone())).collect(),
        Projection::Vars(items) => items.clone(),
    };

    let mut out = Vec::with_capacity(groups.len());
    for (gi, members) in groups.iter().enumerate() {
        let mut row: Vec<Option<Term>> = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                ProjectionItem::Var(v) => {
                    let pos = q.group_by.iter().position(|g| g == v).ok_or_else(|| {
                        StrabonError::Eval(format!(
                            "non-aggregated ?{v} must appear in GROUP BY"
                        ))
                    })?;
                    row.push(order[gi][pos].clone());
                }
                ProjectionItem::Expr { expr, .. } => {
                    row.push(eval_aggregate_expr(env, expr, members));
                }
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// Evaluate an expression that may contain aggregate calls over a group.
fn eval_aggregate_expr(env: &Env<'_>, expr: &Expression, group: &[&Binding]) -> Option<Term> {
    match expr {
        Expression::Call { name, args } if AGGREGATE_NAMES.contains(&name.as_str()) => {
            // Per-member argument values (unbound/error skipped, as SPARQL
            // aggregates ignore error values).
            let values: Vec<Term> = if args.is_empty() {
                // COUNT(*): every solution counts.
                return Some(Term::int(group.len() as i64));
            } else {
                group
                    .iter()
                    .filter_map(|b| eval_expression(env, b, &args[0]))
                    .collect()
            };
            match name.as_str() {
                "COUNT" => Some(Term::int(values.len() as i64)),
                "SAMPLE" => values.first().cloned(),
                "SUM" | "AVG" => {
                    let nums: Vec<f64> = values.iter().filter_map(Term::as_f64).collect();
                    if nums.is_empty() {
                        return if name == "SUM" { Some(Term::int(0)) } else { None };
                    }
                    let sum: f64 = nums.iter().sum();
                    if name == "AVG" {
                        Some(Term::double(sum / nums.len() as f64))
                    } else if values.iter().all(|t| {
                        t.datatype() == Some(vocab::xsd::INTEGER)
                    }) {
                        Some(Term::int(sum as i64))
                    } else {
                        Some(Term::double(sum))
                    }
                }
                "MIN" | "MAX" => {
                    let mut best: Option<Term> = None;
                    for v in values {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let keep_new = match order_terms(&Some(v.clone()), &Some(b.clone())) {
                                    std::cmp::Ordering::Less => name == "MIN",
                                    std::cmp::Ordering::Greater => name == "MAX",
                                    std::cmp::Ordering::Equal => false,
                                };
                                if keep_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    best
                }
                _ => None,
            }
        }
        Expression::Binary { op, left, right } => {
            // Arithmetic over aggregate results, e.g. SUM(?x) / COUNT(?x).
            let l = eval_aggregate_expr(env, left, group)?;
            let r = eval_aggregate_expr(env, right, group)?;
            let combined = Expression::Binary {
                op: *op,
                left: Box::new(Expression::Const(l)),
                right: Box::new(Expression::Const(r)),
            };
            eval_expression(env, &Vec::new(), &combined)
        }
        // Non-aggregate sub-expression: evaluate on the first member.
        other => group.first().and_then(|b| eval_expression(env, b, other)),
    }
}

/// Compute the spatial push-down candidate sets of a group's FILTERs.
pub(crate) fn group_restrictions(
    env: &Env<'_>,
    group: &GroupPattern,
    spatial_index: bool,
) -> HashMap<usize, HashSet<TermId>> {
    if !spatial_index {
        return HashMap::new();
    }
    let mut map: HashMap<usize, HashSet<TermId>> = HashMap::new();
    for el in &group.elements {
        if let PatternElement::Filter(f) = el {
            if let Some((slot, set)) = spatial_prefilter(env, f) {
                match map.entry(slot) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let merged: HashSet<TermId> =
                            e.get().intersection(&set).copied().collect();
                        e.insert(merged);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(set);
                    }
                }
            }
        }
    }
    map
}

/// Render the evaluation plan of a SELECT/ASK query: the spatial
/// push-down candidate sets and the chosen BGP pattern order with the
/// optimizer's selectivity estimates.
pub fn explain_query(engine: &mut Strabon, query: &Query) -> Result<String> {
    let config = engine.config;
    let pool = engine.pool();
    engine.spatial.ensure_built_with(&engine.store, &pool);
    let where_clause = match query {
        Query::Select(q) => &q.where_clause,
        Query::Ask(q) => &q.where_clause,
        Query::Construct(q) => &q.where_clause,
    };
    let mut vars = VarTable::default();
    collect_group_vars(where_clause, &mut vars);
    if let Query::Select(q) = query {
        collect_projection_vars(&q.projection, &mut vars);
    }
    let env = Env {
        store: &engine.store,
        spatial: &engine.spatial,
        vars: &vars,
        rdfs_inference: config.rdfs_inference,
        pool,
        dispatch: config.dispatch,
    };
    let restrictions = group_restrictions(env_ref(&env), where_clause, config.use_spatial_index);

    let mut out = String::new();
    out.push_str(&format!(
        "config: optimize_bgp={}, use_spatial_index={}, rdfs_inference={}\n",
        config.optimize_bgp, config.use_spatial_index, config.rdfs_inference
    ));
    if restrictions.is_empty() {
        out.push_str("spatial push-down: (none)\n");
    } else {
        for (slot, set) in &restrictions {
            let name = vars.names().get(*slot).cloned().unwrap_or_default();
            out.push_str(&format!(
                "spatial push-down: ?{name} restricted to {} envelope candidate(s)\n",
                set.len()
            ));
        }
    }

    // Walk the group, rendering each BGP run's chosen order.
    let mut bgp: Vec<&PatternTriple> = Vec::new();
    let mut step = 1usize;
    let flush = |bgp: &mut Vec<&PatternTriple>, out: &mut String, step: &mut usize| {
        if bgp.is_empty() {
            return;
        }
        let order: Vec<usize> = plan_order(env_ref(&env), bgp, config.optimize_bgp, &restrictions);
        let mut bound: HashSet<usize> = HashSet::new();
        for &pi in &order {
            let est = estimate_pattern(env_ref(&env), bgp[pi], &bound, &restrictions);
            out.push_str(&format!(
                "{:>3}. match {} (est {})\n",
                step,
                render_pattern(bgp[pi]),
                est
            ));
            for v in [&bgp[pi].s, &bgp[pi].p, &bgp[pi].o] {
                if let Some(name) = v.var() {
                    if let Some(slot) = vars.get(name) {
                        bound.insert(slot);
                    }
                }
            }
            *step += 1;
        }
        bgp.clear();
    };
    for el in &where_clause.elements {
        match el {
            PatternElement::Triple(t) => bgp.push(t),
            PatternElement::Filter(_) => {
                flush(&mut bgp, &mut out, &mut step);
                out.push_str(&format!("{:>3}. filter\n", step));
                step += 1;
            }
            other => {
                flush(&mut bgp, &mut out, &mut step);
                let kind = match other {
                    PatternElement::Optional(_) => "optional group",
                    PatternElement::Union(_) => "union",
                    PatternElement::Minus(_) => "minus group",
                    PatternElement::Bind { .. } => "bind",
                    PatternElement::FilterExists { negated: false, .. } => "filter exists",
                    PatternElement::FilterExists { negated: true, .. } => "filter not exists",
                    _ => "group",
                };
                out.push_str(&format!("{:>3}. {kind}\n", step));
                step += 1;
            }
        }
    }
    flush(&mut bgp, &mut out, &mut step);
    Ok(out)
}

// `Env` is not `Copy`; this keeps the closure captures readable.
fn env_ref<'a, 'b>(env: &'b Env<'a>) -> &'b Env<'a> {
    env
}

/// The greedy order the evaluator would choose for a BGP.
fn plan_order(
    env: &Env<'_>,
    patterns: &[&PatternTriple],
    optimize: bool,
    restrictions: &HashMap<usize, HashSet<TermId>>,
) -> Vec<usize> {
    if !optimize {
        return (0..patterns.len()).collect();
    }
    let mut bound: HashSet<usize> = HashSet::new();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    while !remaining.is_empty() {
        let Some((pick_pos, _)) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &pi)| estimate_pattern(env, patterns[pi], &bound, restrictions))
        else {
            break; // unreachable: the loop guard keeps `remaining` non-empty
        };
        let pi = remaining.remove(pick_pos);
        for v in [&patterns[pi].s, &patterns[pi].p, &patterns[pi].o] {
            if let Some(name) = v.var() {
                if let Some(slot) = env.vars.get(name) {
                    bound.insert(slot);
                }
            }
        }
        order.push(pi);
    }
    order
}

fn render_pattern(p: &PatternTriple) -> String {
    let part = |v: &VarOrTerm| match v {
        VarOrTerm::Var(name) => format!("?{name}"),
        VarOrTerm::Term(t) => t.to_string(),
    };
    format!("{} {} {}", part(&p.s), part(&p.p), part(&p.o))
}

/// Evaluate a group pattern: BGP runs accumulate and flush, filters and
/// other elements apply in order.
pub fn eval_group(
    env: &Env<'_>,
    group: &GroupPattern,
    seeds: Vec<Binding>,
    optimize: bool,
    spatial_index: bool,
) -> Vec<Binding> {
    // Spatial-filter push-down: FILTERs of this group whose shape the
    // R-tree sidecar understands yield per-variable candidate id sets;
    // the BGP evaluator uses them to restrict index matching, so
    // geometry bindings that cannot satisfy the filter are never
    // enumerated (Strabon's "push the spatial predicate into the scan").
    let restrictions = group_restrictions(env, group, spatial_index);

    let mut bindings = seeds;
    let mut bgp: Vec<&PatternTriple> = Vec::new();
    for el in &group.elements {
        if let PatternElement::Triple(t) = el {
            bgp.push(t);
            continue;
        }
        if !bgp.is_empty() {
            bindings = eval_bgp(env, &bgp, bindings, optimize, &restrictions);
            bgp.clear();
        }
        match el {
            PatternElement::Triple(_) => unreachable!(),
            PatternElement::Filter(f) => {
                bindings = apply_filter(env, f, bindings, spatial_index);
            }
            PatternElement::Optional(inner) => {
                let mut next = Vec::with_capacity(bindings.len());
                for b in bindings {
                    let extended =
                        eval_group(env, inner, vec![b.clone()], optimize, spatial_index);
                    if extended.is_empty() {
                        next.push(b);
                    } else {
                        next.extend(extended);
                    }
                }
                bindings = next;
            }
            PatternElement::Union(branches) => {
                let mut next = Vec::new();
                for br in branches {
                    next.extend(eval_group(env, br, bindings.clone(), optimize, spatial_index));
                }
                bindings = next;
            }
            PatternElement::Minus(inner) => {
                // Keep bindings that share no variable with the MINUS
                // pattern (SPARQL compatibility rule), drop those for
                // which the seeded pattern has a solution.
                let mut inner_vars = VarTable::default();
                collect_group_vars(inner, &mut inner_vars);
                bindings.retain(|b| {
                    let shares_var = inner_vars
                        .names()
                        .iter()
                        .any(|v| env.vars.get(v).is_some_and(|s| b[s].is_some()));
                    if !shares_var {
                        return true;
                    }
                    eval_group(env, inner, vec![b.clone()], optimize, spatial_index).is_empty()
                });
            }
            PatternElement::Bind { expr, var } => {
                // The variable was registered during var collection; a
                // miss means the binding has nowhere to land.
                if let Some(slot) = env.vars.get(var) {
                    for b in &mut bindings {
                        let v = eval_expression(env, b, expr);
                        b[slot] = v.map(Bound::Computed);
                    }
                }
            }
            PatternElement::FilterExists { group: inner, negated } => {
                bindings.retain(|b| {
                    let found =
                        !eval_group(env, inner, vec![b.clone()], optimize, spatial_index)
                            .is_empty();
                    found != *negated
                });
            }
        }
    }
    if !bgp.is_empty() {
        bindings = eval_bgp(env, &bgp, bindings, optimize, &restrictions);
    }
    bindings
}

/// Evaluate a BGP against seed bindings with index nested-loop joins.
fn eval_bgp(
    env: &Env<'_>,
    patterns: &[&PatternTriple],
    seeds: Vec<Binding>,
    optimize: bool,
    restrictions: &HashMap<usize, HashSet<TermId>>,
) -> Vec<Binding> {
    if seeds.is_empty() {
        return seeds;
    }
    // Determine evaluation order.
    let order: Vec<usize> = if optimize {
        // Greedy: repeatedly take the pattern with the smallest estimate
        // given the variables bound so far.
        let mut bound: HashSet<usize> = HashSet::new();
        // Variables bound in the seeds (use the first seed's shape; all
        // seeds of a group share it).
        for (slot, v) in seeds[0].iter().enumerate() {
            if v.is_some() {
                bound.insert(slot);
            }
        }
        let mut remaining: Vec<usize> = (0..patterns.len()).collect();
        let mut order = Vec::with_capacity(patterns.len());
        while !remaining.is_empty() {
            let Some((pick_pos, _)) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &pi)| estimate_pattern(env, patterns[pi], &bound, restrictions))
            else {
                break; // unreachable: the loop guard keeps `remaining` non-empty
            };
            let pi = remaining.remove(pick_pos);
            for v in [&patterns[pi].s, &patterns[pi].p, &patterns[pi].o] {
                if let Some(name) = v.var() {
                    if let Some(slot) = env.vars.get(name) {
                        bound.insert(slot);
                    }
                }
            }
            order.push(pi);
        }
        order
    } else {
        (0..patterns.len()).collect()
    };

    let mut results = seeds;
    for &pi in &order {
        results = probe_pattern(env, patterns[pi], results, restrictions);
        if results.is_empty() {
            break;
        }
    }
    results
}

/// Binding count below which BGP probing and FILTER evaluation stay
/// sequential: under this size the join itself is cheaper than task
/// setup. Public so the parallel-equivalence tests can size their
/// data to cross it.
pub const PAR_BINDING_THRESHOLD: usize = 256;

/// Morsels per worker for the parallel probe/filter paths: finer than
/// one-per-worker so the stealing scheduler has slack to rebalance
/// when some bindings fan out much harder than others.
const MORSELS_PER_WORKER: usize = 4;

/// One join step: extend every seed binding with the matches of
/// `pat`. Above [`PAR_BINDING_THRESHOLD`] the probe runs morsel-
/// parallel over the seed side — per-morsel outputs concatenate in
/// morsel order, reproducing the sequential scan exactly (the pool's
/// determinism contract), so results are identical at every thread
/// count and dispatch policy.
fn probe_pattern(
    env: &Env<'_>,
    pat: &PatternTriple,
    results: Vec<Binding>,
    restrictions: &HashMap<usize, HashSet<TermId>>,
) -> Vec<Binding> {
    if env.pool.threads() <= 1 || results.len() < PAR_BINDING_THRESHOLD {
        let mut next = Vec::with_capacity(results.len());
        for b in &results {
            extend_with_pattern(env, pat, b, restrictions, &mut next);
        }
        return next;
    }
    let results = &results;
    let tasks: Vec<_> = teleios_exec::morsels(
        results.len(),
        env.pool.threads() * MORSELS_PER_WORKER,
    )
    .into_iter()
    .map(|r| {
        move || {
            let mut out = Vec::new();
            for b in &results[r] {
                extend_with_pattern(env, pat, b, restrictions, &mut out);
            }
            out
        }
    })
    .collect();
    env.pool.run_with(env.dispatch, tasks).into_iter().flatten().collect()
}

/// Estimated cost of a pattern given currently bound variable slots.
///
/// Constant positions use exact index counts; positions bound by
/// variables (whose runtime value is unknown at planning time) discount
/// the constant-only estimate, since each binding restricts the range.
fn estimate_pattern(
    env: &Env<'_>,
    pat: &PatternTriple,
    bound: &HashSet<usize>,
    restrictions: &HashMap<usize, HashSet<TermId>>,
) -> usize {
    let mut dead = false;
    let const_id = |v: &VarOrTerm, dead: &mut bool| match v {
        VarOrTerm::Term(t) => match env.store.id_of(t) {
            Some(id) => Some(id),
            None => {
                // A constant absent from the dictionary matches nothing.
                *dead = true;
                None
            }
        },
        VarOrTerm::Var(_) => None,
    };
    let tp = TriplePattern {
        s: const_id(&pat.s, &mut dead),
        p: const_id(&pat.p, &mut dead),
        o: const_id(&pat.o, &mut dead),
    };
    if dead {
        return 0;
    }
    let mut est = env.store.estimate_pattern(&tp);
    // A spatial push-down restriction on an open variable caps the
    // matches the pattern can produce.
    for v in [&pat.s, &pat.p, &pat.o] {
        if let VarOrTerm::Var(name) = v {
            if let Some(slot) = env.vars.get(name) {
                if !bound.contains(&slot) {
                    if let Some(c) = restrictions.get(&slot) {
                        est = est.min(c.len());
                    }
                }
            }
        }
    }
    let var_bound = |v: &VarOrTerm| match v {
        VarOrTerm::Term(_) => false,
        VarOrTerm::Var(name) => env.vars.get(name).is_some_and(|s| bound.contains(&s)),
    };
    for v in [&pat.s, &pat.p, &pat.o] {
        if var_bound(v) {
            est = est / 8 + 1;
        }
    }
    est
}

/// Match one pattern under a binding, pushing extended bindings.
///
/// `restrictions` holds per-slot candidate id sets from the spatial
/// push-down: open variables with a restriction only bind to members of
/// their set, and when the set is smaller than the pattern's match count
/// the matching is *driven from the candidates* (point lookups on the
/// OSP/SPO indexes instead of a range scan).
fn extend_with_pattern(
    env: &Env<'_>,
    pat: &PatternTriple,
    binding: &Binding,
    restrictions: &HashMap<usize, HashSet<TermId>>,
    out: &mut Vec<Binding>,
) {
    // Resolve each position to either a concrete id or an open slot.
    enum Pos {
        Const(TermId),
        OpenVar(usize),
        /// Constant not in the dictionary: cannot match.
        Dead,
    }
    let resolve = |v: &VarOrTerm| -> Pos {
        match v {
            VarOrTerm::Term(t) => match env.store.id_of(t) {
                Some(id) => Pos::Const(id),
                None => Pos::Dead,
            },
            VarOrTerm::Var(name) => {
                // Unregistered variables (never produced by the
                // collector) can never match anything.
                let Some(slot) = env.vars.get(name) else {
                    return Pos::Dead;
                };
                match &binding[slot] {
                    Some(Bound::Id(id)) => Pos::Const(*id),
                    Some(Bound::Computed(t)) => match env.store.id_of(t) {
                        Some(id) => Pos::Const(id),
                        None => Pos::Dead,
                    },
                    None => Pos::OpenVar(slot),
                }
            }
        }
    };
    let (s, p, o) = (resolve(&pat.s), resolve(&pat.p), resolve(&pat.o));
    if matches!(s, Pos::Dead) || matches!(p, Pos::Dead) || matches!(o, Pos::Dead) {
        return;
    }
    let as_const = |p: &Pos| match p {
        Pos::Const(id) => Some(*id),
        _ => None,
    };
    let tp = TriplePattern::new(as_const(&s), as_const(&p), as_const(&o));

    let emit = |t: teleios_rdf::triple::Triple, out: &mut Vec<Binding>| {
        let mut nb = binding.clone();
        let mut ok = true;
        let bind = |pos: &Pos, value: TermId, nb: &mut Binding, ok: &mut bool| {
            if let Pos::OpenVar(slot) = pos {
                if restrictions.get(slot).is_some_and(|c| !c.contains(&value)) {
                    *ok = false;
                    return;
                }
                match &nb[*slot] {
                    None => nb[*slot] = Some(Bound::Id(value)),
                    Some(Bound::Id(existing)) if *existing == value => {}
                    _ => *ok = false,
                }
            }
        };
        bind(&s, t.s, &mut nb, &mut ok);
        bind(&p, t.p, &mut nb, &mut ok);
        bind(&o, t.o, &mut nb, &mut ok);
        if ok {
            out.push(nb);
        }
    };

    // RDFS inference: `?x rdf:type C` also matches instances of C's
    // subclasses (reflexive-transitive rdfs:subClassOf closure).
    if env.rdfs_inference {
        if let (Pos::Const(p_id), Pos::Const(class_id)) = (&p, &o) {
            let is_type = env
                .store
                .id_of(&teleios_rdf::term::Term::iri(vocab::rdf::TYPE))
                == Some(*p_id);
            if is_type {
                for class in subclass_closure(env.store, *class_id) {
                    let tp = TriplePattern::new(as_const(&s), Some(*p_id), Some(class));
                    for t in env.store.match_pattern(&tp) {
                        emit(t, out);
                    }
                }
                return;
            }
        }
    }

    // Candidate-driven matching: when the object slot carries a small
    // restriction set, probe per candidate instead of scanning the range.
    if let Pos::OpenVar(slot) = o {
        if let Some(cands) = restrictions.get(&slot) {
            if cands.len() < env.store.estimate_pattern(&tp) {
                // Probe in id order, not HashSet order: iteration order
                // of the set is RandomState-seeded per instance, and
                // row order is part of the determinism contract.
                let mut ordered: Vec<TermId> = cands.iter().copied().collect();
                ordered.sort_unstable();
                for cid in ordered {
                    let probe = TriplePattern::new(tp.s, tp.p, Some(cid));
                    for t in env.store.match_pattern(&probe) {
                        emit(t, out);
                    }
                }
                return;
            }
        }
    }

    for t in env.store.match_pattern(&tp) {
        emit(t, out);
    }
}

/// Reflexive-transitive subclass closure of a class id via the
/// `rdfs:subClassOf` triples in the store (downward: all subclasses).
fn subclass_closure(
    store: &teleios_rdf::store::TripleStore,
    class: TermId,
) -> Vec<TermId> {
    let Some(sub_p) = store.id_of(&teleios_rdf::term::Term::iri(vocab::rdfs::SUB_CLASS_OF))
    else {
        return vec![class];
    };
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![class];
    let mut out = Vec::new();
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        out.push(c);
        // Subclasses of c: (?sub, rdfs:subClassOf, c).
        for t in store.match_pattern(&TriplePattern::new(None, Some(sub_p), Some(c))) {
            stack.push(t.s);
        }
    }
    out
}

/// Apply a FILTER, using the spatial sidecar to pre-filter when
/// possible. The exact predicate pass (geometry intersections,
/// arithmetic) runs morsel-parallel above [`PAR_BINDING_THRESHOLD`];
/// the envelope pre-filter stays sequential — it is hash probes, far
/// cheaper than the task setup it would amortize.
fn apply_filter(
    env: &Env<'_>,
    filter: &Expression,
    mut bindings: Vec<Binding>,
    spatial_index: bool,
) -> Vec<Binding> {
    if spatial_index {
        if let Some((var_slot, candidates)) = spatial_prefilter(env, filter) {
            bindings.retain(|b| match &b[var_slot] {
                Some(Bound::Id(id)) => candidates.contains(id),
                // Computed geometries skip the index and go to exact eval.
                _ => true,
            });
        }
    }
    if env.pool.threads() <= 1 || bindings.len() < PAR_BINDING_THRESHOLD {
        bindings.retain(|b| eval_filter(env, b, filter));
        return bindings;
    }
    // Morsel-order concatenation of the survivors reproduces the
    // sequential retain exactly.
    let bindings_ref = &bindings;
    let tasks: Vec<_> = teleios_exec::morsels(
        bindings.len(),
        env.pool.threads() * MORSELS_PER_WORKER,
    )
    .into_iter()
    .map(|r| {
        move || {
            bindings_ref[r]
                .iter()
                .filter(|b| eval_filter(env, b, filter))
                .cloned()
                .collect::<Vec<Binding>>()
        }
    })
    .collect();
    env.pool.run_with(env.dispatch, tasks).into_iter().flatten().collect()
}

/// Recognize `strdf:pred(?v, CONST)` / `strdf:distance(?v, CONST) < d`
/// shapes and compute the envelope-candidate id set.
fn spatial_prefilter(
    env: &Env<'_>,
    filter: &Expression,
) -> Option<(usize, HashSet<TermId>)> {
    // Envelope-intersection is a necessary condition for these predicates.
    const ENVELOPE_PREDICATES: &[&str] =
        &["intersects", "within", "contains", "touches", "equals", "sfIntersects", "sfWithin", "sfContains"];

    fn const_geometry(e: &Expression) -> Option<Envelope> {
        if let Expression::Const(t) = e {
            if let Ok((g, _)) = strdf::parse_geometry(t) {
                return Some(g.envelope());
            }
        }
        None
    }

    match filter {
        Expression::Call { name, args } if args.len() == 2 => {
            let local = name.strip_prefix(vocab::strdf::NS).or_else(|| {
                name.strip_prefix("http://www.opengis.net/def/function/geosparql/")
            })?;
            if !ENVELOPE_PREDICATES.contains(&local) {
                return None;
            }
            let (var, env_box) = match (&args[0], &args[1]) {
                (Expression::Var(v), c) => (v, const_geometry(c)?),
                (c, Expression::Var(v)) => (v, const_geometry(c)?),
                _ => return None,
            };
            let slot = env.vars.get(var)?;
            Some((slot, env.spatial.candidates(&env_box)))
        }
        // distance(?v, CONST) < d   or   d > distance(?v, CONST)
        Expression::Binary { op, left, right } => {
            let (call, bound_expr, strict_less) = match op {
                BinaryOp::Lt | BinaryOp::Le => (left, right, true),
                BinaryOp::Gt | BinaryOp::Ge => (right, left, true),
                _ => return None,
            };
            let _ = strict_less;
            let Expression::Call { name, args } = &**call else {
                return None;
            };
            let local = name.strip_prefix(vocab::strdf::NS).or_else(|| {
                name.strip_prefix("http://www.opengis.net/def/function/geosparql/")
            })?;
            if local != "distance" || args.len() != 2 {
                return None;
            }
            let Expression::Const(d_term) = &**bound_expr else {
                return None;
            };
            let d = d_term.as_f64()?;
            let (var, env_box) = match (&args[0], &args[1]) {
                (Expression::Var(v), c) => (v, const_geometry(c)?),
                (c, Expression::Var(v)) => (v, const_geometry(c)?),
                _ => return None,
            };
            let slot = env.vars.get(var)?;
            Some((slot, env.spatial.candidates(&env_box.buffer(d))))
        }
        _ => None,
    }
}

// --- variable collection ----------------------------------------------

fn collect_projection_vars(p: &Projection, vars: &mut VarTable) {
    if let Projection::Vars(items) = p {
        for i in items {
            match i {
                ProjectionItem::Var(v) => {
                    vars.slot(v);
                }
                ProjectionItem::Expr { expr, var } => {
                    collect_expr_vars(expr, vars);
                    vars.slot(var);
                }
            }
        }
    }
}

pub(crate) fn collect_group_vars(g: &GroupPattern, vars: &mut VarTable) {
    for el in &g.elements {
        match el {
            PatternElement::Triple(t) => {
                for v in [&t.s, &t.p, &t.o] {
                    if let Some(name) = v.var() {
                        vars.slot(name);
                    }
                }
            }
            PatternElement::Filter(e) => collect_expr_vars(e, vars),
            PatternElement::Optional(inner)
            | PatternElement::Minus(inner)
            | PatternElement::FilterExists { group: inner, .. } => {
                collect_group_vars(inner, vars)
            }
            PatternElement::Union(branches) => {
                for b in branches {
                    collect_group_vars(b, vars);
                }
            }
            PatternElement::Bind { expr, var } => {
                collect_expr_vars(expr, vars);
                vars.slot(var);
            }
        }
    }
}

fn collect_expr_vars(e: &Expression, vars: &mut VarTable) {
    match e {
        Expression::Var(v) => {
            vars.slot(v);
        }
        Expression::Const(_) => {}
        Expression::Not(e) | Expression::Neg(e) => collect_expr_vars(e, vars),
        Expression::Binary { left, right, .. } => {
            collect_expr_vars(left, vars);
            collect_expr_vars(right, vars);
        }
        Expression::Call { args, .. } => {
            for a in args {
                collect_expr_vars(a, vars);
            }
        }
    }
}


