//! stSPARQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Tok, Token};
use crate::{Result, StrabonError};
use std::collections::HashMap;
use teleios_rdf::term::Term;
use teleios_rdf::vocab;

/// Parse a SELECT or ASK query.
pub fn parse_query(text: &str) -> Result<Query> {
    let mut p = Parser::new(text)?;
    p.parse_prologue()?;
    let q = if p.accept_word("SELECT") {
        Query::Select(p.parse_select_body()?)
    } else if p.accept_word("ASK") {
        let where_clause = p.parse_group()?;
        Query::Ask(AskQuery { where_clause })
    } else if p.accept_word("CONSTRUCT") {
        let template = p.parse_template()?;
        p.expect_word("WHERE")?;
        let where_clause = p.parse_group()?;
        Query::Construct(ConstructQuery { template, where_clause })
    } else {
        return Err(p.err("expected SELECT, ASK or CONSTRUCT"));
    };
    p.expect_eof()?;
    Ok(q)
}

/// Parse an update request.
pub fn parse_update(text: &str) -> Result<Update> {
    let mut p = Parser::new(text)?;
    p.parse_prologue()?;
    let u = p.parse_update_body()?;
    p.expect_eof()?;
    Ok(u)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn new(text: &str) -> Result<Parser> {
        let mut prefixes = HashMap::new();
        // Well-known prefixes are always available.
        prefixes.insert("rdf".into(), vocab::rdf::NS.to_string());
        prefixes.insert("rdfs".into(), vocab::rdfs::NS.to_string());
        prefixes.insert("xsd".into(), vocab::xsd::NS.to_string());
        prefixes.insert("strdf".into(), vocab::strdf::NS.to_string());
        Ok(Parser { tokens: tokenize(text)?, pos: 0, prefixes })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> StrabonError {
        StrabonError::Parse { position: self.tokens[self.pos].pos, message: msg.into() }
    }

    fn accept_word(&mut self, w: &str) -> bool {
        if let Tok::Word(s) = self.peek() {
            if s.eq_ignore_ascii_case(w) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, w: &str) -> Result<()> {
        if self.accept_word(w) {
            Ok(())
        } else {
            Err(self.err(format!("expected {w}")))
        }
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Tok::Word(s) if s.eq_ignore_ascii_case(w))
    }

    fn accept_tok(&mut self, t: Tok) -> bool {
        if self.peek() == &t {
            self.advance();
            return true;
        }
        false
    }

    fn expect_tok(&mut self, t: Tok) -> Result<()> {
        if self.accept_tok(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    fn parse_prologue(&mut self) -> Result<()> {
        while self.peek_word("PREFIX") {
            self.advance();
            let Tok::PName(prefix, local) = self.advance() else {
                return Err(self.err("expected prefix name after PREFIX"));
            };
            if !local.is_empty() {
                return Err(self.err("malformed PREFIX declaration"));
            }
            let Tok::Iri(iri) = self.advance() else {
                return Err(self.err("expected IRI in PREFIX declaration"));
            };
            self.prefixes.insert(prefix, iri);
        }
        Ok(())
    }

    fn resolve(&self, prefix: &str, local: &str) -> Result<String> {
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| StrabonError::UnknownPrefix(prefix.to_string()))?;
        Ok(format!("{ns}{local}"))
    }

    fn parse_select_body(&mut self) -> Result<SelectQuery> {
        let distinct = self.accept_word("DISTINCT");
        let projection = if self.accept_tok(Tok::Star) {
            Projection::All
        } else {
            let mut items = Vec::new();
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.advance();
                        items.push(ProjectionItem::Var(v));
                    }
                    Tok::LParen => {
                        self.advance();
                        let expr = self.parse_expression()?;
                        self.expect_word("AS")?;
                        let Tok::Var(v) = self.advance() else {
                            return Err(self.err("expected variable after AS"));
                        };
                        self.expect_tok(Tok::RParen)?;
                        items.push(ProjectionItem::Expr { expr, var: v });
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.err("empty SELECT projection"));
            }
            Projection::Vars(items)
        };
        self.expect_word("WHERE")?;
        let where_clause = self.parse_group()?;
        let mut group_by = Vec::new();
        if self.accept_word("GROUP") {
            self.expect_word("BY")?;
            while let Tok::Var(v) = self.peek().clone() {
                self.advance();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY expects at least one variable"));
            }
        }
        let mut order_by = Vec::new();
        if self.accept_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                if self.accept_word("DESC") {
                    self.expect_tok(Tok::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_tok(Tok::RParen)?;
                    order_by.push(OrderKey { expr, desc: true });
                } else if self.accept_word("ASC") {
                    self.expect_tok(Tok::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_tok(Tok::RParen)?;
                    order_by.push(OrderKey { expr, desc: false });
                } else if matches!(self.peek(), Tok::Var(_)) {
                    let Tok::Var(v) = self.advance() else { unreachable!() };
                    order_by.push(OrderKey { expr: Expression::Var(v), desc: false });
                } else {
                    break;
                }
                if !matches!(self.peek(), Tok::Var(_)) && !self.peek_word("DESC") && !self.peek_word("ASC") {
                    break;
                }
            }
            if order_by.is_empty() {
                return Err(self.err("empty ORDER BY"));
            }
        }
        let mut limit = None;
        let mut offset = 0usize;
        loop {
            if self.accept_word("LIMIT") {
                let Tok::Int(n) = self.advance() else {
                    return Err(self.err("LIMIT expects an integer"));
                };
                if n < 0 {
                    return Err(self.err("LIMIT must be non-negative"));
                }
                limit = Some(n as usize);
            } else if self.accept_word("OFFSET") {
                let Tok::Int(n) = self.advance() else {
                    return Err(self.err("OFFSET expects an integer"));
                };
                if n < 0 {
                    return Err(self.err("OFFSET must be non-negative"));
                }
                offset = n as usize;
            } else {
                break;
            }
        }
        Ok(SelectQuery { distinct, projection, where_clause, group_by, order_by, limit, offset })
    }

    fn parse_group(&mut self) -> Result<GroupPattern> {
        self.expect_tok(Tok::LBrace)?;
        let mut elements = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.advance();
                    break;
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.advance();
                    // FILTER [NOT] EXISTS { ... } is pattern-level.
                    if self.peek_word("EXISTS") {
                        self.advance();
                        let group = self.parse_group()?;
                        elements.push(PatternElement::FilterExists { group, negated: false });
                        continue;
                    }
                    if self.peek_word("NOT") {
                        let save = self.pos;
                        self.advance();
                        if self.accept_word("EXISTS") {
                            let group = self.parse_group()?;
                            elements
                                .push(PatternElement::FilterExists { group, negated: true });
                            continue;
                        }
                        self.pos = save;
                    }
                    self.expect_tok(Tok::LParen)?;
                    let e = self.parse_expression()?;
                    self.expect_tok(Tok::RParen)?;
                    elements.push(PatternElement::Filter(e));
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.advance();
                    elements.push(PatternElement::Optional(self.parse_group()?));
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("MINUS") => {
                    self.advance();
                    elements.push(PatternElement::Minus(self.parse_group()?));
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("BIND") => {
                    self.advance();
                    self.expect_tok(Tok::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_word("AS")?;
                    let Tok::Var(v) = self.advance() else {
                        return Err(self.err("expected variable after AS"));
                    };
                    self.expect_tok(Tok::RParen)?;
                    elements.push(PatternElement::Bind { expr, var: v });
                }
                Tok::LBrace => {
                    // Group, possibly a UNION chain.
                    let first = self.parse_group()?;
                    if self.peek_word("UNION") {
                        let mut branches = vec![first];
                        while self.accept_word("UNION") {
                            branches.push(self.parse_group()?);
                        }
                        elements.push(PatternElement::Union(branches));
                    } else {
                        // Inline the nested group.
                        elements.extend(first.elements);
                    }
                }
                Tok::Dot => {
                    self.advance();
                }
                _ => {
                    // Triple pattern with `;` and `,` continuation.
                    let s = self.parse_var_or_term()?;
                    loop {
                        let p = self.parse_predicate()?;
                        loop {
                            let o = self.parse_var_or_term()?;
                            elements.push(PatternElement::Triple(PatternTriple {
                                s: s.clone(),
                                p: p.clone(),
                                o,
                            }));
                            if !self.accept_tok(Tok::Comma) {
                                break;
                            }
                        }
                        if !self.accept_tok(Tok::Semicolon) {
                            break;
                        }
                        // A dangling semicolon before `.` or `}` is legal.
                        if matches!(self.peek(), Tok::Dot | Tok::RBrace) {
                            break;
                        }
                    }
                    // Optional statement dot.
                    self.accept_tok(Tok::Dot);
                }
            }
        }
        Ok(GroupPattern { elements })
    }

    fn parse_predicate(&mut self) -> Result<VarOrTerm> {
        if let Tok::Word(w) = self.peek() {
            if w == "a" {
                self.advance();
                return Ok(VarOrTerm::Term(Term::iri(vocab::rdf::TYPE)));
            }
        }
        self.parse_var_or_term()
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrTerm> {
        match self.advance() {
            Tok::Var(v) => Ok(VarOrTerm::Var(v)),
            Tok::Iri(iri) => Ok(VarOrTerm::Term(Term::iri(iri))),
            Tok::PName(p, l) => Ok(VarOrTerm::Term(Term::iri(self.resolve(&p, &l)?))),
            Tok::Str(s) => Ok(VarOrTerm::Term(self.finish_literal(s)?)),
            Tok::Int(i) => Ok(VarOrTerm::Term(Term::int(i))),
            Tok::Num(n) => Ok(VarOrTerm::Term(Term::double(n))),
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => Ok(VarOrTerm::Term(Term::boolean(true))),
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(VarOrTerm::Term(Term::boolean(false)))
            }
            other => Err(self.err(format!("expected variable or term, found {other:?}"))),
        }
    }

    /// After a string token, consume an optional `^^datatype` or `@lang`.
    fn finish_literal(&mut self, lexical: String) -> Result<Term> {
        if self.accept_tok(Tok::DtSep) {
            let dt = match self.advance() {
                Tok::Iri(iri) => iri,
                Tok::PName(p, l) => self.resolve(&p, &l)?,
                other => return Err(self.err(format!("expected datatype IRI, found {other:?}"))),
            };
            return Ok(Term::typed_literal(lexical, dt));
        }
        if let Tok::LangTag(lang) = self.peek().clone() {
            self.advance();
            return Ok(Term::lang_literal(lexical, lang));
        }
        Ok(Term::literal(lexical))
    }

    // --- expressions -------------------------------------------------

    fn parse_expression(&mut self) -> Result<Expression> {
        let mut left = self.parse_and()?;
        while self.accept_tok(Tok::OrOr) {
            let right = self.parse_and()?;
            left = Expression::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression> {
        let mut left = self.parse_cmp()?;
        while self.accept_tok(Tok::AndAnd) {
            let right = self.parse_cmp()?;
            left = Expression::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expression> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinaryOp::Eq),
            Tok::Ne => Some(BinaryOp::Ne),
            Tok::Lt => Some(BinaryOp::Lt),
            Tok::Le => Some(BinaryOp::Le),
            Tok::Gt => Some(BinaryOp::Gt),
            Tok::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_add()?;
            return Ok(Expression::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_add(&mut self) -> Result<Expression> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_mul()?;
            left = Expression::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expression> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expression::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expression> {
        if self.accept_tok(Tok::Bang) {
            return Ok(Expression::Not(Box::new(self.parse_unary()?)));
        }
        if self.accept_tok(Tok::Minus) {
            return Ok(Expression::Neg(Box::new(self.parse_unary()?)));
        }
        if self.accept_tok(Tok::Plus) {
            return self.parse_unary();
        }
        self.parse_primary_expr()
    }

    fn parse_primary_expr(&mut self) -> Result<Expression> {
        match self.advance() {
            Tok::Var(v) => Ok(Expression::Var(v)),
            Tok::Int(i) => Ok(Expression::Const(Term::int(i))),
            Tok::Num(n) => Ok(Expression::Const(Term::double(n))),
            Tok::Str(s) => Ok(Expression::Const(self.finish_literal(s)?)),
            Tok::Iri(iri) => {
                // IRI function call or IRI constant.
                if self.peek() == &Tok::LParen {
                    let args = self.parse_args()?;
                    Ok(Expression::Call { name: iri, args })
                } else {
                    Ok(Expression::Const(Term::iri(iri)))
                }
            }
            Tok::PName(p, l) => {
                let iri = self.resolve(&p, &l)?;
                if self.peek() == &Tok::LParen {
                    let args = self.parse_args()?;
                    Ok(Expression::Call { name: iri, args })
                } else {
                    Ok(Expression::Const(Term::iri(iri)))
                }
            }
            Tok::Word(w) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => return Ok(Expression::Const(Term::boolean(true))),
                    "FALSE" => return Ok(Expression::Const(Term::boolean(false))),
                    _ => {}
                }
                if self.peek() == &Tok::LParen {
                    let args = self.parse_args()?;
                    Ok(Expression::Call { name: upper, args })
                } else {
                    Err(self.err(format!("unexpected word '{w}' in expression")))
                }
            }
            Tok::LParen => {
                let e = self.parse_expression()?;
                self.expect_tok(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Expression>> {
        self.expect_tok(Tok::LParen)?;
        let mut args = Vec::new();
        // `COUNT(*)`: the star stands for "count solutions".
        if self.accept_tok(Tok::Star) {
            self.expect_tok(Tok::RParen)?;
            return Ok(args);
        }
        if self.peek() != &Tok::RParen {
            args.push(self.parse_expression()?);
            while self.accept_tok(Tok::Comma) {
                args.push(self.parse_expression()?);
            }
        }
        self.expect_tok(Tok::RParen)?;
        Ok(args)
    }

    // --- updates -----------------------------------------------------

    fn parse_update_body(&mut self) -> Result<Update> {
        if self.accept_word("INSERT") {
            if self.accept_word("DATA") {
                return Ok(Update::InsertData(self.parse_template()?));
            }
            // INSERT { t } WHERE { p }
            let insert = self.parse_template()?;
            self.expect_word("WHERE")?;
            let where_clause = self.parse_group()?;
            return Ok(Update::Modify { delete: Vec::new(), insert, where_clause });
        }
        if self.accept_word("DELETE") {
            if self.accept_word("DATA") {
                return Ok(Update::DeleteData(self.parse_template()?));
            }
            if self.accept_word("WHERE") {
                return Ok(Update::DeleteWhere(self.parse_template()?));
            }
            let delete = self.parse_template()?;
            let insert = if self.accept_word("INSERT") {
                self.parse_template()?
            } else {
                Vec::new()
            };
            self.expect_word("WHERE")?;
            let where_clause = self.parse_group()?;
            return Ok(Update::Modify { delete, insert, where_clause });
        }
        Err(self.err("expected INSERT or DELETE"))
    }

    fn parse_template(&mut self) -> Result<Vec<TemplateTriple>> {
        self.expect_tok(Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.accept_tok(Tok::Dot) {
                continue;
            }
            let s = self.parse_var_or_term()?;
            loop {
                let p = self.parse_predicate()?;
                loop {
                    let o = self.parse_var_or_term()?;
                    out.push(TemplateTriple { s: s.clone(), p: p.clone(), o });
                    if !self.accept_tok(Tok::Comma) {
                        break;
                    }
                }
                if !self.accept_tok(Tok::Semicolon) {
                    break;
                }
                if matches!(self.peek(), Tok::Dot | Tok::RBrace) {
                    break;
                }
            }
            self.accept_tok(Tok::Dot);
        }
        self.expect_tok(Tok::RBrace)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(text: &str) -> SelectQuery {
        match parse_query(text).unwrap() {
            Query::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let q = sel("SELECT ?s WHERE { ?s ?p ?o }");
        assert_eq!(q.projection, Projection::Vars(vec![ProjectionItem::Var("s".into())]));
        assert_eq!(q.where_clause.elements.len(), 1);
    }

    #[test]
    fn prefixes_resolve() {
        let q = sel(
            "PREFIX noa: <http://noa.gr/> SELECT ?h WHERE { ?h a noa:Hotspot }",
        );
        let PatternElement::Triple(t) = &q.where_clause.elements[0] else { panic!() };
        assert_eq!(t.p, VarOrTerm::Term(Term::iri(vocab::rdf::TYPE)));
        assert_eq!(t.o, VarOrTerm::Term(Term::iri("http://noa.gr/Hotspot")));
    }

    #[test]
    fn builtin_prefixes_available() {
        let q = sel("SELECT ?s WHERE { ?s rdf:type strdf:Geometry }");
        assert_eq!(q.where_clause.elements.len(), 1);
    }

    #[test]
    fn semicolon_and_comma_groups() {
        let q = sel("SELECT * WHERE { ?s a <http://x/C> ; <http://x/p> ?a, ?b . }");
        assert_eq!(q.where_clause.elements.len(), 3);
    }

    #[test]
    fn filter_with_spatial_function() {
        let q = sel(
            "SELECT ?g WHERE { ?h strdf:hasGeometry ?g . \
             FILTER(strdf:distance(?g, \"POINT (1 2)\"^^strdf:WKT) < 2000) }",
        );
        let PatternElement::Filter(Expression::Binary { op: BinaryOp::Lt, left, .. }) =
            &q.where_clause.elements[1]
        else {
            panic!("wrong shape: {:?}", q.where_clause.elements[1]);
        };
        let Expression::Call { name, args } = &**left else { panic!() };
        assert!(name.ends_with("distance"));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn optional_union_minus_bind() {
        let q = sel(
            "SELECT * WHERE { \
               ?s a <http://x/C> . \
               OPTIONAL { ?s <http://x/p> ?v } \
               { ?s <http://x/q> ?w } UNION { ?s <http://x/r> ?w } \
               MINUS { ?s <http://x/bad> ?z } \
               BIND(?v + 1 AS ?v2) }",
        );
        assert_eq!(q.where_clause.elements.len(), 5);
        assert!(matches!(q.where_clause.elements[1], PatternElement::Optional(_)));
        assert!(matches!(&q.where_clause.elements[2], PatternElement::Union(b) if b.len() == 2));
        assert!(matches!(q.where_clause.elements[3], PatternElement::Minus(_)));
        assert!(matches!(q.where_clause.elements[4], PatternElement::Bind { .. }));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let q = sel(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 10",
        );
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, 10);
    }

    #[test]
    fn order_by_plain_vars() {
        let q = sel("SELECT ?a ?b WHERE { ?a <http://x/p> ?b } ORDER BY ?a ?b");
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn projection_expression() {
        let q = sel(
            "SELECT (strdf:area(?g) AS ?area) WHERE { ?s strdf:hasGeometry ?g }",
        );
        let Projection::Vars(items) = &q.projection else { panic!() };
        assert!(matches!(&items[0], ProjectionItem::Expr { var, .. } if var == "area"));
    }

    #[test]
    fn ask_query() {
        let q = parse_query("ASK { ?s a <http://x/C> }").unwrap();
        assert!(matches!(q, Query::Ask(_)));
    }

    #[test]
    fn select_star() {
        let q = sel("SELECT * WHERE { ?s ?p ?o }");
        assert_eq!(q.projection, Projection::All);
    }

    #[test]
    fn insert_data() {
        let u = parse_update(
            "PREFIX ex: <http://x/> INSERT DATA { ex:a ex:p 1 . ex:a ex:q \"s\" }",
        )
        .unwrap();
        match u {
            Update::InsertData(ts) => assert_eq!(ts.len(), 2),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn delete_insert_where() {
        let u = parse_update(
            "PREFIX ex: <http://x/> \
             DELETE { ?h a ex:Hotspot } \
             INSERT { ?h a ex:Refuted } \
             WHERE { ?h a ex:Hotspot . FILTER(strdf:within(?g, \"POINT (0 0)\"^^strdf:WKT)) }",
        )
        .unwrap();
        match u {
            Update::Modify { delete, insert, where_clause } => {
                assert_eq!(delete.len(), 1);
                assert_eq!(insert.len(), 1);
                assert_eq!(where_clause.elements.len(), 2);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn delete_where_shorthand() {
        let u = parse_update("DELETE WHERE { ?s <http://x/p> ?o }").unwrap();
        assert!(matches!(u, Update::DeleteWhere(ts) if ts.len() == 1));
    }

    #[test]
    fn insert_where_without_delete() {
        let u = parse_update(
            "INSERT { ?s <http://x/derived> true } WHERE { ?s a <http://x/C> }",
        )
        .unwrap();
        assert!(matches!(u, Update::Modify { ref delete, .. } if delete.is_empty()));
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT WHERE { }").is_err());
        assert!(parse_query("SELECT ?s { ?s ?p ?o }").is_err()); // missing WHERE
        assert!(parse_query("SELECT ?s WHERE { ?s foo:bar ?o }").is_err()); // unknown prefix
        assert!(parse_update("MODIFY { }").is_err());
    }

    #[test]
    fn nested_group_is_inlined() {
        let q = sel("SELECT * WHERE { { ?s ?p ?o } }");
        assert_eq!(q.where_clause.elements.len(), 1);
    }

    #[test]
    fn boolean_literals_in_patterns() {
        let q = sel("SELECT ?s WHERE { ?s <http://x/flag> true }");
        let PatternElement::Triple(t) = &q.where_clause.elements[0] else { panic!() };
        assert_eq!(t.o, VarOrTerm::Term(Term::boolean(true)));
    }
}
