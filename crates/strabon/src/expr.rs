//! Expression evaluation: SPARQL builtins and strdf spatial functions.
//!
//! Per the SPARQL semantics, errors inside FILTER expressions are not
//! fatal: they produce an *error value* that makes the filter reject the
//! solution. [`eval_expression`] therefore returns `Option<Term>`, with
//! `None` standing for the SPARQL error value.

use crate::ast::{BinaryOp, Expression};
use crate::spatial::SpatialSidecar;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use teleios_exec::{Dispatch, WorkerPool};
use teleios_geo::algorithm::{area, buffer, clip, distance as geodist, predicates};
use teleios_geo::Geometry;
use teleios_rdf::dictionary::TermId;
use teleios_rdf::store::TripleStore;
use teleios_rdf::strdf;
use teleios_rdf::term::Term;
use teleios_rdf::vocab;

/// A bound value: a dictionary id or a computed term.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// Term interned in the store dictionary.
    Id(TermId),
    /// Computed term (BIND results, function outputs).
    Computed(Term),
}

impl Bound {
    /// Resolve to a term reference.
    pub fn term<'a>(&'a self, store: &'a TripleStore) -> &'a Term {
        match self {
            Bound::Id(id) => store.term(*id),
            Bound::Computed(t) => t,
        }
    }

    /// The dictionary id, if interned.
    pub fn id(&self) -> Option<TermId> {
        match self {
            Bound::Id(id) => Some(*id),
            Bound::Computed(_) => None,
        }
    }
}

/// A solution binding: one slot per variable of the query.
pub type Binding = Vec<Option<Bound>>;

/// Maps variable names to binding slots.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarTable {
    /// Slot of `name`, creating it if new.
    pub fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Slot of `name` if it exists.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Variable names in slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Fresh all-unbound binding.
    pub fn empty_binding(&self) -> Binding {
        vec![None; self.names.len()]
    }
}

/// Evaluation environment shared by all expression evaluations of a
/// query. Everything in it is a shared borrow of immutable engine
/// state, so an `&Env` crosses worker-thread boundaries freely — the
/// morsel-parallel BGP probe and filter paths rely on that.
pub struct Env<'a> {
    /// The triple store.
    pub store: &'a TripleStore,
    /// Spatial sidecar (already built).
    pub spatial: &'a SpatialSidecar,
    /// Variable table.
    pub vars: &'a VarTable,
    /// Expand `rdf:type` patterns over the `rdfs:subClassOf` closure.
    pub rdfs_inference: bool,
    /// Worker pool for the morsel-parallel probe/filter paths
    /// (one-thread pools evaluate inline — the exact sequential path).
    pub pool: WorkerPool,
    /// Dispatch policy for those paths when the pool is parallel.
    pub dispatch: Dispatch,
}

impl Env<'_> {
    /// Parse (or fetch from cache) the geometry of a bound value.
    pub fn geometry_of(&self, b: &Bound) -> Option<Arc<Geometry>> {
        match b {
            Bound::Id(id) => self.spatial.geometry(*id).or_else(|| {
                strdf::parse_geometry(self.store.term(*id))
                    .ok()
                    .map(|(g, _)| Arc::new(g))
            }),
            Bound::Computed(t) => strdf::parse_geometry(t).ok().map(|(g, _)| Arc::new(g)),
        }
    }
}

/// Evaluate an expression to a term; `None` is the SPARQL error value.
pub fn eval_expression(env: &Env<'_>, binding: &Binding, expr: &Expression) -> Option<Term> {
    match expr {
        Expression::Var(name) => {
            let slot = env.vars.get(name)?;
            binding.get(slot)?.as_ref().map(|b| b.term(env.store).clone())
        }
        Expression::Const(t) => Some(t.clone()),
        Expression::Not(e) => {
            let v = effective_boolean(&eval_expression(env, binding, e)?)?;
            Some(Term::boolean(!v))
        }
        Expression::Neg(e) => {
            let v = eval_expression(env, binding, e)?;
            let n = numeric(&v)?;
            Some(number_term(-n, &v))
        }
        Expression::Binary { op, left, right } => {
            // Short-circuit logical operators.
            match op {
                BinaryOp::And => {
                    let l = eval_expression(env, binding, left).and_then(|t| effective_boolean(&t));
                    if l == Some(false) {
                        return Some(Term::boolean(false));
                    }
                    let r = eval_expression(env, binding, right).and_then(|t| effective_boolean(&t));
                    return match (l, r) {
                        (Some(true), Some(true)) => Some(Term::boolean(true)),
                        (_, Some(false)) => Some(Term::boolean(false)),
                        _ => None,
                    };
                }
                BinaryOp::Or => {
                    let l = eval_expression(env, binding, left).and_then(|t| effective_boolean(&t));
                    if l == Some(true) {
                        return Some(Term::boolean(true));
                    }
                    let r = eval_expression(env, binding, right).and_then(|t| effective_boolean(&t));
                    return match (l, r) {
                        (_, Some(true)) => Some(Term::boolean(true)),
                        (Some(false), Some(false)) => Some(Term::boolean(false)),
                        _ => None,
                    };
                }
                _ => {}
            }
            let l = eval_expression(env, binding, left)?;
            let r = eval_expression(env, binding, right)?;
            match op {
                BinaryOp::Eq => Some(Term::boolean(terms_equal(&l, &r)?)),
                BinaryOp::Ne => Some(Term::boolean(!terms_equal(&l, &r)?)),
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                    let ord = compare_terms(&l, &r)?;
                    Some(Term::boolean(match op {
                        BinaryOp::Lt => ord == Ordering::Less,
                        BinaryOp::Le => ord != Ordering::Greater,
                        BinaryOp::Gt => ord == Ordering::Greater,
                        BinaryOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }))
                }
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                    let a = numeric(&l)?;
                    let b = numeric(&r)?;
                    let v = match op {
                        BinaryOp::Add => a + b,
                        BinaryOp::Sub => a - b,
                        BinaryOp::Mul => a * b,
                        BinaryOp::Div => {
                            if b == 0.0 {
                                return None;
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    // Integer-preserving arithmetic when both are integers.
                    if is_integer(&l) && is_integer(&r) && op != &BinaryOp::Div {
                        Some(Term::int(v as i64))
                    } else {
                        Some(Term::double(v))
                    }
                }
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            }
        }
        Expression::Call { name, args } => eval_call(env, binding, name, args),
    }
}

/// Evaluate an expression as a FILTER condition (error → false).
pub fn eval_filter(env: &Env<'_>, binding: &Binding, expr: &Expression) -> bool {
    // BOUND needs unbound-tolerant handling, done inside eval_call.
    eval_expression(env, binding, expr)
        .and_then(|t| effective_boolean(&t))
        .unwrap_or(false)
}

fn eval_call(env: &Env<'_>, binding: &Binding, name: &str, args: &[Expression]) -> Option<Term> {
    // BOUND is special: it inspects bindings, not values.
    if name == "BOUND" {
        let Some(Expression::Var(v)) = args.first() else {
            return None;
        };
        let slot = env.vars.get(v)?;
        return Some(Term::boolean(binding.get(slot)?.is_some()));
    }

    // Spatial functions (strdf namespace); also accept GeoSPARQL geof:.
    if let Some(local) = name
        .strip_prefix(vocab::strdf::NS)
        .or_else(|| name.strip_prefix("http://www.opengis.net/def/function/geosparql/"))
    {
        return eval_spatial(env, binding, local, args);
    }

    let vals: Vec<Term> = args
        .iter()
        .map(|a| eval_expression(env, binding, a))
        .collect::<Option<_>>()?;
    match name {
        "STR" => Some(Term::literal(match &vals[0] {
            Term::Iri(i) => i.clone(),
            Term::Literal { lexical, .. } => lexical.clone(),
            Term::Blank(b) => format!("_:{b}"),
        })),
        "DATATYPE" => match &vals[0] {
            Term::Literal { datatype: Some(dt), .. } => Some(Term::iri(dt.clone())),
            Term::Literal { lang: None, .. } => Some(Term::iri(vocab::xsd::STRING)),
            _ => None,
        },
        "LANG" => match &vals[0] {
            Term::Literal { lang, .. } => Some(Term::literal(lang.clone().unwrap_or_default())),
            _ => None,
        },
        "ISIRI" | "ISURI" => Some(Term::boolean(vals[0].is_iri())),
        "ISLITERAL" => Some(Term::boolean(vals[0].is_literal())),
        "ISBLANK" => Some(Term::boolean(vals[0].is_blank())),
        "ISNUMERIC" => Some(Term::boolean(numeric(&vals[0]).is_some())),
        "ABS" => {
            let n = numeric(&vals[0])?;
            Some(number_term(n.abs(), &vals[0]))
        }
        "CEIL" => Some(Term::double(numeric(&vals[0])?.ceil())),
        "FLOOR" => Some(Term::double(numeric(&vals[0])?.floor())),
        "ROUND" => Some(Term::double(numeric(&vals[0])?.round())),
        "SQRT" => Some(Term::double(numeric(&vals[0])?.sqrt())),
        "STRLEN" => Some(Term::int(vals[0].lexical()?.chars().count() as i64)),
        "UCASE" => Some(Term::literal(vals[0].lexical()?.to_uppercase())),
        "LCASE" => Some(Term::literal(vals[0].lexical()?.to_lowercase())),
        "CONTAINS" => {
            Some(Term::boolean(vals[0].lexical()?.contains(vals[1].lexical()?)))
        }
        "STRSTARTS" => {
            Some(Term::boolean(vals[0].lexical()?.starts_with(vals[1].lexical()?)))
        }
        "STRENDS" => Some(Term::boolean(vals[0].lexical()?.ends_with(vals[1].lexical()?))),
        "CONCAT" => {
            let mut s = String::new();
            for v in &vals {
                s.push_str(v.lexical()?);
            }
            Some(Term::literal(s))
        }
        "REGEX" => {
            // Substring-match approximation of REGEX: supports the plain
            // patterns used in the demo (no metacharacters).
            let text = vals[0].lexical()?;
            let pat = vals[1].lexical()?;
            let ci = vals.get(2).and_then(|f| f.lexical()).is_some_and(|f| f.contains('i'));
            Some(Term::boolean(if ci {
                text.to_lowercase().contains(&pat.to_lowercase())
            } else {
                text.contains(pat)
            }))
        }
        "IF" => {
            let c = effective_boolean(&vals[0])?;
            Some(if c { vals[1].clone() } else { vals[2].clone() })
        }
        "COALESCE" => vals.into_iter().next(),
        _ => None,
    }
}

fn eval_spatial(
    env: &Env<'_>,
    binding: &Binding,
    local: &str,
    args: &[Expression],
) -> Option<Term> {
    // Resolve arguments to Bound values so geometry caching can apply.
    let bound_of = |e: &Expression| -> Option<Bound> {
        match e {
            Expression::Var(v) => binding.get(env.vars.get(v)?)?.clone(),
            _ => eval_expression(env, binding, e).map(Bound::Computed),
        }
    };
    let geom = |e: &Expression| -> Option<Arc<Geometry>> {
        env.geometry_of(&bound_of(e)?)
    };
    match local {
        // Topological predicates — also accept GeoSPARQL sf* spellings.
        "intersects" | "sfIntersects" | "anyInteract" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::intersects(&a, &b)))
        }
        "disjoint" | "sfDisjoint" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::disjoint(&a, &b)))
        }
        "contains" | "sfContains" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::contains(&a, &b)))
        }
        "within" | "sfWithin" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::within(&a, &b)))
        }
        "touches" | "sfTouches" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::touches(&a, &b)))
        }
        "equals" | "sfEquals" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::boolean(predicates::equals(&a, &b)))
        }
        // Metric functions (planar, in coordinate units).
        "distance" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            Some(Term::double(geodist::distance(&a, &b)))
        }
        "area" => Some(Term::double(area::area(geom(&args[0])?.as_ref()))),
        // Temporal functions over strdf:period valid-time literals.
        "periodOverlaps" | "overlapsPeriod" => {
            let a = strdf::parse_period(&eval_expression(env, binding, &args[0])?).ok()?;
            let b = strdf::parse_period(&eval_expression(env, binding, &args[1])?).ok()?;
            Some(Term::boolean(a.overlaps(&b)))
        }
        "periodContains" | "during" => {
            // periodContains(period, instant) / during(instant, period).
            let (p_arg, i_arg) = if local == "during" {
                (&args[1], &args[0])
            } else {
                (&args[0], &args[1])
            };
            let p = strdf::parse_period(&eval_expression(env, binding, p_arg)?).ok()?;
            let instant = eval_expression(env, binding, i_arg)?;
            let lex = instant.lexical()?;
            Some(Term::boolean(p.contains(lex)))
        }
        "periodStart" | "periodEnd" => {
            let p = strdf::parse_period(&eval_expression(env, binding, &args[0])?).ok()?;
            Some(Term::date_time(if local == "periodStart" { p.start } else { p.end }))
        }
        // Constructive functions return new strdf:WKT literals.
        "buffer" => {
            let g = geom(&args[0])?;
            let d = numeric(&eval_expression(env, binding, &args[1])?)?;
            if d <= 0.0 {
                return None;
            }
            let b = buffer::buffer(&g, d, buffer::DEFAULT_CIRCLE_SEGMENTS);
            Some(strdf::geometry_literal_wgs84(&b))
        }
        "envelope" => {
            let g = geom(&args[0])?;
            let e = g.envelope();
            if e.is_empty() {
                return None;
            }
            Some(strdf::geometry_literal_wgs84(&Geometry::Polygon(
                teleios_geo::geometry::Polygon::from_envelope(&e),
            )))
        }
        "intersection" | "difference" | "union2" => {
            let (a, b) = (geom(&args[0])?, geom(&args[1])?);
            let op = match local {
                "intersection" => clip::OverlayOp::Intersection,
                "difference" => clip::OverlayOp::Difference,
                _ => clip::OverlayOp::Union,
            };
            let (Geometry::Polygon(pa), Geometry::Polygon(pb)) = (&*a, &*b) else {
                return None;
            };
            let result = clip::overlay(pa, pb, op);
            Some(strdf::geometry_literal_wgs84(&Geometry::MultiPolygon(result.polygons)))
        }
        _ => None,
    }
}

/// SPARQL effective boolean value.
pub fn effective_boolean(t: &Term) -> Option<bool> {
    match t {
        Term::Literal { lexical, datatype, .. } => {
            if datatype.as_deref() == Some(vocab::xsd::BOOLEAN) {
                return t.as_bool();
            }
            if let Some(n) = t.as_f64() {
                return Some(n != 0.0 && !n.is_nan());
            }
            if datatype.is_none() {
                return Some(!lexical.is_empty());
            }
            None
        }
        _ => None,
    }
}

fn numeric(t: &Term) -> Option<f64> {
    match t {
        Term::Literal { .. } => t.as_f64(),
        _ => None,
    }
}

fn is_integer(t: &Term) -> bool {
    t.datatype() == Some(vocab::xsd::INTEGER)
}

fn number_term(v: f64, like: &Term) -> Term {
    if is_integer(like) && v.fract() == 0.0 {
        Term::int(v as i64)
    } else {
        Term::double(v)
    }
}

/// SPARQL value equality: numeric literals compare by value, everything
/// else by strict term equality.
fn terms_equal(a: &Term, b: &Term) -> Option<bool> {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return Some(x == y);
    }
    Some(a == b)
}

/// SPARQL ordering for `<`/`>` comparisons: numeric or string.
fn compare_terms(a: &Term, b: &Term) -> Option<Ordering> {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return x.partial_cmp(&y);
    }
    match (a, b) {
        (
            Term::Literal { lexical: la, .. },
            Term::Literal { lexical: lb, .. },
        ) => Some(la.cmp(lb)),
        _ => None,
    }
}

/// Total order for ORDER BY (unbound < everything; errors sort last).
pub fn order_terms(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => compare_terms(x, y).unwrap_or_else(|| x.cmp(y)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_fixture() -> (TripleStore, SpatialSidecar, VarTable) {
        let store = TripleStore::new();
        let spatial = SpatialSidecar::default();
        let vars = VarTable::default();
        (store, spatial, vars)
    }

    fn eval_const(expr: &Expression) -> Option<Term> {
        let (store, spatial, vars) = env_fixture();
        let env = Env {
            store: &store,
            spatial: &spatial,
            vars: &vars,
            rdfs_inference: false,
            pool: WorkerPool::with_threads(1),
            dispatch: Dispatch::Static,
        };
        eval_expression(&env, &vec![], expr)
    }

    fn call(name: &str, args: Vec<Expression>) -> Expression {
        Expression::Call { name: name.into(), args }
    }

    fn lit(t: Term) -> Expression {
        Expression::Const(t)
    }

    fn wkt(s: &str) -> Expression {
        lit(Term::typed_literal(s, vocab::strdf::WKT))
    }

    #[test]
    fn arithmetic_and_types() {
        let e = Expression::Binary {
            op: BinaryOp::Add,
            left: Box::new(lit(Term::int(2))),
            right: Box::new(lit(Term::int(3))),
        };
        assert_eq!(eval_const(&e), Some(Term::int(5)));
        let e2 = Expression::Binary {
            op: BinaryOp::Mul,
            left: Box::new(lit(Term::int(2))),
            right: Box::new(lit(Term::double(1.5))),
        };
        assert_eq!(eval_const(&e2), Some(Term::double(3.0)));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expression::Binary {
            op: BinaryOp::Div,
            left: Box::new(lit(Term::int(1))),
            right: Box::new(lit(Term::int(0))),
        };
        assert_eq!(eval_const(&e), None);
    }

    #[test]
    fn comparisons_numeric_cross_type() {
        let e = Expression::Binary {
            op: BinaryOp::Lt,
            left: Box::new(lit(Term::int(2))),
            right: Box::new(lit(Term::double(2.5))),
        };
        assert_eq!(eval_const(&e), Some(Term::boolean(true)));
    }

    #[test]
    fn equality_numeric_vs_strict() {
        let e = Expression::Binary {
            op: BinaryOp::Eq,
            left: Box::new(lit(Term::int(2))),
            right: Box::new(lit(Term::double(2.0))),
        };
        assert_eq!(eval_const(&e), Some(Term::boolean(true)));
        let e2 = Expression::Binary {
            op: BinaryOp::Eq,
            left: Box::new(lit(Term::iri("http://a"))),
            right: Box::new(lit(Term::iri("http://a"))),
        };
        assert_eq!(eval_const(&e2), Some(Term::boolean(true)));
    }

    #[test]
    fn logic_short_circuit_with_errors() {
        // error || true = true
        let e = Expression::Binary {
            op: BinaryOp::Or,
            left: Box::new(call("NOPE", vec![])),
            right: Box::new(lit(Term::boolean(true))),
        };
        assert_eq!(eval_const(&e), Some(Term::boolean(true)));
        // error && false = false
        let e2 = Expression::Binary {
            op: BinaryOp::And,
            left: Box::new(call("NOPE", vec![])),
            right: Box::new(lit(Term::boolean(false))),
        };
        assert_eq!(eval_const(&e2), Some(Term::boolean(false)));
        // error && true = error
        let e3 = Expression::Binary {
            op: BinaryOp::And,
            left: Box::new(call("NOPE", vec![])),
            right: Box::new(lit(Term::boolean(true))),
        };
        assert_eq!(eval_const(&e3), None);
    }

    #[test]
    fn string_builtins() {
        assert_eq!(
            eval_const(&call("UCASE", vec![lit(Term::literal("fire"))])),
            Some(Term::literal("FIRE"))
        );
        assert_eq!(
            eval_const(&call("STRLEN", vec![lit(Term::literal("abc"))])),
            Some(Term::int(3))
        );
        assert_eq!(
            eval_const(&call(
                "CONTAINS",
                vec![lit(Term::literal("hotspot")), lit(Term::literal("spot"))]
            )),
            Some(Term::boolean(true))
        );
        assert_eq!(
            eval_const(&call(
                "CONCAT",
                vec![lit(Term::literal("a")), lit(Term::literal("b"))]
            )),
            Some(Term::literal("ab"))
        );
    }

    #[test]
    fn str_and_datatype() {
        assert_eq!(
            eval_const(&call("STR", vec![lit(Term::iri("http://x/"))])),
            Some(Term::literal("http://x/"))
        );
        assert_eq!(
            eval_const(&call("DATATYPE", vec![lit(Term::int(1))])),
            Some(Term::iri(vocab::xsd::INTEGER))
        );
    }

    #[test]
    fn spatial_intersects_and_distance() {
        let name = format!("{}intersects", vocab::strdf::NS);
        let e = Expression::Call {
            name,
            args: vec![wkt("POINT (5 5)"), wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")],
        };
        assert_eq!(eval_const(&e), Some(Term::boolean(true)));
        let dist = Expression::Call {
            name: format!("{}distance", vocab::strdf::NS),
            args: vec![wkt("POINT (0 0)"), wkt("POINT (3 4)")],
        };
        assert_eq!(eval_const(&dist), Some(Term::double(5.0)));
    }

    #[test]
    fn spatial_area_and_buffer() {
        let a = Expression::Call {
            name: format!("{}area", vocab::strdf::NS),
            args: vec![wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
        };
        assert_eq!(eval_const(&a), Some(Term::double(16.0)));
        let b = Expression::Call {
            name: format!("{}buffer", vocab::strdf::NS),
            args: vec![wkt("POINT (0 0)"), lit(Term::double(1.0))],
        };
        let t = eval_const(&b).unwrap();
        assert!(strdf::is_geometry_literal(&t));
    }

    #[test]
    fn spatial_overlay_functions() {
        let i = Expression::Call {
            name: format!("{}intersection", vocab::strdf::NS),
            args: vec![
                wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"),
                wkt("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))"),
            ],
        };
        let t = eval_const(&i).unwrap();
        let (g, _) = strdf::parse_geometry(&t).unwrap();
        assert!((area::area(&g) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn geosparql_spelling_accepted() {
        let e = Expression::Call {
            name: "http://www.opengis.net/def/function/geosparql/sfIntersects".into(),
            args: vec![wkt("POINT (1 1)"), wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")],
        };
        assert_eq!(eval_const(&e), Some(Term::boolean(true)));
    }

    #[test]
    fn spatial_on_non_geometry_is_error() {
        let e = Expression::Call {
            name: format!("{}intersects", vocab::strdf::NS),
            args: vec![lit(Term::literal("nope")), wkt("POINT (0 0)")],
        };
        assert_eq!(eval_const(&e), None);
    }

    #[test]
    fn effective_boolean_values() {
        assert_eq!(effective_boolean(&Term::boolean(true)), Some(true));
        assert_eq!(effective_boolean(&Term::int(0)), Some(false));
        assert_eq!(effective_boolean(&Term::double(2.5)), Some(true));
        assert_eq!(effective_boolean(&Term::literal("")), Some(false));
        assert_eq!(effective_boolean(&Term::literal("x")), Some(true));
        assert_eq!(effective_boolean(&Term::iri("http://x/")), None);
    }

    #[test]
    fn if_and_coalesce() {
        let e = call(
            "IF",
            vec![lit(Term::boolean(false)), lit(Term::int(1)), lit(Term::int(2))],
        );
        assert_eq!(eval_const(&e), Some(Term::int(2)));
        let c = call("COALESCE", vec![lit(Term::int(7))]);
        assert_eq!(eval_const(&c), Some(Term::int(7)));
    }

    #[test]
    fn var_table_slots() {
        let mut vt = VarTable::default();
        let a = vt.slot("a");
        let b = vt.slot("b");
        assert_eq!(vt.slot("a"), a);
        assert_ne!(a, b);
        assert_eq!(vt.get("b"), Some(b));
        assert_eq!(vt.get("zzz"), None);
        assert_eq!(vt.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn order_terms_unbound_first() {
        assert_eq!(order_terms(&None, &Some(Term::int(1))), Ordering::Less);
        assert_eq!(
            order_terms(&Some(Term::int(1)), &Some(Term::int(2))),
            Ordering::Less
        );
        assert_eq!(
            order_terms(&Some(Term::literal("a")), &Some(Term::literal("b"))),
            Ordering::Less
        );
    }
}
