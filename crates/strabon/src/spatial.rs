//! Spatial sidecar: geometry cache and R-tree over WKT literals.
//!
//! Strabon keeps geometries in the dictionary as `strdf:WKT` literals;
//! parsing WKT on every FILTER evaluation would dominate query time, so
//! the sidecar caches parsed geometries per term id and maintains an
//! R-tree of their envelopes. The sidecar is rebuilt lazily after any
//! store mutation.

use std::collections::HashMap;
use std::sync::Arc;
use teleios_exec::WorkerPool;
use teleios_geo::index::RTree;
use teleios_geo::{Envelope, Geometry};
use teleios_rdf::dictionary::TermId;
use teleios_rdf::store::TripleStore;
use teleios_rdf::strdf;

/// Lazily built spatial index over every `strdf:WKT` literal in a store.
#[derive(Debug, Default)]
pub struct SpatialSidecar {
    built: bool,
    geometries: HashMap<TermId, Arc<Geometry>>,
    rtree: RTree<TermId>,
}

impl SpatialSidecar {
    /// Drop the index (call after any store mutation).
    pub fn invalidate(&mut self) {
        self.built = false;
        self.geometries.clear();
        self.rtree = RTree::new();
    }

    /// True when the sidecar reflects the current store contents.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Build the index from the store's dictionary if not yet built
    /// (serial R-tree packing — see [`Self::ensure_built_with`]).
    pub fn ensure_built(&mut self, store: &TripleStore) {
        self.ensure_built_with(store, &WorkerPool::with_threads(1));
    }

    /// Build the index if not yet built, bulk-loading the R-tree on
    /// `pool`'s work-stealing scheduler
    /// ([`RTree::bulk_load_with`] — identical tree, parallel sorts).
    /// A one-thread pool takes the serial path exactly.
    pub fn ensure_built_with(&mut self, store: &TripleStore, pool: &WorkerPool) {
        if self.built {
            return;
        }
        let dict = store.dictionary();
        let mut items: Vec<(Envelope, TermId)> = Vec::new();
        for id in 0..dict.len() as TermId {
            let term = dict.term(id);
            if strdf::is_geometry_literal(term) {
                if let Ok((g, _srid)) = strdf::parse_geometry(term) {
                    let env = g.envelope();
                    self.geometries.insert(id, Arc::new(g));
                    if !env.is_empty() {
                        items.push((env, id));
                    }
                }
            }
        }
        self.rtree = RTree::bulk_load_with(pool, items);
        self.built = true;
    }

    /// Parsed geometry for a term id (after `ensure_built`).
    pub fn geometry(&self, id: TermId) -> Option<Arc<Geometry>> {
        self.geometries.get(&id).cloned()
    }

    /// Number of indexed geometries.
    pub fn len(&self) -> usize {
        self.geometries.len()
    }

    /// True when no geometries are indexed.
    pub fn is_empty(&self) -> bool {
        self.geometries.is_empty()
    }

    /// Term ids whose envelope intersects `query` (candidate set for
    /// spatial FILTER pre-filtering).
    pub fn candidates(&self, query: &Envelope) -> std::collections::HashSet<TermId> {
        self.rtree.query(query).into_iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::geometry::Point;
    use teleios_rdf::term::Term;

    fn store_with_points(n: usize) -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..n {
            let g = Geometry::Point(Point::new(i as f64, 0.0));
            st.insert_terms(
                &Term::iri(format!("http://x/f{i}")),
                &Term::iri(teleios_rdf::vocab::strdf::HAS_GEOMETRY),
                &strdf::geometry_literal_wgs84(&g),
            );
        }
        st
    }

    #[test]
    fn builds_and_finds_candidates() {
        let st = store_with_points(10);
        let mut sc = SpatialSidecar::default();
        sc.ensure_built(&st);
        assert_eq!(sc.len(), 10);
        let q = Envelope::new(
            teleios_geo::Coord::new(2.5, -1.0),
            teleios_geo::Coord::new(5.5, 1.0),
        );
        let cands = sc.candidates(&q);
        assert_eq!(cands.len(), 3); // points 3, 4, 5
    }

    #[test]
    fn geometry_lookup() {
        let st = store_with_points(3);
        let mut sc = SpatialSidecar::default();
        sc.ensure_built(&st);
        let lit = strdf::geometry_literal_wgs84(&Geometry::Point(Point::new(1.0, 0.0)));
        let id = st.id_of(&lit).unwrap();
        let g = sc.geometry(id).unwrap();
        assert_eq!(g.envelope().min.x, 1.0);
    }

    #[test]
    fn invalidate_clears() {
        let st = store_with_points(2);
        let mut sc = SpatialSidecar::default();
        sc.ensure_built(&st);
        assert!(sc.is_built());
        sc.invalidate();
        assert!(!sc.is_built());
        assert!(sc.is_empty());
    }

    #[test]
    fn non_geometry_literals_ignored() {
        let mut st = TripleStore::new();
        st.insert_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/p"),
            &Term::literal("POINT (1 2)"), // plain literal, not strdf:WKT
        );
        let mut sc = SpatialSidecar::default();
        sc.ensure_built(&st);
        assert!(sc.is_empty());
    }

    #[test]
    fn malformed_wkt_skipped() {
        let mut st = TripleStore::new();
        st.insert_terms(
            &Term::iri("http://x/a"),
            &Term::iri("http://x/p"),
            &Term::typed_literal("NOT WKT", teleios_rdf::vocab::strdf::WKT),
        );
        let mut sc = SpatialSidecar::default();
        sc.ensure_built(&st);
        assert!(sc.is_empty());
    }
}
