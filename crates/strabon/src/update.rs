//! SPARQL Update execution — the machinery behind the refinement step of
//! demo scenario 2 (improving the thematic accuracy of hotspot products
//! with `DELETE/INSERT ... WHERE` statements).

use crate::ast::{TemplateTriple, Update, VarOrTerm};
use crate::eval::{collect_group_vars, eval_group};
use crate::expr::{Bound, Env, VarTable};
use crate::{Result, Strabon, StrabonError};
use teleios_rdf::term::Term;
use teleios_rdf::triple::Triple;

/// Execute an update. Returns the number of triples added plus removed.
pub fn execute_update(engine: &mut Strabon, update: &Update) -> Result<usize> {
    match update {
        Update::InsertData(triples) => {
            let ground = ground_triples(triples)?;
            let mut n = 0;
            for (s, p, o) in &ground {
                if engine.store.insert_terms(s, p, o) {
                    n += 1;
                }
            }
            if n > 0 {
                engine.spatial.invalidate();
            }
            Ok(n)
        }
        Update::DeleteData(triples) => {
            let ground = ground_triples(triples)?;
            let mut n = 0;
            for (s, p, o) in &ground {
                let (Some(s), Some(p), Some(o)) = (
                    engine.store.id_of(s),
                    engine.store.id_of(p),
                    engine.store.id_of(o),
                ) else {
                    continue;
                };
                if engine.store.remove(&Triple::new(s, p, o)) {
                    n += 1;
                }
            }
            if n > 0 {
                engine.spatial.invalidate();
            }
            Ok(n)
        }
        Update::DeleteWhere(patterns) => {
            // DELETE WHERE { p }: the template doubles as the pattern.
            let group = crate::ast::GroupPattern {
                elements: patterns
                    .iter()
                    .map(|t| {
                        crate::ast::PatternElement::Triple(crate::ast::PatternTriple {
                            s: t.s.clone(),
                            p: t.p.clone(),
                            o: t.o.clone(),
                        })
                    })
                    .collect(),
            };
            execute_modify(engine, patterns, &[], &group)
        }
        Update::Modify { delete, insert, where_clause } => {
            execute_modify(engine, delete, insert, where_clause)
        }
    }
}

fn execute_modify(
    engine: &mut Strabon,
    delete: &[TemplateTriple],
    insert: &[TemplateTriple],
    where_clause: &crate::ast::GroupPattern,
) -> Result<usize> {
    let config = engine.config;
    let pool = engine.pool();
    engine.spatial.ensure_built_with(&engine.store, &pool);

    let mut vars = VarTable::default();
    collect_group_vars(where_clause, &mut vars);
    for t in delete.iter().chain(insert) {
        for v in [&t.s, &t.p, &t.o] {
            if let Some(name) = v.var() {
                if vars.get(name).is_none() {
                    return Err(StrabonError::Eval(format!(
                        "template variable ?{name} is not bound by the WHERE clause"
                    )));
                }
            }
        }
    }

    // Evaluate WHERE, then instantiate the templates per solution.
    let (to_delete, to_insert) = {
        let env = Env {
            store: &engine.store,
            spatial: &engine.spatial,
            vars: &vars,
            rdfs_inference: config.rdfs_inference,
            pool,
            dispatch: config.dispatch,
        };
        let seeds = vec![vars.empty_binding()];
        let solutions = eval_group(
            &env,
            where_clause,
            seeds,
            config.optimize_bgp,
            config.use_spatial_index,
        );
        let mut to_delete: Vec<(Term, Term, Term)> = Vec::new();
        let mut to_insert: Vec<(Term, Term, Term)> = Vec::new();
        for b in &solutions {
            instantiate(&env, b, delete, &mut to_delete);
            instantiate(&env, b, insert, &mut to_insert);
        }
        (to_delete, to_insert)
    };

    let mut n = 0;
    for (s, p, o) in &to_delete {
        let (Some(s), Some(p), Some(o)) =
            (engine.store.id_of(s), engine.store.id_of(p), engine.store.id_of(o))
        else {
            continue;
        };
        if engine.store.remove(&Triple::new(s, p, o)) {
            n += 1;
        }
    }
    for (s, p, o) in &to_insert {
        if engine.store.insert_terms(s, p, o) {
            n += 1;
        }
    }
    if n > 0 {
        engine.spatial.invalidate();
    }
    Ok(n)
}

/// Instantiate templates under a binding; solutions leaving a template
/// variable unbound skip that triple (SPARQL Update semantics).
pub(crate) fn instantiate(
    env: &Env<'_>,
    binding: &[Option<Bound>],
    templates: &[TemplateTriple],
    out: &mut Vec<(Term, Term, Term)>,
) {
    'next: for t in templates {
        let mut terms: Vec<Term> = Vec::with_capacity(3);
        for v in [&t.s, &t.p, &t.o] {
            match v {
                VarOrTerm::Term(term) => terms.push(term.clone()),
                VarOrTerm::Var(name) => {
                    let Some(slot) = env.vars.get(name) else { continue 'next };
                    let Some(bound) = &binding[slot] else { continue 'next };
                    terms.push(bound.term(env.store).clone());
                }
            }
        }
        let (Some(o), Some(p), Some(s)) = (terms.pop(), terms.pop(), terms.pop()) else {
            continue 'next; // unreachable: the loop above pushed all three
        };
        out.push((s, p, o));
    }
}

fn ground_triples(templates: &[TemplateTriple]) -> Result<Vec<(Term, Term, Term)>> {
    templates
        .iter()
        .map(|t| {
            let g = |v: &VarOrTerm| -> Result<Term> {
                match v {
                    VarOrTerm::Term(t) => Ok(t.clone()),
                    VarOrTerm::Var(name) => Err(StrabonError::Eval(format!(
                        "variable ?{name} not allowed in DATA block"
                    ))),
                }
            };
            Ok((g(&t.s)?, g(&t.p)?, g(&t.o)?))
        })
        .collect()
}
