#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-strabon — the Strabon semantic geospatial database engine
//!
//! Strabon is the stRDF/stSPARQL system of the TELEIOS Virtual Earth
//! Observatory: a semantic geospatial database that stores linked
//! geospatial data expressed in stRDF and answers stSPARQL queries —
//! SPARQL 1.1 extended with the `strdf:` spatial functions over WKT
//! literals. This crate implements it over the dictionary-encoded
//! [`teleios_rdf::TripleStore`], with:
//!
//! * a SPARQL subset: `SELECT` / `ASK` / `CONSTRUCT`, BGPs, `FILTER`, `OPTIONAL`,
//!   `UNION`, `MINUS`, `BIND`, `FILTER [NOT] EXISTS`, `DISTINCT`,
//!   `ORDER BY`, `LIMIT/OFFSET`, aggregates
//!   (`COUNT/SUM/AVG/MIN/MAX/SAMPLE`) with `GROUP BY`,
//! * SPARQL Update: `INSERT DATA`, `DELETE DATA`, `DELETE WHERE`, and
//!   `DELETE/INSERT ... WHERE` (the refinement step of demo scenario 2),
//! * spatial extension functions: `strdf:intersects`, `strdf:contains`,
//!   `strdf:within`, `strdf:disjoint`, `strdf:touches`, `strdf:equals`,
//!   `strdf:distance`, `strdf:area`, `strdf:buffer`, `strdf:envelope`,
//!   `strdf:intersection`, `strdf:union2`, `strdf:difference`,
//! * a selectivity-based BGP join-order optimizer (toggleable — E4),
//! * an R-tree spatial sidecar that pre-filters spatial FILTERs against
//!   constants and pushes candidates into the BGP scan (toggleable — E3),
//! * optional RDFS subsumption: `?x rdf:type C` patterns expand over the
//!   in-store `rdfs:subClassOf` closure.
//!
//! ## Example
//!
//! ```
//! use teleios_strabon::Strabon;
//!
//! let mut db = Strabon::new();
//! db.load_turtle(r#"
//!     @prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
//!     @prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
//!     <http://x/h1> a noa:Hotspot ;
//!         strdf:hasGeometry "POINT (23.5 38.0)"^^strdf:WKT .
//! "#).unwrap();
//! let sols = db.query(r#"
//!     PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>
//!     PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
//!     SELECT ?h WHERE {
//!         ?h a noa:Hotspot ; strdf:hasGeometry ?g .
//!         FILTER(strdf:intersects(?g, "POLYGON ((23 37, 24 37, 24 39, 23 39, 23 37))"^^strdf:WKT))
//!     }
//! "#).unwrap();
//! assert_eq!(sols.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod spatial;
pub mod update;

use teleios_exec::{Dispatch, WorkerPool};
use teleios_rdf::store::TripleStore;
use teleios_rdf::term::Term;

/// Errors from parsing or evaluating stSPARQL.
#[derive(Debug, Clone, PartialEq)]
pub enum StrabonError {
    /// Query text failed to parse.
    Parse {
        /// Byte offset.
        position: usize,
        /// Description.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// Expression evaluation failed fatally (type errors inside FILTER
    /// are not fatal — they make the filter false, per SPARQL).
    Eval(String),
    /// Turtle loading failed.
    Load(String),
}

impl std::fmt::Display for StrabonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrabonError::Parse { position, message } => {
                write!(f, "stSPARQL parse error at byte {position}: {message}")
            }
            StrabonError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            StrabonError::Eval(m) => write!(f, "evaluation error: {m}"),
            StrabonError::Load(m) => write!(f, "load error: {m}"),
        }
    }
}

impl std::error::Error for StrabonError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, StrabonError>;

/// Engine configuration toggles (the ablation knobs of E3/E4, plus
/// the parallelism knobs of E13b).
#[derive(Debug, Clone, Copy)]
pub struct StrabonConfig {
    /// Reorder BGP triple patterns by estimated selectivity.
    pub optimize_bgp: bool,
    /// Use the R-tree sidecar to pre-filter spatial FILTERs.
    pub use_spatial_index: bool,
    /// Expand `?x rdf:type C` patterns over the `rdfs:subClassOf`
    /// closure of `C` (RDFS subsumption over the in-store ontology).
    pub rdfs_inference: bool,
    /// Worker threads for BGP probing, spatial-filter evaluation and
    /// the R-tree sidecar build: `0` = the `TELEIOS_THREADS` /
    /// available-parallelism default, `1` = the exact sequential
    /// path. Results are identical at every setting (morsel-order
    /// concatenation — see `teleios-exec`'s determinism contract).
    pub threads: usize,
    /// How the pool distributes morsels when `threads > 1`. Stealing
    /// (the default) wins on skewed binding costs; `Static` is the
    /// ablation baseline.
    pub dispatch: Dispatch,
}

impl Default for StrabonConfig {
    fn default() -> Self {
        StrabonConfig {
            optimize_bgp: true,
            use_spatial_index: true,
            rdfs_inference: false,
            threads: 0,
            dispatch: Dispatch::Stealing,
        }
    }
}

/// A set of query solutions.
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in order.
    pub vars: Vec<String>,
    /// Rows; `None` = unbound.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The binding of `var` in row `row`.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        let i = self.vars.iter().position(|v| v == var)?;
        self.rows.get(row)?.get(i)?.as_ref()
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|t| t.as_ref().map_or(String::new(), |t| t.to_string()))
                    .collect()
            })
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("?{:<w$}  ", v, w = widths[i].saturating_sub(1)));
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// The Strabon engine: a triple store plus spatial sidecar and config.
#[derive(Debug, Default)]
pub struct Strabon {
    pub(crate) store: TripleStore,
    pub(crate) config: StrabonConfig,
    pub(crate) spatial: spatial::SpatialSidecar,
}

impl Strabon {
    /// Empty engine with default configuration.
    pub fn new() -> Strabon {
        Strabon::default()
    }

    /// Empty engine with explicit configuration.
    pub fn with_config(config: StrabonConfig) -> Strabon {
        Strabon { store: TripleStore::new(), config, spatial: spatial::SpatialSidecar::default() }
    }

    /// Current configuration.
    pub fn config(&self) -> StrabonConfig {
        self.config
    }

    /// The worker pool evaluation runs on, sized by
    /// [`StrabonConfig::threads`].
    pub(crate) fn pool(&self) -> WorkerPool {
        match self.config.threads {
            0 => WorkerPool::default(),
            n => WorkerPool::with_threads(n),
        }
    }

    /// Change configuration (invalidates nothing; the sidecar adapts).
    pub fn set_config(&mut self, config: StrabonConfig) {
        self.config = config;
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Mutable access to the store (invalidates the spatial sidecar).
    pub fn store_mut(&mut self) -> &mut TripleStore {
        self.spatial.invalidate();
        &mut self.store
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Load Turtle data. Returns the number of new triples.
    pub fn load_turtle(&mut self, turtle: &str) -> Result<usize> {
        self.spatial.invalidate();
        teleios_rdf::turtle::parse_into(turtle, &mut self.store)
            .map_err(|e| StrabonError::Load(e.to_string()))
    }

    /// Insert one triple of terms. Returns false when it already existed.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        self.spatial.invalidate();
        self.store.insert_terms(s, p, o)
    }

    /// Run a SELECT or ASK query.
    pub fn query(&mut self, text: &str) -> Result<Solutions> {
        let query = parser::parse_query(text)?;
        eval::evaluate_query(self, &query)
    }

    /// Run an update. Returns the number of triples added plus removed.
    pub fn update(&mut self, text: &str) -> Result<usize> {
        let upd = parser::parse_update(text)?;
        update::execute_update(self, &upd)
    }

    /// Run a CONSTRUCT query, returning the derived triples (deduplicated,
    /// sorted). `Strabon::insert` them back, or into another store, to
    /// materialize the derivation.
    pub fn construct(&mut self, text: &str) -> Result<Vec<(Term, Term, Term)>> {
        match parser::parse_query(text)? {
            ast::Query::Construct(q) => eval::evaluate_construct(self, &q),
            _ => Err(StrabonError::Eval("construct() expects a CONSTRUCT query".into())),
        }
    }

    /// Render the evaluation plan of a query without running it: spatial
    /// push-down candidate counts and the optimizer's BGP order with
    /// selectivity estimates.
    pub fn explain(&mut self, text: &str) -> Result<String> {
        let query = parser::parse_query(text)?;
        eval::explain_query(self, &query)
    }
}
