//! stSPARQL abstract syntax tree.

use teleios_rdf::term::Term;

/// A variable or a constant term in a pattern position.
#[derive(Debug, Clone, PartialEq)]
pub enum VarOrTerm {
    /// A `?name` variable.
    Var(String),
    /// A constant RDF term.
    Term(Term),
}

impl VarOrTerm {
    /// The variable name, if a variable.
    pub fn var(&self) -> Option<&str> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }
}

/// A triple pattern in a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTriple {
    /// Subject position.
    pub s: VarOrTerm,
    /// Predicate position.
    pub p: VarOrTerm,
    /// Object position.
    pub o: VarOrTerm,
}

/// An stSPARQL expression (FILTER / BIND / SELECT expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term (IRI or literal).
    Const(Term),
    /// `!e`.
    Not(Box<Expression>),
    /// `-e`.
    Neg(Box<Expression>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expression>,
        /// Right operand.
        right: Box<Expression>,
    },
    /// Function call — builtins (`BOUND`, `REGEX`, `STR`, …) and the
    /// stRDF spatial extension functions (`strdf:intersects`, …), with
    /// the function identified by its full IRI or upper-case builtin name.
    Call {
        /// Resolved function name (IRI for prefixed calls).
        name: String,
        /// Arguments.
        args: Vec<Expression>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One element of a group graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A triple pattern.
    Triple(PatternTriple),
    /// `FILTER(expr)`.
    Filter(Expression),
    /// `OPTIONAL { ... }`.
    Optional(GroupPattern),
    /// `{ A } UNION { B }` (n-way).
    Union(Vec<GroupPattern>),
    /// `BIND(expr AS ?v)`.
    Bind {
        /// The expression.
        expr: Expression,
        /// Target variable.
        var: String,
    },
    /// `MINUS { ... }`.
    Minus(GroupPattern),
    /// `FILTER EXISTS { ... }` / `FILTER NOT EXISTS { ... }`.
    FilterExists {
        /// The tested pattern.
        group: GroupPattern,
        /// True for NOT EXISTS.
        negated: bool,
    },
}

/// A `{ ... }` group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// The elements in syntactic order.
    pub elements: Vec<PatternElement>,
}

/// Projection of a SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    All,
    /// `SELECT ?a ?b (expr AS ?c)`.
    Vars(Vec<ProjectionItem>),
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItem {
    /// Plain variable.
    Var(String),
    /// `(expr AS ?v)`.
    Expr {
        /// The expression.
        expr: Expression,
        /// Output variable.
        var: String,
    },
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Ordering expression.
    pub expr: Expression,
    /// True for DESC.
    pub desc: bool,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// True for SELECT DISTINCT.
    pub distinct: bool,
    /// Projection.
    pub projection: Projection,
    /// WHERE clause.
    pub where_clause: GroupPattern,
    /// GROUP BY variables.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: usize,
}

/// An ASK query.
#[derive(Debug, Clone, PartialEq)]
pub struct AskQuery {
    /// WHERE clause.
    pub where_clause: GroupPattern,
}

/// A CONSTRUCT query: derive new triples from matched patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructQuery {
    /// The triples to instantiate per solution.
    pub template: Vec<TemplateTriple>,
    /// WHERE clause.
    pub where_clause: GroupPattern,
}

/// Any read query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// SELECT.
    Select(SelectQuery),
    /// ASK.
    Ask(AskQuery),
    /// CONSTRUCT.
    Construct(ConstructQuery),
}

/// A ground or template triple in an update.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateTriple {
    /// Subject.
    pub s: VarOrTerm,
    /// Predicate.
    pub p: VarOrTerm,
    /// Object.
    pub o: VarOrTerm,
}

/// An stSPARQL update request.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// `INSERT DATA { ground triples }`.
    InsertData(Vec<TemplateTriple>),
    /// `DELETE DATA { ground triples }`.
    DeleteData(Vec<TemplateTriple>),
    /// `DELETE WHERE { patterns }` (delete every instantiation).
    DeleteWhere(Vec<TemplateTriple>),
    /// `DELETE { t } INSERT { t } WHERE { p }` (either template optional).
    Modify {
        /// Triples to delete per solution.
        delete: Vec<TemplateTriple>,
        /// Triples to insert per solution.
        insert: Vec<TemplateTriple>,
        /// The solution-producing pattern.
        where_clause: GroupPattern,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_or_term_accessor() {
        assert_eq!(VarOrTerm::Var("x".into()).var(), Some("x"));
        assert_eq!(VarOrTerm::Term(Term::iri("http://x/")).var(), None);
    }
}
