//! stSPARQL lexer.

use crate::StrabonError;

/// A token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// Byte offset.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `?name` or `$name`.
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// `prefix:local` (possibly empty prefix).
    PName(String, String),
    /// Bare word (keywords, `a`, `true`, `false`).
    Word(String),
    /// String literal body (unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal/double literal.
    Num(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `^^`
    DtSep,
    /// `@lang`
    LangTag(String),
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Tokenize stSPARQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, StrabonError> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < b.len() {
        let c = b[pos];
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if c == b'#' {
            while pos < b.len() && b[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        match c {
            b'?' | b'$' => {
                pos += 1;
                let s = take_while(b, &mut pos, |c| c.is_ascii_alphanumeric() || c == b'_');
                if s.is_empty() {
                    return Err(err(start, "empty variable name"));
                }
                out.push(Token { kind: Tok::Var(String::from_utf8_lossy(s).into_owned()), pos: start });
            }
            b'<' => {
                // IRI when a '>' appears before any whitespace; else `<`/`<=`.
                let mut j = pos + 1;
                let mut is_iri = false;
                while j < b.len() {
                    match b[j] {
                        b'>' => {
                            is_iri = true;
                            break;
                        }
                        x if x.is_ascii_whitespace() => break,
                        b'<' => break,
                        _ => j += 1,
                    }
                }
                if is_iri && j > pos + 1 {
                    let iri = String::from_utf8_lossy(&b[pos + 1..j]).into_owned();
                    pos = j + 1;
                    out.push(Token { kind: Tok::Iri(iri), pos: start });
                } else if b.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    out.push(Token { kind: Tok::Le, pos: start });
                } else {
                    pos += 1;
                    out.push(Token { kind: Tok::Lt, pos: start });
                }
            }
            b'"' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(pos) {
                        None => return Err(err(start, "unterminated string")),
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            pos += 1;
                            match b.get(pos) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                other => {
                                    return Err(err(
                                        pos,
                                        format!("unknown escape {other:?}"),
                                    ))
                                }
                            }
                            pos += 1;
                        }
                        Some(_) => {
                            let ch_len = input[pos..].chars().next().map_or(1, char::len_utf8);
                            s.push_str(&input[pos..pos + ch_len]);
                            pos += ch_len;
                        }
                    }
                }
                out.push(Token { kind: Tok::Str(s), pos: start });
            }
            b'@' => {
                pos += 1;
                let s = take_while(b, &mut pos, |c| c.is_ascii_alphanumeric() || c == b'-');
                if s.is_empty() {
                    return Err(err(start, "empty language tag"));
                }
                out.push(Token {
                    kind: Tok::LangTag(String::from_utf8_lossy(s).into_owned()),
                    pos: start,
                });
            }
            b'^' => {
                if b.get(pos + 1) == Some(&b'^') {
                    pos += 2;
                    out.push(Token { kind: Tok::DtSep, pos: start });
                } else {
                    return Err(err(pos, "expected '^^'"));
                }
            }
            b'0'..=b'9' => {
                let (tok, np) = lex_number(input, pos)?;
                pos = np;
                out.push(Token { kind: tok, pos: start });
            }
            b'.' => {
                // Decimal like `.5` or statement dot.
                if b.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let (tok, np) = lex_number(input, pos)?;
                    pos = np;
                    out.push(Token { kind: tok, pos: start });
                } else {
                    pos += 1;
                    out.push(Token { kind: Tok::Dot, pos: start });
                }
            }
            b'{' => {
                pos += 1;
                out.push(Token { kind: Tok::LBrace, pos: start });
            }
            b'}' => {
                pos += 1;
                out.push(Token { kind: Tok::RBrace, pos: start });
            }
            b'(' => {
                pos += 1;
                out.push(Token { kind: Tok::LParen, pos: start });
            }
            b')' => {
                pos += 1;
                out.push(Token { kind: Tok::RParen, pos: start });
            }
            b';' => {
                pos += 1;
                out.push(Token { kind: Tok::Semicolon, pos: start });
            }
            b',' => {
                pos += 1;
                out.push(Token { kind: Tok::Comma, pos: start });
            }
            b'=' => {
                pos += 1;
                out.push(Token { kind: Tok::Eq, pos: start });
            }
            b'!' => {
                if b.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    out.push(Token { kind: Tok::Ne, pos: start });
                } else {
                    pos += 1;
                    out.push(Token { kind: Tok::Bang, pos: start });
                }
            }
            b'>' => {
                if b.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    out.push(Token { kind: Tok::Ge, pos: start });
                } else {
                    pos += 1;
                    out.push(Token { kind: Tok::Gt, pos: start });
                }
            }
            b'&' => {
                if b.get(pos + 1) == Some(&b'&') {
                    pos += 2;
                    out.push(Token { kind: Tok::AndAnd, pos: start });
                } else {
                    return Err(err(pos, "expected '&&'"));
                }
            }
            b'|' => {
                if b.get(pos + 1) == Some(&b'|') {
                    pos += 2;
                    out.push(Token { kind: Tok::OrOr, pos: start });
                } else {
                    return Err(err(pos, "expected '||'"));
                }
            }
            b'+' => {
                pos += 1;
                out.push(Token { kind: Tok::Plus, pos: start });
            }
            b'-' => {
                pos += 1;
                out.push(Token { kind: Tok::Minus, pos: start });
            }
            b'*' => {
                pos += 1;
                out.push(Token { kind: Tok::Star, pos: start });
            }
            b'/' => {
                pos += 1;
                out.push(Token { kind: Tok::Slash, pos: start });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let word = take_while(b, &mut pos, |c| {
                    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.'
                });
                let mut word = String::from_utf8_lossy(word).into_owned();
                // A trailing '.' belongs to the statement, not the word.
                while word.ends_with('.') {
                    word.pop();
                    pos -= 1;
                }
                // Prefixed name?
                if b.get(pos) == Some(&b':') {
                    pos += 1;
                    let local = take_while(b, &mut pos, |c| {
                        c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b'%'
                    });
                    let mut local = String::from_utf8_lossy(local).into_owned();
                    while local.ends_with('.') {
                        local.pop();
                        pos -= 1;
                    }
                    out.push(Token { kind: Tok::PName(word, local), pos: start });
                } else {
                    out.push(Token { kind: Tok::Word(word), pos: start });
                }
            }
            b':' => {
                // Empty-prefix prefixed name `:local`.
                pos += 1;
                let local = take_while(b, &mut pos, |c| {
                    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b'%'
                });
                let mut local = String::from_utf8_lossy(local).into_owned();
                while local.ends_with('.') {
                    local.pop();
                    pos -= 1;
                }
                out.push(Token { kind: Tok::PName(String::new(), local), pos: start });
            }
            other => {
                return Err(err(pos, format!("unexpected character '{}'", other as char)));
            }
        }
    }
    out.push(Token { kind: Tok::Eof, pos: input.len() });
    Ok(out)
}

fn take_while<'a>(b: &'a [u8], pos: &mut usize, f: impl Fn(u8) -> bool) -> &'a [u8] {
    let start = *pos;
    while *pos < b.len() && f(b[*pos]) {
        *pos += 1;
    }
    &b[start..*pos]
}

fn lex_number(input: &str, start: usize) -> Result<(Tok, usize), StrabonError> {
    let b = input.as_bytes();
    let mut pos = start;
    let mut is_float = false;
    while pos < b.len() {
        match b[pos] {
            b'0'..=b'9' => pos += 1,
            b'.' if !is_float && b.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                is_float = true;
                pos += 1;
            }
            b'e' | b'E' => {
                is_float = true;
                pos += 1;
                if matches!(b.get(pos), Some(b'+') | Some(b'-')) {
                    pos += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..pos];
    let tok = if is_float {
        Tok::Num(text.parse().map_err(|e| err(start, format!("bad number: {e}")))?)
    } else {
        Tok::Int(text.parse().map_err(|e| err(start, format!("bad number: {e}")))?)
    };
    Ok((tok, pos))
}

fn err(pos: usize, msg: impl Into<String>) -> StrabonError {
    StrabonError::Parse { position: pos, message: msg.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn variables_and_words() {
        assert_eq!(
            kinds("SELECT ?x $y WHERE"),
            vec![
                Tok::Word("SELECT".into()),
                Tok::Var("x".into()),
                Tok::Var("y".into()),
                Tok::Word("WHERE".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        assert_eq!(
            kinds("<http://x/a> < 5 <= ?v"),
            vec![
                Tok::Iri("http://x/a".into()),
                Tok::Lt,
                Tok::Int(5),
                Tok::Le,
                Tok::Var("v".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn prefixed_names() {
        assert_eq!(
            kinds("noa:Hotspot strdf:hasGeometry :local"),
            vec![
                Tok::PName("noa".into(), "Hotspot".into()),
                Tok::PName("strdf".into(), "hasGeometry".into()),
                Tok::PName("".into(), "local".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pname_trailing_dot_is_statement_dot() {
        assert_eq!(
            kinds("?s a noa:Hotspot ."),
            vec![
                Tok::Var("s".into()),
                Tok::Word("a".into()),
                Tok::PName("noa".into(), "Hotspot".into()),
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn typed_literal_tokens() {
        assert_eq!(
            kinds("\"POINT (1 2)\"^^strdf:WKT"),
            vec![
                Tok::Str("POINT (1 2)".into()),
                Tok::DtSep,
                Tok::PName("strdf".into(), "WKT".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lang_tag() {
        assert_eq!(
            kinds("\"fire\"@en"),
            vec![Tok::Str("fire".into()), Tok::LangTag("en".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 2.5 .5 1e3"),
            vec![Tok::Int(42), Tok::Num(2.5), Tok::Num(0.5), Tok::Num(1000.0), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("&& || ! != = >= >"),
            vec![Tok::AndAnd, Tok::OrOr, Tok::Bang, Tok::Ne, Tok::Eq, Tok::Ge, Tok::Gt, Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("?x # comment\n?y"), vec![Tok::Var("x".into()), Tok::Var("y".into()), Tok::Eof]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b\n""#), vec![Tok::Str("a\"b\n".into()), Tok::Eof]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("?").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("&x").is_err());
    }
}
