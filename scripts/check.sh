#!/usr/bin/env bash
# Full pre-merge gate: release build, test suite, and lints.
#
# Usage: scripts/check.sh
# Run from anywhere inside the repo; requires only the Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets"
cargo clippy --workspace --all-targets

echo "==> all checks passed"
