#!/usr/bin/env bash
# Pre-merge gate, in three tiers:
#
#   scripts/check.sh --quick   build + tier-1 tests only
#   scripts/check.sh           default gate: the above, plus the
#                              teleios-lint workspace invariants,
#                              clippy, and the E14/E13b/E16 smoke
#                              runs (a hung-stage, wedged-deque, or
#                              broken-recovery regression fails this
#                              gate instead of hanging it)
#   scripts/check.sh --full    default gate, plus the exhaustive
#                              WAL-truncation recovery sweep and the loom
#                              model-checking suite: exhaustive
#                              interleaving of the exec/cancel races
#                              (first-wins cancel, reason publication,
#                              poll wakeup, bounded-queue halt/drain,
#                              watchdog-registry protocol, lock-order
#                              witness, steal-deque owner/thief and
#                              cancellation races) under `--features loom`,
#                              bounded by a timeout so a scheduler
#                              regression fails rather than wedges
#
# Run from anywhere inside the repo; requires only the Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
full=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        --full) full=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$quick" -eq 1 ]; then
    echo "==> quick checks passed (lint, clippy + E14 smoke skipped)"
    exit 0
fi

# Workspace invariants (thread discipline, no panics in library code,
# error-type contracts, crate-root attributes, lock-order acyclicity,
# cancel-safe pool dispatch, no swallowed workspace Results, plus the
# path-sensitive dataflow rules: txn-leak, guard-across-blocking,
# loop-cancel-poll): see crates/lint. The self-test proves each rule
# still fires at exact positions before the workspace scan is
# trusted; GitHub annotation output lands findings inline on PR diffs
# when CI runs this gate. --strict fails on stale allow markers so
# suppressions can't outlive the code they excused.
echo "==> teleios-lint --self-test"
cargo run --release -p teleios-lint -- --self-test

# The lint is part of the inner loop, so it gets a perf budget of its
# own: a CFG-engine regression that makes the scan crawl should fail
# the gate, not silently tax every future run. Override with
# TELEIOS_LINT_BUDGET_MS for slow CI hardware. The summary cache keeps
# warm runs well under budget; on overrun the scan is re-run with
# --timings so the log shows which phase (or rule) blew up.
lint_budget_ms="${TELEIOS_LINT_BUDGET_MS:-10000}"
lint_cache_dir="${TELEIOS_LINT_CACHE_DIR:-target/lint-cache}"
echo "==> teleios-lint --strict (budget ${lint_budget_ms}ms, cache ${lint_cache_dir})"
lint_start_ns=$(date +%s%N)
cargo run --release -q -p teleios-lint -- --strict --format github --cache "$lint_cache_dir"
lint_elapsed_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
echo "    lint scan took ${lint_elapsed_ms}ms"
if [ "$lint_elapsed_ms" -gt "$lint_budget_ms" ]; then
    echo "teleios-lint exceeded its ${lint_budget_ms}ms budget (${lint_elapsed_ms}ms); timing breakdown:" >&2
    cargo run --release -q -p teleios-lint -- --strict --format github \
        --cache "$lint_cache_dir" --timings >/dev/null || true
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets"
cargo clippy --workspace --all-targets

# Deadline supervision must bound a wedged stage: if cancellation
# regresses, the smoke run wedges and the timeout turns that into a
# failure rather than a hung gate.
echo "==> E14 smoke (timeout budgets)"
timeout 300 cargo run --release -p teleios-bench --bin exp_timeout_budgets -- --smoke

# The stealing scheduler must return bit-identical results to static
# dispatch (the bin asserts it) and must not deadlock on a skewed
# workload — the timeout turns a wedged deque into a failure.
echo "==> E13b smoke (work-stealing dispatch)"
timeout 300 cargo run --release -p teleios-bench --bin exp_work_stealing -- --smoke

# The storage engine must recover the exact committed state after
# every injected crash (the bin asserts bit-identical recovery per
# row); the timeout turns a wedged replay loop into a failure.
echo "==> E16 smoke (durability / crash recovery)"
timeout 300 cargo run --release -p teleios-bench --bin exp_durability -- --smoke

if [ "$full" -eq 1 ]; then
    # Exhaustive schedule exploration is exponential in yield points;
    # the models are small, but a scheduler bug could loop — bound it.
    echo "==> loom model checking (exec/cancel)"
    timeout 600 cargo test --release -p teleios-exec --features loom --test loom

    # The exhaustive WAL-truncation sweep: recovery at every byte
    # offset of multi-seed logs (the fast per-commit sweep already ran
    # in tier 1; this is the #[ignore]d large variant).
    echo "==> store recovery property sweep (exhaustive)"
    timeout 600 cargo test --release -p teleios-store --test recovery_properties -- --ignored
fi

echo "==> all checks passed"
