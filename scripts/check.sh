#!/usr/bin/env bash
# Pre-merge gate: release build, test suite, lints, and the E14 smoke
# run (a hung-stage regression fails this gate instead of hanging it).
#
# Usage: scripts/check.sh [--quick]
#   --quick   build + tier-1 tests only (skips clippy and the E14 smoke)
# Run from anywhere inside the repo; requires only the Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$quick" -eq 1 ]; then
    echo "==> quick checks passed (clippy + E14 smoke skipped)"
    exit 0
fi

echo "==> cargo clippy --workspace --all-targets"
cargo clippy --workspace --all-targets

# Deadline supervision must bound a wedged stage: if cancellation
# regresses, the smoke run wedges and the timeout turns that into a
# failure rather than a hung gate.
echo "==> E14 smoke (timeout budgets)"
timeout 300 cargo run --release -p teleios-bench --bin exp_timeout_budgets -- --smoke

echo "==> all checks passed"
