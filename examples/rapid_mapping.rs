//! Rapid mapping: automatic fire-map generation enriched with linked
//! open data — "of paramount importance to NOA, since the creation of
//! such maps in the past has been a time-consuming manual process"
//! (paper §4).
//!
//! Run with: `cargo run --example rapid_mapping`

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::Observatory;
use teleios::geo::{Coord, Envelope};
use teleios::ingest::seviri::FireEvent;
use teleios::noa::ProcessingChain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut obs = Observatory::with_defaults(7);

    // An emergency: a strong fire near the biggest city.
    let city = obs
        .world
        .places
        .iter()
        .max_by_key(|p| p.population)
        .expect("world has places")
        .clone();
    println!("fire reported near {} (pop. {})\n", city.name, city.population);

    let spec = AcquisitionSpec {
        seed: 99,
        rows: 96,
        cols: 96,
        acquisition: "2007-08-25T14:00:00Z".into(),
        satellite: "MSG2".into(),
        // The fire burns at the city's edge (guaranteed on land).
        fires: vec![FireEvent { center: city.location, radius: 0.1, intensity: 1.0 }],
        cloud_cover: 0.02,
        glint_rate: 0.01,
    };
    let id = obs.acquire_scene(&spec)?;
    obs.run_chain(&id, &ProcessingChain::operational())?;
    obs.refine_products()?;

    // Generate the fire map for a window around the city.
    let region = Envelope::new(
        Coord::new(city.location.x - 0.5, city.location.y - 0.5),
        Coord::new(city.location.x + 0.5, city.location.y + 0.5),
    );
    let map = obs.fire_map(&region)?;
    println!("{}", map.to_text());

    // The layers come straight from linked data: enumerate what the map
    // joined together.
    for layer in &map.layers {
        if layer.name == "places" {
            let names: Vec<&str> =
                layer.features.iter().map(|(_, l)| l.as_str()).collect();
            println!("populated places on the map: {}", names.join(", "));
        }
    }
    let hotspots = map.layer("hotspots").expect("hotspot layer");
    println!("hotspot features mapped: {}", hotspots.features.len());

    // Emergency-response query: which places lie within 0.3 degrees of a
    // surviving hotspot?
    let sols = obs.search(
        "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
         PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
         PREFIX gn: <http://sws.geonames.org/ontology#>\n\
         SELECT DISTINCT ?name WHERE {\n\
           ?h a noa:Hotspot ; strdf:hasGeometry ?hg .\n\
           ?place a gn:PopulatedPlace ; gn:name ?name ; strdf:hasGeometry ?pg .\n\
           FILTER(strdf:distance(?hg, ?pg) < 0.3)\n\
         } ORDER BY ?name",
    )?;
    println!("\nplaces within 0.3 deg of an active hotspot:\n{}", sols.to_text());
    Ok(())
}
