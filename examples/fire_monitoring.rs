//! Demo scenario 1 — the NOA processing chain.
//!
//! Acquires a day of scenes, runs the chain with *different
//! classification submodules*, compares their products against ground
//! truth, and uses the search facilities to retrieve raw data and
//! derived products from previous executions — exactly the walkthrough
//! of paper §4.
//!
//! Run with: `cargo run --example fire_monitoring`

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::{portal, Observatory};
use teleios::geo::Coord;
use teleios::ingest::seviri::FireEvent;
use teleios::noa::hotspot::HotspotClassifier;
use teleios::noa::{accuracy, ProcessingChain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut obs = Observatory::with_defaults(2007);

    // A fire front advancing through the day: three acquisitions.
    let fire_track = [
        Coord::new(22.2, 37.4),
        Coord::new(22.3, 37.5),
        Coord::new(22.4, 37.6),
    ];
    let mut products = Vec::new();
    for (i, center) in fire_track.iter().enumerate() {
        let spec = AcquisitionSpec {
            seed: 100 + i as u64,
            rows: 96,
            cols: 96,
            acquisition: format!("2007-08-25T{:02}:00:00Z", 10 + 2 * i),
            satellite: "MSG2".into(),
            fires: vec![FireEvent { center: *center, radius: 0.09, intensity: 0.9 }],
            cloud_cover: 0.04,
            glint_rate: 0.01,
        };
        products.push(obs.acquire_scene(&spec)?);
    }
    println!("acquired {} scenes of the fire front\n", products.len());

    // Compare classification submodules on the latest scene.
    let chains = [
        ProcessingChain {
            classifier: HotspotClassifier::Threshold { kelvin: 318.0 },
            ..ProcessingChain::operational()
        },
        ProcessingChain {
            classifier: HotspotClassifier::Adaptive { sigma: 4.0 },
            ..ProcessingChain::operational()
        },
        ProcessingChain {
            classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
            ..ProcessingChain::operational()
        },
    ];
    let latest = products.last().expect("scenes acquired").clone();
    let truth = obs.truth_for(&latest)?;
    println!("classifier comparison on {latest} (vs ground truth):");
    println!("{:<22} {:>9} {:>9} {:>9} {:>10}", "chain", "precision", "recall", "F1", "features");
    for chain in &chains {
        let report = obs.run_chain(&latest, chain)?;
        let acc = accuracy::score(&report.output.mask, &truth)?;
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>10}",
            chain.id(),
            acc.precision(),
            acc.recall(),
            acc.f1(),
            report.output.features.len()
        );
    }
    println!();

    // Run the operational chain over the full day.
    for id in &products[..products.len() - 1] {
        obs.run_chain(id, &ProcessingChain::operational())?;
    }

    // Discovery: retrieve raw data and derived products from previous
    // executions (the search facilities of the demo GUI).
    println!("product browser:\n{}", portal::list_products(&mut obs)?);
    let derived = obs.search(
        "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
         SELECT ?d ?chain WHERE { ?d a noa:DerivedProduct ; noa:isProducedByProcessingChain ?chain } ORDER BY ?d",
    )?;
    println!("derived products:\n{}", derived.to_text());

    // The flagship query: fires near archaeological sites.
    println!("{}", portal::run_flagship(&mut obs, "MSG2", "2007-08-25", 0.3)?);

    // End of the event: refine products and derive the burnt-area scar
    // with its stRDF valid-time period.
    obs.refine_products()?;
    let scars = obs.derive_burnt_area(&products, "firefront-0825")?;
    let burnt = obs.search(
        "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
         SELECT ?b ?t WHERE {            ?b a <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#BurntArea> ;               strdf:hasValidTime ?t } ORDER BY ?b",
    )?;
    let survivors = teleios::noa::refine::surviving_hotspot_geometries(&mut obs.strabon, &latest)?;
    let ha: f64 = survivors
        .iter()
        .map(|p| teleios::geo::crs::geodesic_area_m2(&teleios::geo::Geometry::Polygon(p.clone())))
        .sum::<f64>()
        / 10_000.0;
    println!("surviving hotspot area on {latest}: {ha:.0} ha");
    println!("burnt-area products ({scars} scar feature(s)):
{}", burnt.to_text());
    Ok(())
}
