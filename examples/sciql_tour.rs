//! A tour of the SciQL array query language: the declarative image
//! processing surface of the database tier (paper §1: cropping,
//! resampling, content analysis "in a user-friendly high-level
//! declarative language").
//!
//! Run with: `cargo run --example sciql_tour`

use teleios::monet::Catalog;
use teleios::sciql::{execute, SciqlResult};

fn show(cat: &Catalog, label: &str, q: &str) -> Result<(), Box<dyn std::error::Error>> {
    print!("{label}\n  sciql> {q}\n  ");
    match execute(cat, q)? {
        SciqlResult::Done => println!("ok\n"),
        SciqlResult::Scalar(s) => println!("= {s}\n"),
        SciqlResult::Array(a) => {
            println!("= array {:?} ({} cells)", a.shape(), a.len());
            if a.ndim() == 2 && a.shape()[0] <= 8 && a.shape()[1] <= 8 {
                let cols = a.shape()[1];
                for r in 0..a.shape()[0] {
                    let row: Vec<String> = (0..cols)
                        .map(|c| format!("{:6.1}", a.get(&[r, c]).expect("in range")))
                        .collect();
                    println!("    {}", row.join(" "));
                }
            }
            println!();
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cat = Catalog::new();

    // Create an 8x8 "thermal image" array and paint a hot blob into it.
    show(
        &cat,
        "1. arrays are first-class objects:",
        "CREATE ARRAY ir (y INT DIMENSION [8], x INT DIMENSION [8], v DOUBLE DEFAULT 300)",
    )?;
    show(
        &cat,
        "2. in-place updates over a slice (a synthetic fire):",
        "UPDATE ir[2..5, 2..5] SET v = 340 + x - y",
    )?;
    show(&cat, "3. element-wise queries produce new arrays:", "SELECT v - 300 FROM ir")?;
    show(&cat, "4. slicing crops without leaving the language:", "SELECT v FROM ir[0..4, 0..4]")?;
    show(
        &cat,
        "5. full reductions:",
        "SELECT MAX(v) FROM ir",
    )?;
    show(
        &cat,
        "6. structural group-by (SciQL's tiles) downsamples:",
        "SELECT AVG(v) FROM ir GROUP BY TILES [4, 4]",
    )?;
    show(
        &cat,
        "7. classification as a CASE expression (the NOA hotspot step):",
        "SELECT CASE WHEN v > 318 THEN 1 ELSE 0 END FROM ir",
    )?;
    show(
        &cat,
        "8. dimension variables join content with position:",
        "SELECT SUM(CASE WHEN v > 318 AND x < 4 THEN 1 ELSE 0 END) FROM ir",
    )?;
    show(&cat, "9. arrays are managed like tables:", "DROP ARRAY ir")?;
    Ok(())
}
