//! Quickstart: stand up a Virtual Earth Observatory, acquire a scene,
//! run the fire-monitoring chain, and query the results three ways
//! (stSPARQL, SciQL, SQL).
//!
//! Run with: `cargo run --example quickstart`

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::{portal, Observatory};
use teleios::noa::ProcessingChain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic world: coastline, land cover, cities, temples,
    // roads — all published as linked data in Strabon.
    let mut obs = Observatory::with_defaults(42);
    println!("{}", portal::overview(&obs));

    // Simulate one MSG/SEVIRI acquisition with a forest fire.
    let id = obs.acquire_scene(&AcquisitionSpec::small_test(7))?;
    println!("acquired product {id} (metadata cataloged; payload still cold in the vault)\n");

    // Run the five-module NOA processing chain.
    let report = obs.run_chain(&id, &ProcessingChain::operational())?;
    println!(
        "chain '{}' detected {} hotspot pixel(s) in {} feature(s); timings: \
         ingest {:?}, crop {:?}, georef {:?}, classify {:?}, shapefile {:?}\n",
        report.derived_id,
        report.output.hotspot_pixels(),
        report.output.features.len(),
        report.output.timings.ingest,
        report.output.timings.crop,
        report.output.timings.georef,
        report.output.timings.classify,
        report.output.timings.shapefile,
    );

    // 1. stSPARQL: semantic discovery over products and hotspots.
    let sols = obs.search(
        "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
         PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
         SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c } ORDER BY DESC(?c) LIMIT 5",
    )?;
    println!("top hotspots by confidence (stSPARQL):\n{}", sols.to_text());

    // 2. SciQL: declarative array processing over the ingested band.
    let mean = obs.sciql(&format!("SELECT AVG(v) FROM {id}_band1"))?.scalar()?;
    println!("scene mean IR_039 brightness temperature (SciQL): {mean:.1} K\n");

    // 3. SQL: the relational side of the catalog.
    obs.sql("CREATE TABLE runs (product STRING, chain STRING, hotspots INT)")?;
    obs.sql(&format!(
        "INSERT INTO runs VALUES ('{id}', '{}', {})",
        report.derived_id,
        report.output.hotspot_pixels()
    ))?;
    let rs = obs.sql("SELECT * FROM runs")?;
    println!("run log (SQL):\n{}", rs.to_text());

    // Peek at the query plan Strabon chose (optimizer + spatial index).
    let plan = obs.strabon.explain(
        "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
         PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
         SELECT ?h WHERE { ?h a noa:Hotspot ; strdf:hasGeometry ?g . \
           FILTER(strdf:intersects(?g, \"POLYGON ((21 36, 24 36, 24 39, 21 39, 21 36))\"^^strdf:WKT)) }",
    )?;
    println!("query plan:\n{plan}");

    println!("{}", portal::overview(&obs));
    Ok(())
}
