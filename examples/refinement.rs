//! Demo scenario 2 — improving generated products.
//!
//! The low spatial resolution of the MSG/SEVIRI sensor makes the hotspot
//! shapefiles include detections over the sea (glint artifacts, mixed
//! coastal pixels). This example shows the refinement post-processing
//! step: the shapefiles are transformed into RDF, compared with
//! coastline linked data through an stSPARQL `DELETE/INSERT ... WHERE`
//! statement, and the inconsistent geometries are reclassified. The
//! user sees the exact update statement and the accuracy effect.
//!
//! Run with: `cargo run --example refinement`

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::Observatory;
use teleios::linked::emit::landmass_literal;
use teleios::noa::refine;
use teleios::noa::{accuracy, ProcessingChain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut obs = Observatory::with_defaults(42);

    // Acquire a scene with a real fire AND a high glint rate, so the
    // threshold classifier produces sea false positives.
    let mut spec = AcquisitionSpec::small_test(4);
    spec.rows = 96;
    spec.cols = 96;
    spec.glint_rate = 0.03;
    spec.cloud_cover = 0.0;
    let id = obs.acquire_scene(&spec)?;
    let report = obs.run_chain(&id, &ProcessingChain::operational())?;
    let truth = obs.truth_for(&id)?;

    let before = accuracy::score(&report.output.mask, &truth)?;
    println!(
        "before refinement: {} features, precision {:.3}, recall {:.3} ({} false positives)\n",
        report.output.features.len(),
        before.precision(),
        before.recall(),
        before.false_positives,
    );

    // The stSPARQL updates the demo presents to the user.
    let landmass = landmass_literal(&obs.world);
    let [refute_stmt, clip_stmt] = refine::refinement_updates(&landmass);
    println!("refinement update 1 (refute sea detections):\n{refute_stmt}\n");
    println!("refinement update 2 (clip coastal geometries):\n{clip_stmt}\n");

    // Execute it.
    let stats = obs.refine_products()?;
    println!(
        "refinement: {} hotspot(s) examined, {} kept ({} geometry-clipped), {} reclassified as RefutedHotspot\n",
        stats.before, stats.kept, stats.clipped, stats.refuted
    );

    // Observe the effect: accuracy of the surviving product.
    let survivors = refine::surviving_hotspot_geometries(&mut obs.strabon, &id)?;
    let polys: Vec<&teleios::geo::geometry::Polygon> = survivors.iter().collect();
    let raster = obs.raster_for(&id)?;
    let refined_mask =
        refine::features_to_mask(&polys, &raster.geo, raster.rows(), raster.cols());
    let after = accuracy::score(&refined_mask, &truth)?;
    println!(
        "after refinement:  {} features, precision {:.3}, recall {:.3} ({} false positives)",
        survivors.len(),
        after.precision(),
        after.recall(),
        after.false_positives,
    );
    println!(
        "\nthematic accuracy: precision {:.3} -> {:.3}, F1 {:.3} -> {:.3}",
        before.precision(),
        after.precision(),
        before.f1(),
        after.f1()
    );

    // The refuted detections remain inspectable.
    let refuted = obs.search(&format!(
        "SELECT ?h WHERE {{ ?h a <{}> }}",
        refine::REFUTED_HOTSPOT
    ))?;
    println!("\nrefuted detections kept for audit: {}", refuted.len());
    Ok(())
}
