//! Cross-crate integration tests: the full Virtual Earth Observatory
//! pipeline, from synthetic acquisition to refined semantic products.

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::{portal, Observatory};
use teleios::geo::Coord;
use teleios::ingest::seviri::FireEvent;
use teleios::noa::hotspot::HotspotClassifier;
use teleios::noa::{accuracy, ProcessingChain};

fn fire_spec(seed: u64, center: Coord) -> AcquisitionSpec {
    AcquisitionSpec {
        seed,
        rows: 80,
        cols: 80,
        acquisition: format!("2007-08-25T{:02}:00:00Z", seed % 24),
        satellite: "MSG2".into(),
        fires: vec![FireEvent { center, radius: 0.09, intensity: 0.9 }],
        cloud_cover: 0.02,
        glint_rate: 0.02,
    }
}

/// A land coordinate comfortably inside the default world.
fn inland(obs: &Observatory) -> Coord {
    // The world centre is always land (star-shaped landmass).
    obs.region().center()
}

#[test]
fn full_pipeline_acquire_process_refine_map() {
    let mut obs = Observatory::with_defaults(42);
    let fire_at = inland(&obs);
    let id = obs.acquire_scene(&fire_spec(1, fire_at)).unwrap();

    // Vault is lazy: nothing materialized yet.
    assert_eq!(obs.vault.stats().materializations, 0);

    // Run the chain; hotspots must be found and published.
    let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
    assert!(report.output.hotspot_pixels() > 0);
    assert!(report.features_published > 0);
    assert_eq!(obs.vault.stats().materializations, 1);

    // Refinement never hurts pixel precision.
    let truth = obs.truth_for(&id).unwrap();
    let before = accuracy::score(&report.output.mask, &truth).unwrap();
    let stats = obs.refine_products().unwrap();
    assert_eq!(stats.before, report.output.features.len());
    let survivors =
        teleios::noa::refine::surviving_hotspot_geometries(&mut obs.strabon, &id).unwrap();
    let polys: Vec<&teleios::geo::geometry::Polygon> = survivors.iter().collect();
    let raster = obs.raster_for(&id).unwrap();
    let refined =
        teleios::noa::refine::features_to_mask(&polys, &raster.geo, raster.rows(), raster.cols());
    let after = accuracy::score(&refined, &truth).unwrap();
    assert!(after.precision() >= before.precision() - 1e-9);
    // The real fire survives refinement.
    assert!(after.recall() > 0.5, "recall collapsed to {}", after.recall());

    // The fire map shows the hotspots plus linked-data layers.
    let region = obs.region();
    let map = obs.fire_map(&region).unwrap();
    assert!(!map.layer("hotspots").unwrap().features.is_empty());
    assert!(!map.layer("places").unwrap().features.is_empty());
    assert_eq!(map.layer("coastline").unwrap().features.len(), 1);
}

#[test]
fn flagship_query_end_to_end() {
    let mut obs = Observatory::with_defaults(42);
    let site = obs.world.sites[0].location;
    let id = obs.acquire_scene(&fire_spec(2, site)).unwrap();
    obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
    let sols = obs
        .search(&portal::flagship_query("MSG2", "2007-08-25", 0.3))
        .unwrap();
    assert!(!sols.is_empty());
    // Wrong satellite: empty.
    let none = obs
        .search(&portal::flagship_query("Sentinel2", "2007-08-25", 0.3))
        .unwrap();
    assert!(none.is_empty());
    // Wrong day: empty.
    let none = obs
        .search(&portal::flagship_query("MSG2", "2007-09-01", 0.3))
        .unwrap();
    assert!(none.is_empty());
}

#[test]
fn sciql_and_sql_sides_agree_on_hotspot_counts() {
    let mut obs = Observatory::with_defaults(42);
    let id = obs.acquire_scene(&fire_spec(3, inland(&obs))).unwrap();
    let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();

    // SciQL counts hotspot pixels in the ingested mask array.
    let via_sciql = obs
        .sciql(&format!("SELECT SUM(v) FROM {id}_hotspots"))
        .unwrap()
        .scalar()
        .unwrap();
    assert_eq!(via_sciql as usize, report.output.hotspot_pixels());

    // The stSPARQL side counts the published features.
    let via_sparql = obs
        .search(&format!(
            "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
             SELECT ?h WHERE {{ ?h a noa:Hotspot ; noa:isDerivedFrom \
             <http://teleios.di.uoa.gr/products/{id}> }}"
        ))
        .unwrap();
    assert_eq!(via_sparql.len(), report.output.features.len());
}

#[test]
fn multi_scene_archive_discovery_by_time() {
    let mut obs = Observatory::with_defaults(42);
    let center = inland(&obs);
    for seed in 0..4 {
        obs.acquire_scene(&fire_spec(seed, center)).unwrap();
    }
    // Vault knows all four, database holds none (lazy).
    assert_eq!(obs.vault.catalog().len(), 4);
    assert_eq!(obs.vault.stats().materializations, 0);
    // Temporal discovery through the vault catalog.
    let early = obs
        .vault
        .catalog()
        .acquired_between("2007-08-25T00:00:00Z", "2007-08-25T02:30:00Z");
    assert_eq!(early.len(), 3); // seeds 0, 1, 2 at hours 00..02
    // And through stSPARQL.
    let sols = obs
        .search(
            "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n\
             SELECT ?p ?t WHERE { ?p a noa:RawImage ; noa:hasAcquisitionTime ?t . \
             FILTER(STR(?t) < \"2007-08-25T02:30:00Z\") }",
        )
        .unwrap();
    assert_eq!(sols.len(), 3);
}

#[test]
fn classifier_tradeoffs_hold() {
    // E2's headline claim in test form: contextual filtering improves
    // precision over plain thresholding without destroying recall.
    let mut obs = Observatory::with_defaults(42);
    let mut spec = fire_spec(5, inland(&obs));
    spec.glint_rate = 0.03;
    spec.cloud_cover = 0.0;
    let id = obs.acquire_scene(&spec).unwrap();
    let truth = obs.truth_for(&id).unwrap();

    let run = |obs: &mut Observatory, cls: HotspotClassifier| {
        let chain = ProcessingChain { classifier: cls, ..ProcessingChain::operational() };
        let report = obs.run_chain(&id, &chain).unwrap();
        accuracy::score(&report.output.mask, &truth).unwrap()
    };
    let plain = run(&mut obs, HotspotClassifier::Threshold { kelvin: 318.0 });
    let ctx = run(&mut obs, HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 });
    assert!(ctx.precision() > plain.precision());
    assert!(ctx.recall() > 0.8 * plain.recall());
}

#[test]
fn semantic_annotation_closes_the_gap() {
    use teleios::mining::annotate;
    use teleios::mining::classify::{Classifier, LabeledExample};
    use teleios::mining::ontology::{concept, Ontology};

    let mut obs = Observatory::with_defaults(42);
    let id = obs.acquire_scene(&fire_spec(6, inland(&obs))).unwrap();
    let raster = obs.raster_for(&id).unwrap();
    let patches = teleios::ingest::features::extract_patches(&raster, 8).unwrap();
    assert!(!patches.is_empty());

    // Train a tiny classifier from patches labeled by the truth mask.
    let truth = obs.truth_for(&id).unwrap();
    let examples: Vec<LabeledExample> = patches
        .iter()
        .map(|p| {
            // A patch "burns" when any truth pixel inside it burns.
            let r0 = p.py * 8;
            let c0 = p.px * 8;
            let burning = (r0..r0 + 8)
                .any(|r| (c0..c0 + 8).any(|c| truth.get(&[r, c]).unwrap_or(0.0) > 0.0));
            LabeledExample {
                features: p.features.clone(),
                label: if burning { concept("ForestFire") } else { concept("LandCover") },
            }
        })
        .collect();
    let classifier = Classifier::train_knn(3, examples.clone());
    assert!(classifier.accuracy(&examples) > 0.9);

    // Annotate and search by the *superclass* Fire: subsumption search
    // finds the ForestFire annotations.
    let n = annotate::annotate_product(&id, &patches, &classifier, obs.strabon.store_mut());
    assert_eq!(n, patches.len());
    let ontology = Ontology::teleios();
    let fire_products =
        annotate::find_products_by_concept(&concept("Fire"), &ontology, obs.strabon.store());
    assert_eq!(fire_products.len(), 1);
}

#[test]
fn observatory_is_deterministic() {
    let run = || {
        let mut obs = Observatory::with_defaults(42);
        let id = obs.acquire_scene(&fire_spec(7, inland(&obs))).unwrap();
        let report = obs.run_chain(&id, &ProcessingChain::operational()).unwrap();
        (report.output.hotspot_pixels(), report.output.features.len(), obs.strabon.len())
    };
    assert_eq!(run(), run());
}
