//! End-to-end durability acceptance test (ISSUE: robustness).
//!
//! A seeded `FaultPlan` over the `DURABILITY_KINDS` palette drives
//! the storage engine's write-layer fault hook: for every planned
//! scene, the fault is armed on the commit that registers it, the
//! medium power-cycles, and recovery must land exactly on the last
//! acknowledged state — no lost committed scenes, no resurrected
//! unacknowledged ones.

use teleios::resilience::{FaultPlan, DURABILITY_KINDS};
use teleios::store::{
    full_state, DurableBackend, DurableConfig, MemMedium, StorageBackend, WriteFault,
};

const SCENES: usize = 40;
const SEED: u64 = 77;
const RATE: f64 = 0.25;

fn scene_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("msg2-{i:04}.sev1")).collect()
}

fn register(backend: &mut dyn StorageBackend, id: &str) -> Result<u64, teleios::store::StoreError> {
    backend.begin()?;
    backend.put("vault/catalog", id.as_bytes(), b"sev1 32x32")?;
    backend.put("vault/quarantine", id.as_bytes(), &[])?;
    backend.commit()
}

#[test]
fn seeded_durability_plan_recovers_exactly_at_every_planned_crash() {
    let ids = scene_ids(SCENES);
    let plan = FaultPlan::seeded_with(SEED, &ids, RATE, &DURABILITY_KINDS);
    assert!(!plan.is_empty(), "a 25% plan over 40 scenes must select something");
    assert!(plan.iter().all(|(_, f)| f.is_durability_fault() && !f.is_data_fault()));

    let mut backend =
        DurableBackend::open(MemMedium::new(), DurableConfig::default()).expect("open");
    let mut crashes = 0usize;
    for id in &ids {
        match plan.fault_for(id) {
            None => {
                register(&mut backend, id).expect("clean commit");
            }
            Some(fault) => {
                // Arm the planned write-layer fault, observe the
                // rejected commit, power-cycle, and verify exact
                // recovery of the pre-crash committed state.
                let committed = full_state(&backend).expect("state");
                let write_fault = fault.write_fault().expect("durability kind maps");
                backend.medium_mut().arm(write_fault);
                assert!(
                    register(&mut backend, id).is_err(),
                    "a faulted barrier must reject the commit for {id}"
                );
                let mut medium = backend.into_medium();
                medium.crash();
                backend = DurableBackend::open(medium, DurableConfig::default())
                    .expect("recovery never fails");
                assert_eq!(
                    full_state(&backend).expect("state"),
                    committed,
                    "{} ({}) must recover the exact committed state",
                    id,
                    fault.label()
                );
                assert!(
                    backend.get("vault/catalog", id.as_bytes()).expect("get").is_none(),
                    "{id} was never acknowledged and must not be resurrected"
                );
                crashes += 1;
                // The scene re-registers cleanly after recovery.
                register(&mut backend, id).expect("post-recovery commit");
            }
        }
    }
    assert_eq!(crashes, plan.len(), "every planned fault fired");

    // After the full run every scene is durably present.
    let final_state = full_state(&backend).expect("state");
    let catalog = final_state.get("vault/catalog").expect("catalog keyspace");
    assert_eq!(catalog.len(), SCENES);

    // One last power cycle: the end state itself is crash-durable.
    let mut medium = backend.into_medium();
    medium.crash();
    let reopened =
        DurableBackend::open(medium, DurableConfig::default()).expect("reopen");
    assert_eq!(full_state(&reopened).expect("state"), final_state);
}

#[test]
fn seeded_durability_plan_is_reproducible() {
    let ids = scene_ids(SCENES);
    let a = FaultPlan::seeded_with(SEED, &ids, RATE, &DURABILITY_KINDS);
    let b = FaultPlan::seeded_with(SEED, &ids, RATE, &DURABILITY_KINDS);
    let pa: Vec<_> = a.iter().collect();
    let pb: Vec<_> = b.iter().collect();
    assert_eq!(pa, pb, "same seed, ids, rate, palette — same plan");
    // The palette swap keeps the default plan's scene selection.
    let default_plan = FaultPlan::seeded(SEED, &ids, RATE);
    let default_ids: Vec<&str> = default_plan.iter().map(|(id, _)| id).collect();
    let durable_ids: Vec<&str> = a.iter().map(|(id, _)| id).collect();
    assert_eq!(default_ids, durable_ids);
}

#[test]
fn torn_write_shorter_than_the_frame_never_acknowledges() {
    // Independent of the plan: a torn write that keeps only part of
    // the commit frame must behave like a crash for every keep value
    // the palette could produce.
    let mut backend =
        DurableBackend::open(MemMedium::new(), DurableConfig::default()).expect("open");
    register(&mut backend, "base").expect("commit");
    let committed = full_state(&backend).expect("state");
    backend.medium_mut().arm(WriteFault::Torn { keep: 12 });
    assert!(register(&mut backend, "torn").is_err());
    let mut medium = backend.into_medium();
    medium.crash();
    let recovered = DurableBackend::open(medium, DurableConfig::default()).expect("recover");
    assert_eq!(full_state(&recovered).expect("state"), committed);
}
