//! Integration tests of the database tier in isolation: SQL, SciQL,
//! the Data Vault and Strabon working over the same data.

use teleios::monet::array::NdArray;
use teleios::monet::{Catalog, Value};
use teleios::sciql;
use teleios::strabon::Strabon;
use teleios::vault::format::{encode_sev1, Sev1Header};
use teleios::vault::repository::Repository;
use teleios::vault::{DataVault, IngestionPolicy};

/// SQL and SciQL share one catalog: relational metadata joins against
/// array content (the "symbiosis of relational tables and arrays" of
/// paper §1).
#[test]
fn sql_metadata_joins_sciql_arrays() {
    let cat = Catalog::new();
    cat.execute("CREATE TABLE scenes (name STRING, satellite STRING, cloud DOUBLE)").unwrap();
    for (i, cloud) in [0.1f64, 0.6, 0.2].iter().enumerate() {
        let name = format!("img{i}");
        cat.execute(&format!(
            "INSERT INTO scenes VALUES ('{name}', 'MSG2', {cloud})"
        ))
        .unwrap();
        // The image content lives beside the metadata as an array.
        let a = NdArray::matrix(8, 8, vec![300.0 + i as f64 * 10.0; 64]).unwrap();
        cat.put_array(&name, a);
    }

    // Metadata query picks the low-cloud scenes...
    let rs = cat
        .execute("SELECT name FROM scenes WHERE cloud < 0.5 ORDER BY name")
        .unwrap();
    assert_eq!(rs.num_rows(), 2);
    // ...and SciQL inspects exactly those arrays.
    for row in &rs.rows {
        let name = row[0].as_str().unwrap();
        let mean = sciql::execute(&cat, &format!("SELECT AVG(v) FROM {name}"))
            .unwrap()
            .scalar()
            .unwrap();
        assert!(mean >= 300.0);
    }
}

/// The vault materializes into the same catalog SciQL queries.
#[test]
fn vault_to_sciql_pipeline() {
    let mut repo = Repository::new();
    let header = Sev1Header {
        rows: 8,
        cols: 8,
        bands: 1,
        acquisition: "2007-08-25T12:00:00Z".into(),
        bbox: (21.0, 36.0, 24.0, 39.0),
    };
    let mut payload = vec![300.0f64; 64];
    payload[27] = 340.0; // one hot pixel
    repo.put("scene.sev1", encode_sev1(&header, &payload).unwrap());

    let cat = Catalog::new();
    let mut vault = DataVault::new(repo, cat.clone(), IngestionPolicy::Lazy, 4);
    vault.register_all().unwrap();

    // Nothing materialized until SciQL needs it.
    assert!(!cat.has_array("vault::scene.sev1"));
    vault.array_for("scene.sev1").unwrap();
    assert!(cat.has_array("vault::scene.sev1"));

    // The vault's array name contains ':' so SciQL cannot name it
    // directly; re-register under a query-friendly alias.
    let a = cat.array("vault::scene.sev1").unwrap();
    let flat = NdArray::matrix(8, 8, a.data().to_vec()).unwrap();
    cat.put_array("scene", flat);
    let hot = sciql::execute(&cat, "SELECT COUNT(*) FROM scene WHERE v > 318")
        .unwrap()
        .scalar()
        .unwrap();
    assert_eq!(hot, 1.0);
}

/// SQL UPDATE and SciQL UPDATE agree on the "classify" semantics.
#[test]
fn sql_update_and_sciql_update() {
    let cat = Catalog::new();
    cat.execute("CREATE TABLE detections (id INT, temp DOUBLE, hot BOOL)").unwrap();
    cat.execute(
        "INSERT INTO detections VALUES (1, 310.0, false), (2, 325.0, false), (3, 341.5, false)",
    )
    .unwrap();
    cat.execute("UPDATE detections SET hot = true WHERE temp > 318").unwrap();
    let rs = cat.execute("SELECT COUNT(*) AS n FROM detections WHERE hot = true").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2));

    // Same rule over an array through SciQL WHERE.
    let a = NdArray::matrix(1, 3, vec![310.0, 325.0, 341.5]).unwrap();
    cat.put_array("temps", a);
    sciql::execute(&cat, "UPDATE temps SET v = 1 WHERE v > 318").unwrap();
    sciql::execute(&cat, "UPDATE temps SET v = 0 WHERE v > 1").unwrap();
    assert_eq!(cat.array("temps").unwrap().sum(), 2.0);
}

/// Strabon aggregates reconcile with SQL aggregates over mirrored data.
#[test]
fn strabon_and_sql_aggregate_agreement() {
    let cat = Catalog::new();
    cat.execute("CREATE TABLE conf (hotspot STRING, c DOUBLE)").unwrap();
    let mut db = Strabon::new();
    let confidences = [0.9, 0.4, 0.7, 0.55];
    for (i, c) in confidences.iter().enumerate() {
        cat.execute(&format!("INSERT INTO conf VALUES ('h{i}', {c})")).unwrap();
        db.insert(
            &teleios::rdf::term::Term::iri(format!("http://x/h{i}")),
            &teleios::rdf::term::Term::iri("http://x/confidence"),
            &teleios::rdf::term::Term::double(*c),
        );
    }
    let sql_avg = cat
        .execute("SELECT AVG(c) AS a FROM conf")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    let sparql = db
        .query("SELECT (AVG(?c) AS ?a) WHERE { ?h <http://x/confidence> ?c }")
        .unwrap();
    let sparql_avg = sparql.get(0, "a").unwrap().as_f64().unwrap();
    assert!((sql_avg - sparql_avg).abs() < 1e-12);
}

/// Turtle written by the RDF layer loads back into Strabon unchanged.
#[test]
fn turtle_roundtrip_through_strabon() {
    let mut db = Strabon::new();
    db.load_turtle(
        "@prefix ex: <http://example.org/> .\n\
         @prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n\
         ex:a a ex:Feature ; strdf:hasGeometry \"POINT (1 2)\"^^strdf:WKT ; ex:score 0.5 .\n\
         ex:b a ex:Feature ; strdf:hasGeometry \"POINT (3 4)\"^^strdf:WKT ; ex:score 0.9 .",
    )
    .unwrap();
    let exported = teleios::rdf::turtle::write_store(db.store());
    let mut db2 = Strabon::new();
    db2.load_turtle(&exported).unwrap();
    assert_eq!(db.len(), db2.len());
    let q = "PREFIX ex: <http://example.org/> SELECT ?f WHERE { ?f a ex:Feature } ORDER BY ?f";
    assert_eq!(db.query(q).unwrap(), db2.query(q).unwrap());
}
