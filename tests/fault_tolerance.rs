//! End-to-end fault-tolerance acceptance test (ISSUE: robustness).
//!
//! A 50-scene supervised batch under a seeded 20% fault plan must
//! complete, report exactly the injected failure per scene, recover
//! every transient fault within the retry budget, and lose zero
//! healthy scenes.

use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::raster::GeoTransform;
use teleios_ingest::seviri::FireEvent;
use teleios_noa::{HotspotClassifier, ProcessingChain};
use teleios_resilience::{Fault, FaultPlan, RetryPolicy, SceneOutcome, Supervisor};

const SCENES: usize = 50;
const SEED: u64 = 1234;
const RATE: f64 = 0.2;

fn acquire_scenes(obs: &mut Observatory, n: usize) -> Vec<String> {
    let center = obs.region().center();
    (0..n)
        .map(|i| {
            let spec = AcquisitionSpec {
                seed: 9000 + i as u64,
                rows: 32,
                cols: 32,
                acquisition: format!("2007-08-25T{:02}:{:02}:00Z", i / 4, (i % 4) * 15),
                satellite: "MSG2".into(),
                fires: vec![FireEvent {
                    center: Coord::new(center.x - 0.3, center.y + 0.2),
                    radius: 0.08,
                    intensity: 0.9,
                }],
                cloud_cover: 0.0,
                glint_rate: 0.0,
            };
            obs.acquire_scene(&spec).unwrap()
        })
        .collect()
}

#[test]
fn seeded_fault_plan_batch_meets_the_acceptance_criteria() {
    let mut obs = Observatory::with_defaults(77);
    let ids = acquire_scenes(&mut obs, SCENES);

    let plan = FaultPlan::seeded(SEED, &ids, RATE);
    // The plan is non-trivial and plausible for a 20% rate...
    assert!(
        (3..=20).contains(&plan.len()),
        "implausible fault count {} for rate {RATE}",
        plan.len()
    );
    // ...and reproducible.
    let replay = FaultPlan::seeded(SEED, &ids, RATE);
    assert_eq!(
        plan.iter().collect::<Vec<_>>(),
        replay.iter().collect::<Vec<_>>()
    );

    // Data faults corrupt the archived scene files; behavioral faults
    // ride the chain's stage hook.
    let applied = plan.apply_to_repository(obs.vault.repository_mut());
    assert_eq!(applied, plan.data_fault_ids().len());
    let chain = ProcessingChain {
        classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
        target_grid: Some((GeoTransform::fit(&obs.region(), 32, 32), 32, 32)),
        ..ProcessingChain::operational()
    }
    .with_stage_hook(plan.chain_hook());

    let supervisor = Supervisor::new(RetryPolicy::no_backoff(2));
    let report = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();

    // The batch completed: one report per scene, in input order.
    assert_eq!(report.scenes.len(), SCENES);
    let reported: Vec<&str> = report.scenes.iter().map(|s| s.product_id.as_str()).collect();
    let expected: Vec<&str> = ids.iter().map(String::as_str).collect();
    assert_eq!(reported, expected);

    // Every scene's outcome matches exactly the fault injected on it.
    for scene in &report.scenes {
        let fault = plan.fault_for(&scene.product_id);
        match fault {
            // Zero healthy scenes lost.
            None => assert_eq!(
                scene.outcome,
                SceneOutcome::Ok,
                "healthy scene {} was lost: {:?}",
                scene.product_id,
                scene.outcome
            ),
            // Every transient fault recovered within the retry budget.
            Some(Fault::Transient { failures }) => {
                assert_eq!(scene.outcome, SceneOutcome::Retried(failures));
                assert_eq!(scene.attempts, failures + 1);
                assert!(scene.output.is_some());
            }
            // The contextual classifier fault clears on the threshold
            // fallback.
            Some(Fault::ClassifierError) => {
                assert_eq!(
                    scene.outcome,
                    SceneOutcome::Degraded {
                        from: "contextual-318-n2".into(),
                        to: "threshold-318".into()
                    }
                );
                assert_eq!(scene.chain_id, "threshold-318");
            }
            // The georeferencing fault clears on the native grid.
            Some(Fault::GeorefError) => {
                assert_eq!(
                    scene.outcome,
                    SceneOutcome::Degraded {
                        from: "contextual-318-n2".into(),
                        to: "threshold-318+native-grid".into()
                    }
                );
            }
            // Worker panics are contained: the scene fails, the batch
            // (and the process) survive.
            Some(Fault::WorkerPanic) => {
                assert!(matches!(
                    &scene.outcome,
                    SceneOutcome::Failed { reason } if reason.contains("panicked")
                ));
                assert!(scene.output.is_none());
            }
            // Data corruption is detected at the vault and reported as
            // a per-scene failure naming the product.
            Some(Fault::CorruptPayload) => {
                assert!(matches!(
                    &scene.outcome,
                    SceneOutcome::Failed { reason }
                        if reason.contains("corrupt") && reason.contains(&scene.product_id)
                ));
            }
            Some(Fault::TruncateHeader) => {
                assert!(matches!(
                    &scene.outcome,
                    SceneOutcome::Failed { reason } if reason.contains(&scene.product_id)
                ));
            }
        }
    }

    // Every corrupted file sits in quarantine, and only those.
    let expected_quarantine: Vec<String> = plan
        .data_fault_ids()
        .iter()
        .map(|id| format!("{id}.sev1"))
        .collect();
    assert_eq!(obs.vault.quarantined(), expected_quarantine);
    assert_eq!(obs.vault.stats().decode_failures, expected_quarantine.len());

    // Successful scenes — including degraded ones — were published and
    // archived as derived products under the variant that produced them.
    for scene in &report.scenes {
        if scene.outcome.succeeded() {
            let file = format!("{}-{}.gtf1", scene.product_id, scene.chain_id);
            assert!(
                obs.vault.catalog().get(&file).is_some(),
                "missing derived product {file}"
            );
        }
    }

    // The headline numbers match the plan exactly: only worker panics
    // and data corruption are unrecoverable.
    let expected_failed = plan
        .iter()
        .filter(|(_, f)| {
            matches!(f, Fault::WorkerPanic | Fault::CorruptPayload | Fault::TruncateHeader)
        })
        .count();
    assert_eq!(report.failed_count(), expected_failed);
    assert_eq!(report.succeeded_count(), SCENES - expected_failed);
}

#[test]
fn quarantined_scene_recovers_after_repair_and_retry() {
    let mut obs = Observatory::with_defaults(78);
    let ids = acquire_scenes(&mut obs, 2);
    let victim = ids[1].clone();
    let file = format!("{victim}.sev1");
    let pristine = obs.vault.repository().get(&file).unwrap().clone();

    let mut plan = FaultPlan::new();
    plan.inject(victim.clone(), Fault::CorruptPayload);
    plan.apply_to_repository(obs.vault.repository_mut());

    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
    let chain = ProcessingChain::operational();
    let first = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();
    assert_eq!(first.failed_count(), 1);
    assert!(obs.vault.is_quarantined(&file));

    // The archive operator restores the bytes; a retry clears the
    // quarantine and the next batch is clean.
    obs.vault.repository_mut().put(&file, pristine);
    obs.vault.retry_quarantined(&file).unwrap();
    assert!(!obs.vault.is_quarantined(&file));
    let second = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();
    assert_eq!(second.failed_count(), 0);
    assert_eq!(second.succeeded_count(), 2);
    assert!(obs.vault.stats().retries >= 1);
}
