//! Deadline-aware supervision acceptance tests (ISSUE: robustness).
//!
//! A batch containing scenes that hang for 10 seconds at a stage must
//! finish within the deadline envelope — the watchdog cancels each
//! overdue attempt at its stage boundary, so wall-clock scales with
//! the budget, never with the hang. No healthy scene may ever be lost
//! to deadline supervision, under any seed. A scene that times out on
//! every variant ends `Timeout` with its full timeout chain recorded.
//! Quarantine state produced under supervision survives a catalog
//! export/import round-trip.

use std::time::Duration;
use teleios_core::observatory::AcquisitionSpec;
use teleios_core::Observatory;
use teleios_geo::Coord;
use teleios_ingest::raster::GeoTransform;
use teleios_ingest::seviri::FireEvent;
use teleios_monet::Catalog;
use teleios_noa::chain::ChainStage;
use teleios_noa::{HotspotClassifier, ProcessingChain};
use teleios_resilience::{
    Fault, FaultPlan, RetryPolicy, SceneOutcome, StageBudget, Supervisor,
};
use teleios_vault::{DataVault, IngestionPolicy};

/// Long enough that an uncancelled hang would blow every assertion
/// below by an order of magnitude.
const HANG: Duration = Duration::from_secs(10);

fn acquire_scenes(obs: &mut Observatory, n: usize, seed0: u64) -> Vec<String> {
    let center = obs.region().center();
    (0..n)
        .map(|i| {
            let spec = AcquisitionSpec {
                seed: seed0 + i as u64,
                rows: 32,
                cols: 32,
                acquisition: format!("2007-08-25T{:02}:{:02}:00Z", i / 4, (i % 4) * 15),
                satellite: "MSG2".into(),
                fires: vec![FireEvent {
                    center: Coord::new(center.x - 0.3, center.y + 0.2),
                    radius: 0.08,
                    intensity: 0.9,
                }],
                cloud_cover: 0.0,
                glint_rate: 0.0,
            };
            obs.acquire_scene(&spec).unwrap()
        })
        .collect()
}

fn ladder_chain(obs: &Observatory, plan: &FaultPlan) -> ProcessingChain {
    ProcessingChain {
        classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
        target_grid: Some((GeoTransform::fit(&obs.region(), 32, 32), 32, 32)),
        ..ProcessingChain::operational()
    }
    .with_stage_hook(plan.chain_hook())
}

#[test]
fn hung_batch_finishes_within_the_deadline_envelope() {
    let mut obs = Observatory::with_defaults(81);
    let ids = acquire_scenes(&mut obs, 8, 9100);

    let palette = [Fault::Hang { stage: ChainStage::Classify, duration: HANG }];
    let mut plan = FaultPlan::seeded_with(2024, &ids, 0.3, &palette);
    // Guarantee at least one hung scene whatever the seed selects.
    plan.inject(ids[0].clone(), palette[0]);
    assert!(!plan.is_empty());

    let chain = ladder_chain(&obs, &plan);
    let hard = Duration::from_millis(150);
    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1))
        .with_budget(StageBudget::hard(hard));
    let report = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();

    // Envelope: each hung scene burns at most (retries + 1) primary
    // attempts plus one attempt per degraded rung, each cancelled at
    // the hard deadline; the breaker cuts this further. Even fully
    // serialized, 8 scenes stay far below one uncancelled 10s hang.
    assert!(
        report.wall_clock < Duration::from_secs(8),
        "batch took {:?}; cancellation is not bounding the hang",
        report.wall_clock
    );
    assert_eq!(report.scenes.len(), ids.len());
    for scene in &report.scenes {
        match plan.fault_for(&scene.product_id) {
            // Hang on every variant: the scene is lost to timeouts and
            // says so.
            Some(Fault::Hang { .. }) => {
                assert!(
                    matches!(scene.outcome, SceneOutcome::Timeout { .. }),
                    "{}: expected Timeout, got {:?}",
                    scene.product_id,
                    scene.outcome
                );
                assert!(!scene.timed_out_stages.is_empty());
            }
            // Healthy scenes deliver a product, possibly degraded if
            // the breaker routed them off a hanging variant.
            _ => assert!(
                scene.outcome.succeeded(),
                "healthy scene {} lost: {:?}",
                scene.product_id,
                scene.outcome
            ),
        }
    }
}

#[test]
fn no_seed_loses_a_healthy_scene() {
    for seed in [1_u64, 7, 42] {
        let mut obs = Observatory::with_defaults(82);
        let ids = acquire_scenes(&mut obs, 6, 9300);
        let palette = [Fault::Hang { stage: ChainStage::Georef, duration: HANG }];
        let plan = FaultPlan::seeded_with(seed, &ids, 0.4, &palette);
        let chain = ladder_chain(&obs, &plan);
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1))
            .with_budget(StageBudget::hard(Duration::from_millis(150)));
        let report = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();
        for scene in &report.scenes {
            if plan.fault_for(&scene.product_id).is_none() {
                assert!(
                    scene.outcome.succeeded(),
                    "seed {seed}: healthy scene {} lost: {:?}",
                    scene.product_id,
                    scene.outcome
                );
            }
        }
    }
}

#[test]
fn scene_timing_out_on_every_variant_records_its_timeout_chain() {
    let catalog = Catalog::new();
    let mut obs = Observatory::with_defaults(83);
    let ids = acquire_scenes(&mut obs, 1, 9500);
    let raster = obs.raster_for(&ids[0]).unwrap();

    let mut plan = FaultPlan::new();
    plan.inject(ids[0].clone(), Fault::Hang { stage: ChainStage::Classify, duration: HANG });
    let chain = ladder_chain(&obs, &plan);
    let primary_id = chain.id();

    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1))
        .with_budget(StageBudget::hard(Duration::from_millis(120)));
    let report = supervisor.run_scene(&catalog, &chain, &ids[0], &raster);

    let SceneOutcome::Timeout { stage, reason } = &report.outcome else {
        panic!("expected Timeout, got {:?}", report.outcome);
    };
    assert_eq!(stage, "classify");
    assert!(reason.contains("deadline"), "unhelpful reason: {reason}");
    // The timeout chain covers every rung tried, in order, each
    // pinned at the hanging stage.
    assert!(report.timed_out_stages.len() >= 2);
    assert!(report.timed_out_stages[0].starts_with(&primary_id));
    for entry in &report.timed_out_stages {
        assert!(
            entry.ends_with("/classify"),
            "timeout chain entry off-stage: {entry}"
        );
    }
    assert!(report.output.is_none());
}

#[test]
fn quarantine_survives_a_catalog_round_trip_under_supervision() {
    let mut obs = Observatory::with_defaults(84);
    let ids = acquire_scenes(&mut obs, 2, 9700);

    // Corrupt one scene's archive file; supervision fails that scene
    // and the vault quarantines the file.
    let mut plan = FaultPlan::new();
    plan.inject(ids[0].clone(), Fault::CorruptPayload);
    plan.apply_to_repository(obs.vault.repository_mut());

    let chain = ladder_chain(&obs, &FaultPlan::new());
    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
    let report = obs.run_chain_batch(&ids, &chain, &supervisor).unwrap();
    let bad = report.report_for(&ids[0]).unwrap();
    assert!(matches!(bad.outcome, SceneOutcome::Failed { .. }));
    assert!(report.report_for(&ids[1]).unwrap().outcome.succeeded());
    let bad_file = format!("{}.sev1", ids[0]);
    assert!(obs.vault.is_quarantined(&bad_file));

    // Round-trip the catalog into a fresh vault over the same
    // repository bytes: the quarantine entry must survive, and the
    // quarantined file must stay refused until retried.
    let json = obs.vault.export_catalog();
    let mut vault2 = DataVault::new(
        obs.vault.repository().clone(),
        Catalog::new(),
        IngestionPolicy::Lazy,
        64,
    );
    let imported = vault2.import_catalog(&json).unwrap();
    assert!(imported > 0);
    assert!(vault2.is_quarantined(&bad_file));
    assert!(vault2.array_for(&bad_file).is_err());
    // The healthy scene's file is untouched by the round trip.
    assert!(!vault2.is_quarantined(&format!("{}.sev1", ids[1])));
}
