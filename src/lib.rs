#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! TELEIOS facade: re-exports every tier of the Virtual Earth Observatory.
pub use teleios_core as core;
pub use teleios_exec as exec;
pub use teleios_geo as geo;
pub use teleios_ingest as ingest;
pub use teleios_linked as linked;
pub use teleios_mining as mining;
pub use teleios_monet as monet;
pub use teleios_noa as noa;
pub use teleios_rdf as rdf;
pub use teleios_resilience as resilience;
pub use teleios_sciql as sciql;
pub use teleios_store as store;
pub use teleios_strabon as strabon;
pub use teleios_vault as vault;
