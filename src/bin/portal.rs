//! `teleios-portal` — a command-line stand-in for the EOWEB-like GUI of
//! the demo (paper Fig. 3).
//!
//! Runs a scripted observatory session and then executes one of the
//! canned portal actions:
//!
//! ```text
//! portal overview                 # archive state
//! portal products                 # product browser
//! portal flagship [dist_deg]      # the paper's flagship query
//! portal firemap [out.geojson]    # rapid mapping (GeoJSON to stdout/file)
//! portal query '<stSPARQL>'       # free-form stSPARQL
//! portal sciql '<SciQL>'          # free-form SciQL
//! ```

use teleios::core::observatory::AcquisitionSpec;
use teleios::core::{portal, Observatory};
use teleios::ingest::seviri::FireEvent;
use teleios::noa::ProcessingChain;
use teleios::sciql::SciqlResult;

fn build_session() -> Result<Observatory, Box<dyn std::error::Error>> {
    let mut obs = Observatory::with_defaults(42);
    // Two acquisitions: one with a fire near the first archaeological
    // site, one quiet.
    let site = obs.world.sites[0].location;
    let mut burning = AcquisitionSpec::small_test(9);
    burning.fires = vec![FireEvent { center: site, radius: 0.09, intensity: 0.95 }];
    burning.cloud_cover = 0.0;
    let id = obs.acquire_scene(&burning)?;
    obs.run_chain(&id, &ProcessingChain::operational())?;
    let quiet = AcquisitionSpec { fires: Vec::new(), ..AcquisitionSpec::small_test(10) };
    obs.acquire_scene(&quiet)?;
    obs.refine_products()?;
    Ok(obs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let action = args.first().map(String::as_str).unwrap_or("overview");

    let mut obs = build_session()?;
    match action {
        "overview" => println!("{}", portal::overview(&obs)),
        "products" => println!("{}", portal::list_products(&mut obs)?),
        "flagship" => {
            let dist: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.3);
            println!("{}", portal::run_flagship(&mut obs, "MSG2", "2007-08-25", dist)?);
        }
        "firemap" => {
            let region = obs.region();
            let map = obs.fire_map(&region)?;
            let geojson = map.to_geojson();
            match args.get(1) {
                Some(path) => {
                    // teleios-lint: allow(no-direct-fs) — legacy GeoJSON export to a user-chosen path, not engine state
                    std::fs::write(path, &geojson)?;
                    eprintln!("wrote {} features to {path}", map.num_features());
                }
                None => println!("{geojson}"),
            }
        }
        "query" => {
            let q = args.get(1).ok_or("usage: portal query '<stSPARQL>'")?;
            println!("{}", obs.search(q)?.to_text());
        }
        "sciql" => {
            let q = args.get(1).ok_or("usage: portal sciql '<SciQL>'")?;
            match obs.sciql(q)? {
                SciqlResult::Done => println!("ok"),
                SciqlResult::Scalar(s) => println!("{s}"),
                SciqlResult::Array(a) => println!("array {:?} ({} cells)", a.shape(), a.len()),
            }
        }
        other => {
            eprintln!("unknown action '{other}'");
            eprintln!("actions: overview | products | flagship [dist] | firemap [out] | query <q> | sciql <q>");
            std::process::exit(2);
        }
    }
    Ok(())
}
